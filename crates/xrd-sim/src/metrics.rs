//! Lightweight metrics for simulation runs: counters and duration
//! histograms with percentile queries.

use crate::time::SimDuration;

/// A streaming collection of durations with summary statistics.
#[derive(Clone, Debug, Default)]
pub struct DurationStats {
    samples: Vec<u64>,
    sorted: bool,
}

impl DurationStats {
    /// Empty stats.
    pub fn new() -> DurationStats {
        DurationStats::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.0);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean duration (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.samples.iter().map(|&x| x as u128).sum();
        SimDuration((total / self.samples.len() as u128) as u64)
    }

    /// Maximum (zero if empty).
    pub fn max(&self) -> SimDuration {
        SimDuration(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Minimum (zero if empty).
    pub fn min(&self) -> SimDuration {
        SimDuration(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// p-th percentile (0.0..=1.0), nearest-rank; zero if empty.
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&p));
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        SimDuration(self.samples[rank - 1])
    }
}

/// A labelled counter set for simple event accounting.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    entries: std::collections::BTreeMap<String, u64>,
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Add `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.entries.entry(name.to_string()).or_insert(0) += n;
    }

    /// Increment the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Read a counter (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries.get(name).copied().unwrap_or(0)
    }

    /// Iterate over (name, value) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_summary() {
        let mut s = DurationStats::new();
        for i in 1..=100u64 {
            s.record(SimDuration(i));
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.mean(), SimDuration(50)); // (5050/100) = 50.5 -> 50
        assert_eq!(s.min(), SimDuration(1));
        assert_eq!(s.max(), SimDuration(100));
        assert_eq!(s.percentile(0.5), SimDuration(50));
        assert_eq!(s.percentile(0.99), SimDuration(99));
        assert_eq!(s.percentile(1.0), SimDuration(100));
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = DurationStats::new();
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.percentile(0.5), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
    }

    #[test]
    fn percentile_after_more_records() {
        let mut s = DurationStats::new();
        s.record(SimDuration(10));
        assert_eq!(s.percentile(0.5), SimDuration(10));
        s.record(SimDuration(1));
        // re-sorts after new data
        assert_eq!(s.percentile(0.5), SimDuration(1));
    }

    #[test]
    fn counters() {
        let mut c = Counters::new();
        c.incr("messages");
        c.add("messages", 4);
        c.incr("failures");
        assert_eq!(c.get("messages"), 5);
        assert_eq!(c.get("failures"), 1);
        assert_eq!(c.get("unknown"), 0);
        let all: Vec<_> = c.iter().collect();
        assert_eq!(all, vec![("failures", 1), ("messages", 5)]);
    }
}
