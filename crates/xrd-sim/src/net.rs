//! Network model: pairwise latency plus per-link bandwidth.
//!
//! Mirrors the paper's testbed (§8.2): servers in one datacenter with
//! 10 Gbps NICs and 40–100 ms RTT injected with `tc`.  Latencies are
//! sampled deterministically per (src, dst) pair from a seed, so a given
//! topology always behaves identically.

use rand::Rng;
use rand::SeedableRng;

use crate::time::SimDuration;

/// Identifies a node (server, user aggregate, mailbox) in the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Pairwise network model.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// Minimum one-way latency.
    pub min_latency: SimDuration,
    /// Maximum one-way latency.
    pub max_latency: SimDuration,
    /// Link bandwidth in bytes per second (per flow).
    pub bandwidth_bytes_per_sec: u64,
    /// Seed for the deterministic latency table.
    pub seed: u64,
}

impl NetworkModel {
    /// The paper's testbed: 40–100 ms RTT (20–50 ms one-way), 10 Gbps.
    pub fn paper_testbed(seed: u64) -> NetworkModel {
        NetworkModel {
            min_latency: SimDuration::from_millis(20),
            max_latency: SimDuration::from_millis(50),
            bandwidth_bytes_per_sec: 10_000_000_000 / 8,
            seed,
        }
    }

    /// A zero-latency, infinite-bandwidth network (for isolating compute).
    pub fn ideal() -> NetworkModel {
        NetworkModel {
            min_latency: SimDuration::ZERO,
            max_latency: SimDuration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX,
            seed: 0,
        }
    }

    /// Deterministic one-way propagation latency between two nodes.
    /// Symmetric: `latency(a, b) == latency(b, a)`.
    pub fn latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        if self.min_latency == self.max_latency {
            return self.min_latency;
        }
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let pair_seed = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(((lo as u64) << 32) | hi as u64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(pair_seed);
        let span = self.max_latency.0 - self.min_latency.0;
        SimDuration(self.min_latency.0 + rng.gen_range(0..=span))
    }

    /// Serialization (bandwidth) delay for a payload of `bytes`.
    pub fn serialization_delay(&self, bytes: u64) -> SimDuration {
        if self.bandwidth_bytes_per_sec == u64::MAX {
            return SimDuration::ZERO;
        }
        // ceil(bytes * 1e9 / bw) nanoseconds, in u128 to avoid overflow.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(self.bandwidth_bytes_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// Total one-way transfer time for `bytes` from `a` to `b`:
    /// propagation + serialization.
    pub fn transfer_time(&self, a: NodeId, b: NodeId, bytes: u64) -> SimDuration {
        self.latency(a, b)
            .saturating_add(self.serialization_delay(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_deterministic_and_symmetric() {
        let net = NetworkModel::paper_testbed(42);
        let a = NodeId(3);
        let b = NodeId(17);
        assert_eq!(net.latency(a, b), net.latency(a, b));
        assert_eq!(net.latency(a, b), net.latency(b, a));
    }

    #[test]
    fn latency_within_bounds() {
        let net = NetworkModel::paper_testbed(7);
        for i in 0..20 {
            for j in 0..20 {
                let l = net.latency(NodeId(i), NodeId(j));
                assert!(l >= net.min_latency && l <= net.max_latency);
            }
        }
    }

    #[test]
    fn different_pairs_get_different_latencies() {
        let net = NetworkModel::paper_testbed(1);
        let mut distinct = std::collections::HashSet::new();
        for i in 0..10 {
            distinct.insert(net.latency(NodeId(0), NodeId(i)).0);
        }
        assert!(distinct.len() > 3, "latency table looks degenerate");
    }

    #[test]
    fn serialization_delay_scales_linearly() {
        let net = NetworkModel::paper_testbed(0);
        let one_mb = net.serialization_delay(1_000_000);
        let two_mb = net.serialization_delay(2_000_000);
        // 1 MB at 1.25 GB/s = 0.8 ms
        assert_eq!(one_mb, SimDuration(800_000));
        assert_eq!(two_mb.0, 2 * one_mb.0);
    }

    #[test]
    fn ideal_network_is_free() {
        let net = NetworkModel::ideal();
        assert_eq!(
            net.transfer_time(NodeId(0), NodeId(1), 1 << 40),
            SimDuration::ZERO
        );
    }

    #[test]
    fn transfer_combines_latency_and_bandwidth() {
        let net = NetworkModel {
            min_latency: SimDuration::from_millis(10),
            max_latency: SimDuration::from_millis(10),
            bandwidth_bytes_per_sec: 1_000_000, // 1 MB/s
            seed: 0,
        };
        let t = net.transfer_time(NodeId(0), NodeId(1), 500_000); // 0.5s ser.
        assert_eq!(t, SimDuration::from_millis(510));
    }

    #[test]
    fn different_seeds_change_table() {
        let n1 = NetworkModel::paper_testbed(1);
        let n2 = NetworkModel::paper_testbed(2);
        let mut any_diff = false;
        for i in 1..10 {
            if n1.latency(NodeId(0), NodeId(i)) != n2.latency(NodeId(0), NodeId(i)) {
                any_diff = true;
            }
        }
        assert!(any_diff);
    }
}
