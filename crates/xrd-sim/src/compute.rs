//! Server compute model: multi-core makespan for batches of work.
//!
//! The paper's servers are 36-core EC2 instances; each XRD server
//! participates in ~k chains concurrently and parallelizes per-message
//! work across cores.  We model a server as `cores` identical cores and
//! compute the makespan of a set of independent serial tasks using LPT
//! (longest-processing-time-first) greedy scheduling, which is within
//! 4/3 of optimal and matches how a work-stealing thread pool behaves.

use crate::time::SimDuration;

/// A compute resource with a fixed number of identical cores.
#[derive(Clone, Copy, Debug)]
pub struct ServerCompute {
    /// Number of usable cores.
    pub cores: u32,
}

impl ServerCompute {
    /// The paper's c4.8xlarge instance (36 vCPUs).
    pub fn c4_8xlarge() -> ServerCompute {
        ServerCompute { cores: 36 }
    }

    /// Construct with an explicit core count.
    pub fn with_cores(cores: u32) -> ServerCompute {
        assert!(cores > 0);
        ServerCompute { cores }
    }

    /// Time to run `count` identical unit tasks of duration `each`,
    /// perfectly parallelizable across cores (the per-message crypto
    /// work of a mixing batch).
    pub fn parallel_batch(&self, count: u64, each: SimDuration) -> SimDuration {
        if count == 0 {
            return SimDuration::ZERO;
        }
        let per_core = count.div_ceil(self.cores as u64);
        each.scale(per_core)
    }

    /// Makespan of a set of heterogeneous serial tasks under LPT greedy
    /// scheduling.
    pub fn makespan(&self, tasks: &[SimDuration]) -> SimDuration {
        if tasks.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted: Vec<u64> = tasks.iter().map(|d| d.0).collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Min-heap of core finish times.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut cores: BinaryHeap<Reverse<u64>> = (0..self.cores).map(|_| Reverse(0u64)).collect();
        for t in sorted {
            let Reverse(earliest) = cores.pop().expect("at least one core");
            cores.push(Reverse(earliest + t));
        }
        SimDuration(cores.into_iter().map(|Reverse(t)| t).max().unwrap_or(0))
    }
}

/// Calibrated per-operation costs of the actual crypto implementation,
/// measured on the machine running the experiments (see
/// `xrd-bench`'s calibration) — the substitute for the paper's EC2 CPUs.
#[derive(Clone, Copy, Debug)]
pub struct OpCosts {
    /// One variable-base scalar multiplication (group exponentiation).
    pub exp: SimDuration,
    /// One group operation (point addition).
    pub group_add: SimDuration,
    /// AEAD seal/open of one fixed-size message payload.
    pub aead: SimDuration,
    /// One Schnorr proof generation.
    pub schnorr_prove: SimDuration,
    /// One Schnorr verification.
    pub schnorr_verify: SimDuration,
    /// One DLEQ proof generation.
    pub dleq_prove: SimDuration,
    /// One DLEQ verification.
    pub dleq_verify: SimDuration,
}

impl OpCosts {
    /// Rough defaults (order-of-magnitude for a modern x86 core running
    /// this crate); experiments overwrite these with measured values.
    pub fn nominal() -> OpCosts {
        OpCosts {
            exp: SimDuration::from_micros(180),
            group_add: SimDuration::from_nanos(800),
            aead: SimDuration::from_micros(2),
            schnorr_prove: SimDuration::from_micros(200),
            schnorr_verify: SimDuration::from_micros(400),
            dleq_prove: SimDuration::from_micros(400),
            dleq_verify: SimDuration::from_micros(800),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_batch_divides_across_cores() {
        let s = ServerCompute::with_cores(4);
        let each = SimDuration::from_micros(100);
        assert_eq!(s.parallel_batch(4, each), each);
        assert_eq!(s.parallel_batch(8, each), each.scale(2));
        assert_eq!(s.parallel_batch(9, each), each.scale(3));
        assert_eq!(s.parallel_batch(0, each), SimDuration::ZERO);
    }

    #[test]
    fn single_core_batch_is_serial() {
        let s = ServerCompute::with_cores(1);
        assert_eq!(
            s.parallel_batch(10, SimDuration::from_micros(5)),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn makespan_balances_load() {
        let s = ServerCompute::with_cores(2);
        let tasks = [
            SimDuration(6),
            SimDuration(4),
            SimDuration(3),
            SimDuration(3),
        ];
        // LPT: core1 = 6+3, core2 = 4+3+... => 6/4 -> 3 to core2 (7), 3 to
        // core1 (9)? LPT: sorted 6,4,3,3; 6->c1, 4->c2, 3->c2(7), 3->c1(9).
        // Optimal is 8 (6+3 / 4+3+... no: 16 total / 2 = 8: {6,3,(one of 3)}
        // no — 6+3=9,4+3=7 or 6+4=10.. optimal is {6,3}{4,3} = 9/7 -> 9.
        assert_eq!(s.makespan(&tasks), SimDuration(9));
    }

    #[test]
    fn makespan_empty_is_zero() {
        let s = ServerCompute::c4_8xlarge();
        assert_eq!(s.makespan(&[]), SimDuration::ZERO);
    }

    #[test]
    fn makespan_single_task() {
        let s = ServerCompute::with_cores(8);
        assert_eq!(s.makespan(&[SimDuration(42)]), SimDuration(42));
    }

    #[test]
    fn makespan_many_cores_is_max() {
        let s = ServerCompute::with_cores(100);
        let tasks: Vec<SimDuration> = (1..=10).map(SimDuration).collect();
        assert_eq!(s.makespan(&tasks), SimDuration(10));
    }

    #[test]
    fn nominal_costs_are_sane() {
        let c = OpCosts::nominal();
        assert!(c.exp > c.group_add);
        assert!(c.dleq_verify >= c.schnorr_verify);
    }
}
