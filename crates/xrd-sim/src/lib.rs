//! # xrd-sim
//!
//! Deterministic discrete-event simulation substrate for the XRD
//! reproduction.  The paper evaluates on up to 200 EC2 c4.8xlarge
//! instances (36 cores, 10 Gbps) with 40-100 ms RTT injected via `tc`
//! (§8.2); this crate provides the virtual equivalent:
//!
//! * [`Engine`] — a deterministic event queue with virtual time,
//! * [`NetworkModel`] — pairwise latency + bandwidth (the `tc` stand-in),
//! * [`ServerCompute`] / [`OpCosts`] — multi-core makespan modeling with
//!   per-operation costs calibrated from microbenchmarks of the real
//!   crypto implementation,
//! * [`DurationStats`] / [`Counters`] — run metrics.
//!
//! Protocol logic never lives here; XRD rounds are simulated by driving
//! these primitives from `xrd-core`.

#![warn(missing_docs)]

pub mod compute;
pub mod engine;
pub mod metrics;
pub mod net;
pub mod time;

pub use compute::{OpCosts, ServerCompute};
pub use engine::Engine;
pub use metrics::{Counters, DurationStats};
pub use net::{NetworkModel, NodeId};
pub use time::{SimDuration, SimTime};
