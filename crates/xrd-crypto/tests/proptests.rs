//! Property-based tests over the crypto substrate's algebraic laws and
//! serialization invariants.

use proptest::prelude::*;

use xrd_crypto::field::FieldElement;
use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;
use xrd_crypto::{adec, aenc, round_nonce, Blake2b};

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    prop::array::uniform32(any::<u8>()).prop_map(|bytes| Scalar::from_bytes_mod_order(&bytes))
}

fn arb_field() -> impl Strategy<Value = FieldElement> {
    prop::array::uniform32(any::<u8>()).prop_map(|b| FieldElement::from_bytes(&b))
}

fn arb_point() -> impl Strategy<Value = GroupElement> {
    prop::array::uniform32(any::<u8>()).prop_flat_map(|b| {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&b);
        wide[32..].copy_from_slice(&b);
        Just(GroupElement::from_uniform_bytes(&wide))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- field laws ----

    #[test]
    fn field_add_commutes(a in arb_field(), b in arb_field()) {
        prop_assert!(a.add(&b) == b.add(&a));
    }

    #[test]
    fn field_mul_associates(a in arb_field(), b in arb_field(), c in arb_field()) {
        prop_assert!(a.mul(&b).mul(&c) == a.mul(&b.mul(&c)));
    }

    #[test]
    fn field_distributes(a in arb_field(), b in arb_field(), c in arb_field()) {
        prop_assert!(a.mul(&b.add(&c)) == a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn field_sub_then_add_roundtrips(a in arb_field(), b in arb_field()) {
        prop_assert!(a.sub(&b).add(&b) == a);
    }

    #[test]
    fn field_invert_is_inverse(a in arb_field()) {
        prop_assume!(!a.is_zero());
        prop_assert!(a.mul(&a.invert()) == FieldElement::ONE);
    }

    #[test]
    fn field_bytes_roundtrip_canonical(a in arb_field()) {
        let bytes = a.to_bytes();
        let again = FieldElement::from_bytes(&bytes);
        prop_assert!(a == again);
        // Encoding is canonical: re-serializing is a fixpoint.
        prop_assert_eq!(again.to_bytes(), bytes);
        // Top bit always clear (values < 2^255).
        prop_assert_eq!(bytes[31] & 0x80, 0);
    }

    #[test]
    fn field_sqrt_ratio_consistent(a in arb_field()) {
        prop_assume!(!a.is_zero());
        let sq = a.square();
        let (ok, r) = FieldElement::sqrt_ratio_i(&sq, &FieldElement::ONE);
        prop_assert!(ok);
        prop_assert!(r.square() == sq);
        prop_assert!(!r.is_negative());
    }

    // ---- scalar laws ----

    #[test]
    fn scalar_ring_laws(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.sub(&a), Scalar::ZERO);
    }

    #[test]
    fn scalar_invert(a in arb_scalar()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.mul(&a.invert()), Scalar::ONE);
    }

    #[test]
    fn scalar_bytes_roundtrip(a in arb_scalar()) {
        prop_assert_eq!(Scalar::from_canonical_bytes(&a.to_bytes()), Some(a));
    }

    #[test]
    fn scalar_wide_reduction_matches_split(bytes in prop::array::uniform32(any::<u8>())) {
        // from_wide(x || 0) == from_bytes_mod_order(x)
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&bytes);
        prop_assert_eq!(
            Scalar::from_bytes_mod_order_wide(&wide),
            Scalar::from_bytes_mod_order(&bytes)
        );
    }

    // ---- group laws ----

    #[test]
    fn group_encoding_roundtrips(p in arb_point()) {
        let enc = p.encode();
        let q = GroupElement::decode(&enc).expect("valid encoding decodes");
        prop_assert!(p == q);
        prop_assert_eq!(q.encode(), enc);
    }

    #[test]
    fn group_scalar_mul_is_homomorphic(p in arb_point(), a in arb_scalar(), b in arb_scalar()) {
        prop_assert!(p.mul(&a.add(&b)) == p.mul(&a).add(&p.mul(&b)));
    }

    #[test]
    fn group_add_commutes_and_cancels(p in arb_point(), q in arb_point()) {
        prop_assert!(p.add(&q) == q.add(&p));
        prop_assert!(p.add(&q).sub(&q) == p);
    }

    #[test]
    fn blinding_is_invertible(p in arb_point(), bsk in arb_scalar()) {
        // The AHS blinding operation and its algebraic inverse.
        prop_assume!(!bsk.is_zero());
        prop_assert!(p.mul(&bsk).mul(&bsk.invert()) == p);
    }

    // ---- AEAD ----

    #[test]
    fn aead_never_confuses_keys(
        key1 in prop::array::uniform32(any::<u8>()),
        key2 in prop::array::uniform32(any::<u8>()),
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(key1 != key2);
        let nonce = round_nonce(0, 0);
        let sealed = aenc(&key1, &nonce, b"", &payload);
        prop_assert!(adec(&key2, &nonce, b"", &sealed).is_none());
    }

    #[test]
    fn aead_binds_aad(
        key in prop::array::uniform32(any::<u8>()),
        aad1 in prop::collection::vec(any::<u8>(), 0..16),
        aad2 in prop::collection::vec(any::<u8>(), 0..16),
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(aad1 != aad2);
        let nonce = round_nonce(0, 0);
        let sealed = aenc(&key, &nonce, &aad1, &payload);
        prop_assert!(adec(&key, &nonce, &aad2, &sealed).is_none());
    }

    // ---- hash ----

    #[test]
    fn blake2b_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..512),
        split in any::<prop::sample::Index>(),
    ) {
        let i = split.index(data.len() + 1);
        let mut h = Blake2b::new(32);
        h.update(&data[..i]);
        h.update(&data[i..]);
        let mut whole = Blake2b::new(32);
        whole.update(&data);
        prop_assert_eq!(h.finalize(), whole.finalize());
    }
}
