//! Property tests for the batch/amortized fast paths: every batched
//! API must agree exactly with its per-element counterpart, and batched
//! verification must accept all-valid batches while rejecting any
//! single tampered proof.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_crypto::field::FieldElement;
use xrd_crypto::nizk::{DleqBatchEntry, SchnorrBatchEntry};
use xrd_crypto::ristretto::{GroupElement, GroupTable};
use xrd_crypto::scalar::Scalar;
use xrd_crypto::{DleqProof, SchnorrProof};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `batch_invert` agrees with per-element `invert`, including
    /// zeros mixed into the batch (which must stay zero, matching the
    /// serial convention).
    #[test]
    fn batch_invert_matches_serial(seed in any::<u64>(), n in 0usize..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut elements: Vec<FieldElement> = (0..n)
            .map(|i| {
                if i % 5 == 3 {
                    FieldElement::ZERO
                } else {
                    // random-ish nonzero element
                    let s = Scalar::random(&mut rng);
                    FieldElement::from_bytes(&s.to_bytes())
                }
            })
            .collect();
        let expected: Vec<FieldElement> = elements.iter().map(|e| e.invert()).collect();
        FieldElement::batch_invert(&mut elements);
        for (i, (got, want)) in elements.iter().zip(&expected).enumerate() {
            prop_assert_eq!(got.to_bytes(), want.to_bytes(), "index {}", i);
        }
    }

    /// `encode_all` agrees with per-point `encode`.
    #[test]
    fn encode_all_matches_serial(seed in any::<u64>(), n in 0usize..16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points: Vec<GroupElement> =
            (0..n).map(|_| GroupElement::random(&mut rng)).collect();
        points.push(GroupElement::identity());
        let batch = GroupElement::encode_all(&points);
        prop_assert_eq!(batch.len(), points.len());
        for (p, enc) in points.iter().zip(&batch) {
            prop_assert_eq!(*enc, p.encode());
        }
    }

    /// `vartime_multiscalar_mul` agrees with the naive sum of
    /// per-point multiplications.
    #[test]
    fn multiscalar_matches_naive(seed in any::<u64>(), n in 0usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scalars: Vec<Scalar> = (0..n).map(|_| Scalar::random(&mut rng)).collect();
        let points: Vec<GroupElement> = (0..n).map(|_| GroupElement::random(&mut rng)).collect();
        let naive = scalars
            .iter()
            .zip(&points)
            .fold(GroupElement::identity(), |acc, (s, p)| acc.add(&p.mul(s)));
        prop_assert_eq!(GroupElement::vartime_multiscalar_mul(&scalars, &points), naive);
    }

    /// Precomputed tables agree with direct exponentiation, for both
    /// the single- and pair-exponent paths.
    #[test]
    fn group_table_matches_mul(seed in any::<u64>(), n in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<GroupElement> = (0..n).map(|_| GroupElement::random(&mut rng)).collect();
        let tables = GroupTable::batch_new(&points);
        for (p, table) in points.iter().zip(&tables) {
            let a = Scalar::random(&mut rng);
            let b = Scalar::random(&mut rng);
            let (pa, pb) = table.mul_pair(&a, &b);
            prop_assert_eq!(pa, p.mul(&a));
            prop_assert_eq!(pb, p.mul(&b));
        }
    }

    /// Schnorr batch verification accepts n valid proofs and rejects
    /// the batch when any single proof is tampered.
    #[test]
    fn schnorr_batch_accepts_valid_rejects_tampered(
        seed in any::<u64>(),
        n in 1usize..10,
        tamper in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stmts: Vec<(GroupElement, GroupElement, SchnorrProof)> = (0..n)
            .map(|_| {
                let base = GroupElement::random(&mut rng);
                let x = Scalar::random(&mut rng);
                let public = base.mul(&x);
                let proof = SchnorrProof::prove(&mut rng, b"prop", &base, &public, &x);
                (base, public, proof)
            })
            .collect();
        if tamper {
            let idx = (seed as usize) % n;
            stmts[idx].2.response = stmts[idx].2.response.add(&Scalar::ONE);
        }
        let entries: Vec<SchnorrBatchEntry> = stmts
            .iter()
            .map(|(base, public, proof)| SchnorrBatchEntry {
                context: b"prop",
                base: *base,
                public: *public,
                proof: *proof,
            })
            .collect();
        prop_assert_eq!(SchnorrProof::batch_verify(&entries), !tamper);
    }

    /// DLEQ batch verification accepts n valid proofs and rejects the
    /// batch when any single proof is tampered.
    #[test]
    fn dleq_batch_accepts_valid_rejects_tampered(
        seed in any::<u64>(),
        n in 1usize..8,
        tamper in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stmts: Vec<(GroupElement, GroupElement, GroupElement, GroupElement, DleqProof)> =
            (0..n)
                .map(|_| {
                    let x = Scalar::random(&mut rng);
                    let b1 = GroupElement::random(&mut rng);
                    let b2 = GroupElement::random(&mut rng);
                    let p1 = b1.mul(&x);
                    let p2 = b2.mul(&x);
                    let proof = DleqProof::prove(&mut rng, b"prop", &b1, &p1, &b2, &p2, &x);
                    (b1, p1, b2, p2, proof)
                })
                .collect();
        if tamper {
            let idx = (seed as usize) % n;
            stmts[idx].4.response = stmts[idx].4.response.add(&Scalar::ONE);
        }
        let entries: Vec<DleqBatchEntry> = stmts
            .iter()
            .map(|(b1, p1, b2, p2, proof)| DleqBatchEntry {
                context: b"prop",
                base1: *b1,
                public1: *p1,
                base2: *b2,
                public2: *p2,
                proof: *proof,
            })
            .collect();
        prop_assert_eq!(DleqProof::batch_verify(&entries), !tamper);

        // Every batch member also passes/fails individually the same way.
        let individual = stmts
            .iter()
            .all(|(b1, p1, b2, p2, proof)| proof.verify(b"prop", b1, p1, b2, p2));
        prop_assert_eq!(individual, !tamper);
    }
}
