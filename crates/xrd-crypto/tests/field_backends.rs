//! Differential tests driving BOTH field backends from one workspace
//! build (they are always compiled; the feature flags only choose
//! which one the `FieldElement` alias points at — see
//! `src/field/mod.rs`): random op sequences must agree limb for limb
//! after canonical encoding, known-answer vectors around `p`, and the
//! `sqrt_ratio` edge cases must match on both representations.  The
//! sat64 backend's asm kernels are additionally diffed against its
//! portable carry chains.

use proptest::prelude::*;

use xrd_crypto::field::{fiat51, sat64};

/// A pair of elements, one per backend, constructed from the same
/// canonical bytes and kept in lockstep through every operation.
#[derive(Clone, Copy, Debug)]
struct Pair {
    a: fiat51::FieldElement,
    b: sat64::FieldElement,
}

impl Pair {
    fn from_bytes(bytes: &[u8; 32]) -> Pair {
        Pair {
            a: fiat51::FieldElement::from_bytes(bytes),
            b: sat64::FieldElement::from_bytes(bytes),
        }
    }

    fn from_u64(x: u64) -> Pair {
        Pair {
            a: fiat51::FieldElement::from_u64(x),
            b: sat64::FieldElement::from_u64(x),
        }
    }

    /// Both representations must canonicalize identically.
    fn assert_agree(&self, what: &str) -> [u8; 32] {
        let ea = self.a.to_bytes();
        let eb = self.b.to_bytes();
        assert_eq!(ea, eb, "backends disagree after {what}");
        ea
    }
}

/// The ops a random differential sequence draws from.
#[derive(Clone, Copy, Debug)]
enum Op {
    Add(usize),
    Sub(usize),
    Mul(usize),
    Square,
    Square2,
    Neg,
    Invert,
    Abs,
    CondNegate(bool),
}

/// Decode one sampled byte into an op — selector in the low bits,
/// operand index and flag from the high bits (the vendored proptest
/// shim has neither `prop_oneof!` nor tuple strategies).
fn decode_op(sel: u8) -> Op {
    let j = ((sel >> 4) % 4) as usize;
    let flag = sel & 0x80 != 0;
    match sel % 9 {
        0 => Op::Add(j),
        1 => Op::Sub(j),
        2 => Op::Mul(j),
        3 => Op::Square,
        4 => Op::Square2,
        5 => Op::Neg,
        6 => Op::Invert,
        7 => Op::Abs,
        _ => Op::CondNegate(flag),
    }
}

proptest! {
    /// Random op sequences over random inputs: the two backends must
    /// stay byte-identical at every step, not just at the end (an
    /// intermediate divergence that later cancels would hide a bug).
    #[test]
    fn random_op_sequences_agree(
        inputs in prop::collection::vec(prop::array::uniform32(any::<u8>()), 1..5),
        raw_ops in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        let ops: Vec<Op> = raw_ops.iter().map(|&sel| decode_op(sel)).collect();
        let pairs: Vec<Pair> = inputs.iter().map(Pair::from_bytes).collect();
        let mut acc = pairs[0];
        for (i, op) in ops.iter().enumerate() {
            let rhs = |j: usize| pairs[j % pairs.len()];
            acc = match *op {
                Op::Add(j) => Pair { a: acc.a.add(&rhs(j).a), b: acc.b.add(&rhs(j).b) },
                Op::Sub(j) => Pair { a: acc.a.sub(&rhs(j).a), b: acc.b.sub(&rhs(j).b) },
                Op::Mul(j) => Pair { a: acc.a.mul(&rhs(j).a), b: acc.b.mul(&rhs(j).b) },
                Op::Square => Pair { a: acc.a.square(), b: acc.b.square() },
                Op::Square2 => Pair { a: acc.a.square2(), b: acc.b.square2() },
                Op::Neg => Pair { a: acc.a.neg(), b: acc.b.neg() },
                Op::Invert => Pair { a: acc.a.invert(), b: acc.b.invert() },
                Op::Abs => Pair { a: acc.a.abs(), b: acc.b.abs() },
                Op::CondNegate(c) => Pair {
                    a: acc.a.conditional_negate(c as u64),
                    b: acc.b.conditional_negate(c as u64),
                },
            };
            acc.assert_agree(&format!("step {i}: {op:?}"));
            prop_assert_eq!(acc.a.is_negative(), acc.b.is_negative());
            prop_assert_eq!(acc.a.is_zero(), acc.b.is_zero());
        }
    }

    /// `sqrt_ratio_i` must agree on both the square/non-square verdict
    /// and the (canonicalized) root for random ratios.
    #[test]
    fn sqrt_ratio_agrees(
        u in prop::array::uniform32(any::<u8>()),
        v in prop::array::uniform32(any::<u8>()),
    ) {
        let pu = Pair::from_bytes(&u);
        let pv = Pair::from_bytes(&v);
        let (ok_a, r_a) = fiat51::FieldElement::sqrt_ratio_i(&pu.a, &pv.a);
        let (ok_b, r_b) = sat64::FieldElement::sqrt_ratio_i(&pu.b, &pv.b);
        prop_assert_eq!(ok_a, ok_b);
        prop_assert_eq!(r_a.to_bytes(), r_b.to_bytes());
    }

    /// The sat64 asm kernels vs the portable u128 carry chains on
    /// arbitrary (not just canonical) limb patterns — `from_bytes`
    /// never produces a limb-3 top bit, so drive the representation's
    /// full `value < 2^256` input domain through multiplication first.
    #[test]
    fn sat64_asm_matches_portable(
        x in prop::array::uniform32(any::<u8>()),
        y in prop::array::uniform32(any::<u8>()),
    ) {
        // Products of parsed values roam the full representation range.
        let a = sat64::FieldElement::from_bytes(&x).mul(&sat64::FieldElement::from_bytes(&y));
        let b = sat64::FieldElement::from_bytes(&y).square();
        prop_assert_eq!(a.mul(&b).to_bytes(), a.mul_portable_ref(&b).to_bytes());
        prop_assert_eq!(a.square().to_bytes(), a.mul_portable_ref(&a).to_bytes());
        prop_assert_eq!(
            a.square2().to_bytes(),
            a.mul_portable_ref(&a).add(&a.mul_portable_ref(&a)).to_bytes()
        );
    }

    /// Batch inversion agrees across backends (zeros included).
    #[test]
    fn batch_invert_agrees(
        inputs in prop::collection::vec(prop::array::uniform32(any::<u8>()), 0..12),
        zero_at in any::<prop::sample::Index>(),
    ) {
        let mut va: Vec<fiat51::FieldElement> =
            inputs.iter().map(fiat51::FieldElement::from_bytes).collect();
        let mut vb: Vec<sat64::FieldElement> =
            inputs.iter().map(sat64::FieldElement::from_bytes).collect();
        if !va.is_empty() {
            let i = zero_at.index(va.len());
            va[i] = fiat51::FieldElement::ZERO;
            vb[i] = sat64::FieldElement::ZERO;
        }
        fiat51::FieldElement::batch_invert(&mut va);
        sat64::FieldElement::batch_invert(&mut vb);
        for (a, b) in va.iter().zip(&vb) {
            prop_assert_eq!(a.to_bytes(), b.to_bytes());
        }
    }

    /// The full curve pipeline instantiated over each backend: a
    /// decompress → scalar ladder → compress round trip must be
    /// byte-identical (this exercises lazy-reduction behavior the
    /// field-level sequences cannot reach, since `edwards.rs` is the
    /// only caller of the lazy entry points).
    #[test]
    fn point_ladders_agree(seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use xrd_crypto::edwards::{EdwardsPoint, PointTable};
        use xrd_crypto::Scalar;

        let mut rng = StdRng::seed_from_u64(seed);
        let base = EdwardsPoint::base_mul(&Scalar::random(&mut rng)).compress();
        let s = Scalar::random(&mut rng);
        let t = Scalar::random(&mut rng);

        let p51: EdwardsPoint<fiat51::FieldElement> =
            EdwardsPoint::decompress(&base).expect("valid");
        let p64: EdwardsPoint<sat64::FieldElement> =
            EdwardsPoint::decompress(&base).expect("valid");
        prop_assert_eq!(p51.scalar_mul(&s).compress(), p64.scalar_mul(&s).compress());

        let t51 = PointTable::new(&p51);
        let t64 = PointTable::new(&p64);
        let (a51, b51) = t51.scalar_mul_pair(&s, &t);
        let (a64, b64) = t64.scalar_mul_pair(&s, &t);
        prop_assert_eq!(a51.compress(), a64.compress());
        prop_assert_eq!(b51.compress(), b64.compress());
    }
}

/// Known-answer vectors around the modulus: `p ± {0, 1, 2}` and the
/// `2^255 - 19` aliases that `from_bytes`'s top-bit masking admits.
/// Every encodable alias of a small value must canonicalize to that
/// value on both backends.
#[test]
fn known_answer_vectors_around_p() {
    // p = 2^255 - 19, little-endian.
    let mut p = [0xffu8; 32];
    p[0] = 0xed;
    p[31] = 0x7f;

    let add_small = |base: &[u8; 32], delta: u8| {
        let mut out = *base;
        let (v, carry) = out[0].overflowing_add(delta);
        out[0] = v;
        assert!(!carry, "vector construction stays within a byte");
        out
    };
    let sub_small = |base: &[u8; 32], delta: u8| {
        let mut out = *base;
        let (v, borrow) = out[0].overflowing_sub(delta);
        out[0] = v;
        assert!(!borrow, "vector construction stays within a byte");
        out
    };

    // (encoding, canonical value as small integer) pairs.
    let vectors: Vec<([u8; 32], Pair, &str)> = vec![
        (p, Pair::from_u64(0), "p ≡ 0"),
        (add_small(&p, 1), Pair::from_u64(1), "p + 1 ≡ 1"),
        (add_small(&p, 2), Pair::from_u64(2), "p + 2 ≡ 2"),
        (
            sub_small(&p, 1),
            Pair::from_u64(0).sub_pair(&Pair::from_u64(1)),
            "p - 1 ≡ -1",
        ),
        (
            sub_small(&p, 2),
            Pair::from_u64(0).sub_pair(&Pair::from_u64(2)),
            "p - 2 ≡ -2",
        ),
        (
            {
                let mut all = [0xffu8; 32];
                all[31] = 0x7f; // 2^255 - 1
                all
            },
            Pair::from_u64(18), // 2^255 - 1 - p = 18
            "2^255 - 1 ≡ 18",
        ),
        (
            {
                let mut b = p;
                b[31] |= 0x80; // top bit set: must be ignored
                b
            },
            Pair::from_u64(0),
            "p with sign bit ≡ 0",
        ),
    ];

    for (bytes, expect, label) in vectors {
        let pair = Pair::from_bytes(&bytes);
        let enc = pair.assert_agree(label);
        assert_eq!(enc, expect.assert_agree(label), "wrong value for {label}");
    }
}

impl Pair {
    fn sub_pair(&self, rhs: &Pair) -> Pair {
        Pair {
            a: self.a.sub(&rhs.a),
            b: self.b.sub(&rhs.b),
        }
    }
}

/// The `sqrt_ratio_i` edge cases pinned by the Ristretto spec, on both
/// backends: `u = 0` is a square with root 0; `v = 0` (u ≠ 0) is a
/// non-square with root 0; a known square and a known non-square.
#[test]
fn sqrt_ratio_edge_cases_both_backends() {
    fn check<F>(
        zero: F,
        one: F,
        two: F,
        four: F,
        sqrt_ratio: impl Fn(&F, &F) -> (bool, F),
        to_bytes: impl Fn(&F) -> [u8; 32],
        name: &str,
    ) {
        let (ok, r) = sqrt_ratio(&zero, &four);
        assert!(ok, "{name}: u=0 must report square");
        assert_eq!(to_bytes(&r), [0u8; 32], "{name}: u=0 root is 0");

        let (ok, r) = sqrt_ratio(&four, &zero);
        assert!(!ok, "{name}: v=0 must report non-square");
        assert_eq!(to_bytes(&r), [0u8; 32], "{name}: v=0 root is 0");

        let (ok, r) = sqrt_ratio(&four, &one);
        assert!(ok, "{name}: 4 is square");
        let mut expect_two = [0u8; 32];
        expect_two[0] = 2;
        assert_eq!(to_bytes(&r), expect_two, "{name}: sqrt(4) = 2");

        // 2 is a non-residue mod p (p ≡ 5 mod 8).
        let (ok, _) = sqrt_ratio(&two, &one);
        assert!(!ok, "{name}: 2 is a non-square");
    }

    check(
        fiat51::FieldElement::ZERO,
        fiat51::FieldElement::ONE,
        fiat51::FieldElement::from_u64(2),
        fiat51::FieldElement::from_u64(4),
        fiat51::FieldElement::sqrt_ratio_i,
        |x| x.to_bytes(),
        "fiat51",
    );
    check(
        sat64::FieldElement::ZERO,
        sat64::FieldElement::ONE,
        sat64::FieldElement::from_u64(2),
        sat64::FieldElement::from_u64(4),
        sat64::FieldElement::sqrt_ratio_i,
        |x| x.to_bytes(),
        "sat64",
    );
}
