//! Arithmetic modulo the group order
//! `l = 2^252 + 27742317777372353535851937790883648493`
//! (the prime order of the ristretto255 group).
//!
//! Scalars are stored canonically (four 64-bit little-endian limbs, value
//! `< l`).  Multiplication uses Montgomery reduction (CIOS); exponentiation
//! for inversion converts to Montgomery form once.

use rand::RngCore;

/// The group order `l`, little-endian 64-bit limbs.
const L: [u64; 4] = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

/// `R = 2^256 mod l`.
const R: [u64; 4] = [
    0xd6ec31748d98951d,
    0xc6ef5bf4737dcf70,
    0xfffffffffffffffe,
    0x0fffffffffffffff,
];

/// `RR = 2^512 mod l` (converts into Montgomery form).
const RR: [u64; 4] = [
    0xa40611e3449c0f01,
    0xd00e1ba768859347,
    0xceec73d217f5be65,
    0x0399411b7c309a3d,
];

/// `-l^{-1} mod 2^64`.
const NINV: u64 = 0xd2b51da312547e1b;

/// `l - 2`, little-endian bytes (inversion exponent).
const L_MINUS_2_LE: [u8; 32] = [
    0xeb, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10,
];

/// An integer modulo the ristretto255 group order, canonically reduced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Scalar(pub(crate) [u64; 4]);

#[inline(always)]
fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

#[inline(always)]
fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + (borrow & 1) as u128);
    (t as u64, (t >> 64) as u64) // borrow out is all-ones if underflow
}

#[inline(always)]
fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + (b as u128) * (c as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// `a < b` on 4-limb little-endian values.
fn lt(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] < b[i] {
            return true;
        }
        if a[i] > b[i] {
            return false;
        }
    }
    false
}

/// Subtract `l` once if the value is `>= l`.
fn reduce_once(limbs: [u64; 4]) -> [u64; 4] {
    if lt(&limbs, &L) {
        return limbs;
    }
    let mut out = [0u64; 4];
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d, b) = sbb(limbs[i], L[i], borrow);
        out[i] = d;
        borrow = b;
    }
    out
}

/// Montgomery reduction of a 512-bit value `t` (as 8 limbs):
/// returns `t * R^{-1} mod l`.  Requires `t < l * 2^256`.
fn montgomery_reduce(t: &[u64; 8]) -> Scalar {
    let mut t9 = [0u64; 9];
    t9[..8].copy_from_slice(t);

    for i in 0..4 {
        let m = t9[i].wrapping_mul(NINV);
        let mut carry = 0u64;
        for j in 0..4 {
            let (lo, hi) = mac(t9[i + j], m, L[j], carry);
            t9[i + j] = lo;
            carry = hi;
        }
        // Cascade the final carry into the upper limbs.
        for limb in t9.iter_mut().skip(i + 4) {
            let (lo, hi) = adc(*limb, carry, 0);
            *limb = lo;
            carry = hi;
            if carry == 0 {
                break;
            }
        }
    }
    // Result is t9[4..8] (t9[8] can be nonzero only if input >= l*2^256,
    // excluded by the caller contract), possibly >= l once.
    debug_assert_eq!(t9[8], 0);
    Scalar(reduce_once([t9[4], t9[5], t9[6], t9[7]]))
}

/// Full 4x4 schoolbook multiply into 8 limbs.
fn mul_wide(a: &[u64; 4], b: &[u64; 4]) -> [u64; 8] {
    let mut t = [0u64; 8];
    for i in 0..4 {
        let mut carry = 0u64;
        for j in 0..4 {
            let (lo, hi) = mac(t[i + j], a[i], b[j], carry);
            t[i + j] = lo;
            carry = hi;
        }
        t[i + 4] = carry;
    }
    t
}

/// `a * b * R^{-1} mod l` (both inputs in any form; output in the "same
/// side" as `a*b/R`).
fn mont_mul(a: &Scalar, b: &Scalar) -> Scalar {
    montgomery_reduce(&mul_wide(&a.0, &b.0))
}

impl Scalar {
    /// The additive identity.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Construct from a small integer.
    pub const fn from_u64(x: u64) -> Scalar {
        Scalar([x, 0, 0, 0])
    }

    /// Parse 32 little-endian bytes, reducing modulo `l`.
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Scalar {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = crate::util::load_u64_le(&bytes[i * 8..i * 8 + 8]);
        }
        // Value < 2^256 < l * 2^4, so a few conditional subtracts... but a
        // single Montgomery round-trip is simpler and fully general:
        // REDC(x) = x/R, then * RR / R = x mod l.
        let redc = montgomery_reduce(&[limbs[0], limbs[1], limbs[2], limbs[3], 0, 0, 0, 0]);
        mont_mul(&redc, &Scalar(RR))
    }

    /// Parse 32 little-endian bytes, requiring the canonical (`< l`)
    /// encoding.  Returns `None` otherwise.
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = crate::util::load_u64_le(&bytes[i * 8..i * 8 + 8]);
        }
        if lt(&limbs, &L) {
            Some(Scalar(limbs))
        } else {
            None
        }
    }

    /// Reduce 64 little-endian bytes modulo `l` (the standard way to turn
    /// hash output into a uniform scalar).
    pub fn from_bytes_mod_order_wide(bytes: &[u8; 64]) -> Scalar {
        let mut lo = [0u8; 32];
        let mut hi = [0u8; 32];
        lo.copy_from_slice(&bytes[..32]);
        hi.copy_from_slice(&bytes[32..]);
        let lo = Scalar::from_bytes_mod_order(&lo);
        let hi = Scalar::from_bytes_mod_order(&hi);
        // x = lo + hi * 2^256 = lo + hi * R (mod l)
        lo.add(&hi.mul(&Scalar(R)))
    }

    /// Serialize to 32 little-endian bytes (canonical).
    pub fn to_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Uniformly random scalar.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Scalar {
        let mut wide = [0u8; 64];
        rng.fill_bytes(&mut wide);
        Scalar::from_bytes_mod_order_wide(&wide)
    }

    /// Addition mod `l`.
    pub fn add(&self, rhs: &Scalar) -> Scalar {
        let mut limbs = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            let (s, c) = adc(self.0[i], rhs.0[i], carry);
            limbs[i] = s;
            carry = c;
        }
        debug_assert_eq!(carry, 0, "inputs must be canonical");
        Scalar(reduce_once(limbs))
    }

    /// Subtraction mod `l`.
    pub fn sub(&self, rhs: &Scalar) -> Scalar {
        let mut limbs = [0u64; 4];
        let mut borrow = 0u64;
        for i in 0..4 {
            let (d, b) = sbb(self.0[i], rhs.0[i], borrow);
            limbs[i] = d;
            borrow = b;
        }
        if borrow != 0 {
            // Underflowed: add l back.
            let mut carry = 0u64;
            for i in 0..4 {
                let (s, c) = adc(limbs[i], L[i], carry);
                limbs[i] = s;
                carry = c;
            }
        }
        Scalar(limbs)
    }

    /// Negation mod `l`.
    pub fn neg(&self) -> Scalar {
        Scalar::ZERO.sub(self)
    }

    /// Multiplication mod `l`.
    pub fn mul(&self, rhs: &Scalar) -> Scalar {
        // (a*b/R) * RR / R = a*b mod l
        mont_mul(&mont_mul(self, rhs), &Scalar(RR))
    }

    /// Multiplicative inverse (`self^(l-2)`); returns zero for zero.
    pub fn invert(&self) -> Scalar {
        // Work in Montgomery form for the whole ladder.
        let self_mont = mont_mul(self, &Scalar(RR));
        let mut acc = Scalar(R); // 1 in Montgomery form
        for byte in L_MINUS_2_LE.iter().rev() {
            for bit in (0..8).rev() {
                acc = mont_mul(&acc, &acc);
                if (byte >> bit) & 1 == 1 {
                    acc = mont_mul(&acc, &self_mont);
                }
            }
        }
        // Convert out of Montgomery form.
        montgomery_reduce(&[acc.0[0], acc.0[1], acc.0[2], acc.0[3], 0, 0, 0, 0])
    }

    /// True iff this is the zero scalar.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Iterate the 252 bits of the scalar from least to most significant.
    pub fn bits_le(&self) -> impl Iterator<Item = bool> + '_ {
        (0..256).map(move |i| (self.0[i / 64] >> (i % 64)) & 1 == 1)
    }

    /// Radix-16 signed digits in [-8, 8), 64 of them, for windowed scalar
    /// multiplication (digit recoding standard for curve25519).
    pub fn to_radix_16(&self) -> [i8; 64] {
        let bytes = self.to_bytes();
        let mut digits = [0i8; 64];
        for i in 0..32 {
            digits[2 * i] = (bytes[i] & 15) as i8;
            digits[2 * i + 1] = ((bytes[i] >> 4) & 15) as i8;
        }
        // Recenter: digit in [0,16) -> [-8,8) with carry.
        for i in 0..63 {
            let carry = (digits[i] + 8) >> 4;
            digits[i] -= carry << 4;
            digits[i + 1] += carry;
        }
        // Top digit stays < 8 because l < 2^253.
        digits
    }

    /// Width-`w` non-adjacent form: 256 signed digits, each either zero
    /// or odd with absolute value below `2^(w-1)`, at most one nonzero
    /// digit in any `w` consecutive positions.  Used by the
    /// **variable-time** Straus multi-scalar ladder; never call on
    /// secret scalars (the digit pattern leaks through timing).
    pub fn non_adjacent_form(&self, w: usize) -> [i8; 256] {
        debug_assert!((2..=8).contains(&w));
        let mut naf = [0i8; 256];
        // Five limbs so windows can read past the top limb.
        let mut limbs = [0u64; 5];
        limbs[..4].copy_from_slice(&self.0);

        let width = 1u64 << w;
        let window_mask = width - 1;

        let mut pos = 0;
        let mut carry = 0u64;
        while pos < 256 {
            let idx = pos / 64;
            let bit = pos % 64;
            let bit_buf = if bit == 0 {
                limbs[idx]
            } else {
                (limbs[idx] >> bit) | (limbs[idx + 1] << (64 - bit))
            };
            let window = carry + (bit_buf & window_mask);
            if window & 1 == 0 {
                pos += 1;
                continue;
            }
            if window < width / 2 {
                carry = 0;
                naf[pos] = window as i8;
            } else {
                carry = 1;
                naf[pos] = (window as i64 - width as i64) as i8;
            }
            pos += w;
        }
        naf
    }

    /// Signed radix-`2^w` digits (each in `[-2^(w-1), 2^(w-1)]`), for
    /// the **variable-time** Pippenger bucket method; never call on
    /// secret scalars.
    pub fn to_signed_radix_2w(&self, w: usize) -> Vec<i64> {
        debug_assert!((4..=8).contains(&w));
        let digits_count = 256usize.div_ceil(w);
        let mut limbs = [0u64; 5];
        limbs[..4].copy_from_slice(&self.0);

        let radix = 1i64 << w;
        let window_mask = (radix - 1) as u64;
        let mut digits = vec![0i64; digits_count];
        let mut carry = 0i64;
        for (i, digit) in digits.iter_mut().enumerate() {
            let bit_offset = i * w;
            let idx = bit_offset / 64;
            let bit = bit_offset % 64;
            let bit_buf = if bit == 0 {
                limbs[idx]
            } else {
                (limbs[idx] >> bit) | (limbs[idx + 1] << (64 - bit))
            };
            let coef = carry + (bit_buf & window_mask) as i64;
            // Recenter into [-2^(w-1), 2^(w-1)).
            carry = (coef + radix / 2) >> w;
            *digit = coef - (carry << w);
        }
        // Top carry folds into the last digit (l < 2^253 leaves room).
        if carry != 0 {
            *digits.last_mut().expect("at least one digit") += carry << w;
        }
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn s(n: u64) -> Scalar {
        Scalar::from_u64(n)
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!(s(2).add(&s(3)), s(5));
        assert_eq!(s(5).sub(&s(3)), s(2));
        assert_eq!(s(6).mul(&s(7)), s(42));
    }

    #[test]
    fn sub_underflow_wraps() {
        // 0 - 1 = l - 1
        let lm1 = Scalar::ZERO.sub(&Scalar::ONE);
        assert_eq!(lm1.add(&Scalar::ONE), Scalar::ZERO);
    }

    #[test]
    fn l_reduces_to_zero() {
        let mut l_bytes = [0u8; 32];
        for i in 0..4 {
            l_bytes[i * 8..i * 8 + 8].copy_from_slice(&L[i].to_le_bytes());
        }
        assert!(Scalar::from_bytes_mod_order(&l_bytes).is_zero());
        assert!(Scalar::from_canonical_bytes(&l_bytes).is_none());
    }

    #[test]
    fn mul_commutative_and_associative() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let a = Scalar::random(&mut rng);
            let b = Scalar::random(&mut rng);
            let c = Scalar::random(&mut rng);
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }
    }

    #[test]
    fn invert_roundtrip() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let a = Scalar::random(&mut rng);
            assert_eq!(a.mul(&a.invert()), Scalar::ONE);
        }
        assert!(Scalar::ZERO.invert().is_zero());
    }

    #[test]
    fn wide_reduction_matches_iterated_add() {
        // 2^256 mod l == R constant
        let mut wide = [0u8; 64];
        wide[32] = 1; // 2^256
        assert_eq!(Scalar::from_bytes_mod_order_wide(&wide), Scalar(R));
    }

    #[test]
    fn to_bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let a = Scalar::random(&mut rng);
            assert_eq!(Scalar::from_canonical_bytes(&a.to_bytes()), Some(a));
        }
    }

    #[test]
    fn radix_16_reconstructs() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let a = Scalar::random(&mut rng);
            let digits = a.to_radix_16();
            // sum digits[i] * 16^i mod l == a
            let sixteen = s(16);
            let mut acc = Scalar::ZERO;
            for &d in digits.iter().rev() {
                acc = acc.mul(&sixteen);
                let dd = if d < 0 {
                    s((-d) as u64).neg()
                } else {
                    s(d as u64)
                };
                acc = acc.add(&dd);
            }
            assert_eq!(acc, a);
            for &d in digits.iter() {
                assert!((-8..=8).contains(&d));
            }
        }
    }

    #[test]
    fn neg_is_additive_inverse() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Scalar::random(&mut rng);
        assert_eq!(a.add(&a.neg()), Scalar::ZERO);
        assert_eq!(Scalar::ZERO.neg(), Scalar::ZERO);
    }

    #[test]
    fn from_u64_matches_mod_order() {
        let mut b = [0u8; 32];
        b[0] = 200;
        assert_eq!(Scalar::from_bytes_mod_order(&b), s(200));
    }
}
