//! The Poly1305 one-time authenticator (RFC 8439), from scratch, using a
//! five-limb radix-2^26 representation.

/// Poly1305 MAC state.
pub struct Poly1305 {
    /// Clamped `r`, radix 2^26.
    r: [u32; 5],
    /// `s` (the final added secret), four 32-bit words.
    s: [u32; 4],
    /// Accumulator, radix 2^26.
    h: [u32; 5],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Initialize with a 32-byte one-time key `(r, s)`.
    pub fn new(key: &[u8; 32]) -> Poly1305 {
        let load = crate::util::load_u32_le;
        // Clamp r per the RFC.
        let t0 = load(&key[0..4]);
        let t1 = load(&key[4..8]);
        let t2 = load(&key[8..12]);
        let t3 = load(&key[12..16]);
        let r = [
            t0 & 0x03ffffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ffff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ffc0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f03fff,
            (t3 >> 8) & 0x000fffff,
        ];
        let s = [
            load(&key[16..20]),
            load(&key[20..24]),
            load(&key[24..28]),
            load(&key[28..32]),
        ];
        Poly1305 {
            r,
            s,
            h: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Process one 16-byte block; `final_bit` is 1 for full blocks and
    /// placed past the end for partial final blocks by the caller.
    fn block(&mut self, block: &[u8; 16], partial_len: Option<usize>) {
        let load = crate::util::load_u32_le;
        let t0 = load(&block[0..4]);
        let t1 = load(&block[4..8]);
        let t2 = load(&block[8..12]);
        let t3 = load(&block[12..16]);

        // Append the message block plus the 2^(8*len) pad bit.
        let hibit: u32 = if partial_len.is_some() { 0 } else { 1 << 24 };
        self.h[0] = self.h[0].wrapping_add(t0 & 0x03ffffff);
        self.h[1] = self.h[1].wrapping_add(((t0 >> 26) | (t1 << 6)) & 0x03ffffff);
        self.h[2] = self.h[2].wrapping_add(((t1 >> 20) | (t2 << 12)) & 0x03ffffff);
        self.h[3] = self.h[3].wrapping_add(((t2 >> 14) | (t3 << 18)) & 0x03ffffff);
        self.h[4] = self.h[4].wrapping_add((t3 >> 8) | hibit);

        // h *= r (mod 2^130 - 5)
        let r = &self.r;
        let h = &self.h;
        let s1 = r[1] * 5;
        let s2 = r[2] * 5;
        let s3 = r[3] * 5;
        let s4 = r[4] * 5;
        let m = |a: u32, b: u32| (a as u64) * (b as u64);

        let d0 = m(h[0], r[0]) + m(h[1], s4) + m(h[2], s3) + m(h[3], s2) + m(h[4], s1);
        let d1 = m(h[0], r[1]) + m(h[1], r[0]) + m(h[2], s4) + m(h[3], s3) + m(h[4], s2);
        let d2 = m(h[0], r[2]) + m(h[1], r[1]) + m(h[2], r[0]) + m(h[3], s4) + m(h[4], s3);
        let d3 = m(h[0], r[3]) + m(h[1], r[2]) + m(h[2], r[1]) + m(h[3], r[0]) + m(h[4], s4);
        let d4 = m(h[0], r[4]) + m(h[1], r[3]) + m(h[2], r[2]) + m(h[3], r[1]) + m(h[4], r[0]);

        // Carry propagation.
        let mut c: u64;
        let mut d = [d0, d1, d2, d3, d4];
        c = d[0] >> 26;
        self.h[0] = (d[0] as u32) & 0x03ffffff;
        d[1] += c;
        c = d[1] >> 26;
        self.h[1] = (d[1] as u32) & 0x03ffffff;
        d[2] += c;
        c = d[2] >> 26;
        self.h[2] = (d[2] as u32) & 0x03ffffff;
        d[3] += c;
        c = d[3] >> 26;
        self.h[3] = (d[3] as u32) & 0x03ffffff;
        d[4] += c;
        c = d[4] >> 26;
        self.h[4] = (d[4] as u32) & 0x03ffffff;
        self.h[0] += (c as u32) * 5;
        let c2 = self.h[0] >> 26;
        self.h[0] &= 0x03ffffff;
        self.h[1] += c2;
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) -> &mut Self {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, None);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.block(&block, None);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
        self
    }

    /// Finish and produce the 16-byte tag.
    pub fn finalize(mut self) -> [u8; 16] {
        if self.buf_len > 0 {
            // Pad the partial block with the 0x01 byte then zeros; the
            // hibit is then *not* added in `block`.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            let len = self.buf_len;
            self.block(&block, Some(len));
        }

        // Full reduction of h mod 2^130 - 5.
        let mut h = self.h;
        let mut c = h[1] >> 26;
        h[1] &= 0x03ffffff;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= 0x03ffffff;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= 0x03ffffff;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= 0x03ffffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x03ffffff;
        h[1] += c;

        // Compute h + -p = h - (2^130 - 5) and select it if non-negative.
        let mut g = [0u32; 5];
        let mut carry = 5u32;
        for i in 0..4 {
            let t = h[i].wrapping_add(carry);
            carry = t >> 26;
            g[i] = t & 0x03ffffff;
        }
        let t = h[4].wrapping_add(carry).wrapping_sub(1 << 26);
        g[4] = t;
        let underflow = (t >> 31) & 1; // 1 if h < p
        let mask = underflow.wrapping_sub(1); // all-ones if h >= p
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }
        // g[4] may have had its high bits set from the wrapping sub; mask.
        h[4] &= 0x03ffffff;

        // Serialize h to 128 bits and add s mod 2^128.
        let h0 = h[0] | (h[1] << 26);
        let h1 = (h[1] >> 6) | (h[2] << 20);
        let h2 = (h[2] >> 12) | (h[3] << 14);
        let h3 = (h[3] >> 18) | (h[4] << 8);

        let mut acc: u64;
        let mut out = [0u8; 16];
        acc = h0 as u64 + self.s[0] as u64;
        out[0..4].copy_from_slice(&(acc as u32).to_le_bytes());
        acc = h1 as u64 + self.s[1] as u64 + (acc >> 32);
        out[4..8].copy_from_slice(&(acc as u32).to_le_bytes());
        acc = h2 as u64 + self.s[2] as u64 + (acc >> 32);
        out[8..12].copy_from_slice(&(acc as u32).to_le_bytes());
        acc = h3 as u64 + self.s[3] as u64 + (acc >> 32);
        out[12..16].copy_from_slice(&(acc as u32).to_le_bytes());
        out
    }
}

/// One-shot Poly1305 MAC.
pub fn poly1305_mac(key: &[u8; 32], data: &[u8]) -> [u8; 16] {
    let mut p = Poly1305::new(key);
    p.update(data);
    p.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let key_bytes =
            from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
        let mut key = [0u8; 32];
        key.copy_from_slice(&key_bytes);
        let tag = poly1305_mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(to_hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [3u8; 32];
        let data: Vec<u8> = (0..200u32).map(|x| (x * 7) as u8).collect();
        let expect = poly1305_mac(&key, &data);
        let mut p = Poly1305::new(&key);
        for chunk in data.chunks(7) {
            p.update(chunk);
        }
        assert_eq!(p.finalize(), expect);
    }

    #[test]
    fn empty_message() {
        let key = [1u8; 32];
        // Tag of empty message is just `s`.
        let tag = poly1305_mac(&key, b"");
        assert_eq!(&tag, &key[16..32]);
    }

    #[test]
    fn exact_block_multiple() {
        let key = [9u8; 32];
        let a = poly1305_mac(&key, &[0u8; 32]);
        let b = poly1305_mac(&key, &[0u8; 33]);
        assert_ne!(a, b);
    }

    #[test]
    fn tag_depends_on_every_byte() {
        let key = [5u8; 32];
        let mut msg = vec![0u8; 48];
        let base = poly1305_mac(&key, &msg);
        for i in 0..48 {
            msg[i] ^= 1;
            assert_ne!(poly1305_mac(&key, &msg), base, "byte {i} ignored");
            msg[i] ^= 1;
        }
    }

    /// Degenerate full-reduction case: h lands exactly on p.
    #[test]
    fn reduction_edge_values() {
        // r = 0 makes the polynomial collapse; tag must still be s.
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&[0xffu8; 16]);
        let tag = poly1305_mac(&key, b"whatever message content");
        assert_eq!(&tag, &[0xffu8; 16]);
    }
}
