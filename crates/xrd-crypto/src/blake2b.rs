//! BLAKE2b (RFC 7693), from scratch: streaming hash with optional key and
//! configurable digest length (1..=64 bytes).
//!
//! BLAKE2b is the general-purpose hash of the NaCl/libsodium family that
//! the XRD prototype builds on; we use it for key derivation, Fiat–Shamir
//! transcripts, and mailbox/group assignment hashing.

/// BLAKE2b initialization vector (identical to the SHA-512 IV).
const IV: [u64; 8] = [
    0x6a09e667f3bcc908,
    0xbb67ae8584caa73b,
    0x3c6ef372fe94f82b,
    0xa54ff53a5f1d36f1,
    0x510e527fade682d1,
    0x9b05688c2b3e6c1f,
    0x1f83d9abfb41bd6b,
    0x5be0cd19137e2179,
];

/// Message schedule permutations for the 12 rounds (rows 10, 11 repeat
/// rows 0, 1 per the spec: SIGMA[round % 10]).
const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

const BLOCK_BYTES: usize = 128;

/// Incremental BLAKE2b hasher.
#[derive(Clone)]
pub struct Blake2b {
    h: [u64; 8],
    /// Total bytes compressed so far (128-bit counter, low/high).
    t: [u64; 2],
    buf: [u8; BLOCK_BYTES],
    buf_len: usize,
    out_len: usize,
}

#[inline(always)]
fn g(v: &mut [u64; 16], a: usize, b: usize, c: usize, d: usize, x: u64, y: u64) {
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
    v[d] = (v[d] ^ v[a]).rotate_right(32);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(24);
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
    v[d] = (v[d] ^ v[a]).rotate_right(16);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(63);
}

impl Blake2b {
    /// New unkeyed hasher with `out_len` output bytes (1..=64).
    pub fn new(out_len: usize) -> Blake2b {
        Self::new_keyed(&[], out_len)
    }

    /// New keyed hasher (MAC mode); key up to 64 bytes.
    pub fn new_keyed(key: &[u8], out_len: usize) -> Blake2b {
        assert!((1..=64).contains(&out_len), "digest length must be 1..=64");
        assert!(key.len() <= 64, "key must be at most 64 bytes");
        let mut h = IV;
        // Parameter block: digest length, key length, fanout=1, depth=1.
        h[0] ^= 0x0101_0000 ^ ((key.len() as u64) << 8) ^ (out_len as u64);
        let mut state = Blake2b {
            h,
            t: [0, 0],
            buf: [0u8; BLOCK_BYTES],
            buf_len: 0,
            out_len,
        };
        if !key.is_empty() {
            let mut block = [0u8; BLOCK_BYTES];
            block[..key.len()].copy_from_slice(key);
            state.update(&block);
        }
        state
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) -> &mut Self {
        // Compress the buffer only once we know more data follows, because
        // the final block needs the "last" flag.
        while !data.is_empty() {
            if self.buf_len == BLOCK_BYTES {
                self.increment_counter(BLOCK_BYTES as u64);
                let block = self.buf;
                self.compress(&block, false);
                self.buf_len = 0;
            }
            let take = (BLOCK_BYTES - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
        }
        self
    }

    /// Finish and return the digest.
    pub fn finalize(mut self) -> Vec<u8> {
        self.increment_counter(self.buf_len as u64);
        let mut block = [0u8; BLOCK_BYTES];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        self.compress(&block, true);

        let mut out = vec![0u8; self.out_len];
        for (i, chunk) in out.chunks_mut(8).enumerate() {
            let bytes = self.h[i].to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }

    /// Finish into a fixed 32-byte array (requires `out_len == 32`).
    pub fn finalize_32(self) -> [u8; 32] {
        assert_eq!(self.out_len, 32);
        let v = self.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&v);
        out
    }

    /// Finish into a fixed 64-byte array (requires `out_len == 64`).
    pub fn finalize_64(self) -> [u8; 64] {
        assert_eq!(self.out_len, 64);
        let v = self.finalize();
        let mut out = [0u8; 64];
        out.copy_from_slice(&v);
        out
    }

    fn increment_counter(&mut self, bytes: u64) {
        self.t[0] = self.t[0].wrapping_add(bytes);
        if self.t[0] < bytes {
            self.t[1] = self.t[1].wrapping_add(1);
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_BYTES], last: bool) {
        let mut m = [0u64; 16];
        for (i, limb) in m.iter_mut().enumerate() {
            *limb = crate::util::load_u64_le(&block[i * 8..i * 8 + 8]);
        }
        let mut v = [0u64; 16];
        v[..8].copy_from_slice(&self.h);
        v[8..].copy_from_slice(&IV);
        v[12] ^= self.t[0];
        v[13] ^= self.t[1];
        if last {
            v[14] = !v[14];
        }
        for round in 0..12 {
            let s = &SIGMA[round % 10];
            g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
            g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
            g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
            g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
            g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
            g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
            g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
            g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
        }
        for i in 0..8 {
            self.h[i] ^= v[i] ^ v[i + 8];
        }
    }
}

/// One-shot BLAKE2b-512.
pub fn blake2b_512(data: &[u8]) -> [u8; 64] {
    let mut h = Blake2b::new(64);
    h.update(data);
    h.finalize_64()
}

/// One-shot BLAKE2b-256.
pub fn blake2b_256(data: &[u8]) -> [u8; 32] {
    let mut h = Blake2b::new(32);
    h.update(data);
    h.finalize_32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_hex;

    #[test]
    fn empty_string_vector() {
        // Well-known BLAKE2b-512("") test vector.
        assert_eq!(
            to_hex(&blake2b_512(b"")),
            "786a02f742015903c6c6fd852552d272912f4740e15847618a86e217f71f5419\
             d25e1031afee585313896444934eb04b903a685b1448b755d56f701afe9be2ce"
                .replace(' ', "")
        );
    }

    #[test]
    fn abc_vector() {
        // RFC 7693 Appendix A: BLAKE2b-512("abc"), cross-checked against
        // Python hashlib.
        assert_eq!(
            to_hex(&blake2b_512(b"abc")),
            "ba80a53f981c4d0d6a2797b69f12f6e94c212f14685ac4b74b12bb6fdbffa2d1\
             7d87c5392aab792dc252d5de4533cc9518d38aa8dbf1925ab92386edd4009923"
                .replace(' ', "")
        );
    }

    #[test]
    fn short_digest_vector() {
        // BLAKE2b-256("x"), from Python hashlib.
        assert_eq!(
            to_hex(&blake2b_256(b"x")),
            "d161d71145abeec5ef15abcf0459cec60a27321e2f0ac0ef7ace5254f5944476"
        );
    }

    #[test]
    fn keyed_vector() {
        // blake2b(b"message", key=b"secret key", digest_size=32), hashlib.
        let mut h = Blake2b::new_keyed(b"secret key", 32);
        h.update(b"message");
        assert_eq!(
            to_hex(&h.finalize()),
            "f71324f0d1339cc29166e351477087fdabee524aea02eb2ff2b79f52eeaea4e4"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let oneshot = blake2b_512(&data);
        let mut h = Blake2b::new(64);
        // Deliberately awkward chunk sizes crossing block boundaries.
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot.to_vec());
    }

    #[test]
    fn exact_block_boundary() {
        let data = [0xabu8; 128];
        let mut h1 = Blake2b::new(64);
        h1.update(&data);
        let mut h2 = Blake2b::new(64);
        h2.update(&data[..64]);
        h2.update(&data[64..]);
        assert_eq!(h1.finalize(), h2.finalize());

        let data256 = [0xcdu8; 256];
        let mut h3 = Blake2b::new(32);
        h3.update(&data256);
        let _ = h3.finalize(); // must not panic
    }

    #[test]
    fn different_lengths_differ() {
        let a = blake2b_256(b"hello");
        let mut h = Blake2b::new(32);
        h.update(b"hello!");
        let b = h.finalize_32();
        assert_ne!(a, b);
    }

    #[test]
    fn keyed_mode_differs_from_unkeyed() {
        let mut keyed = Blake2b::new_keyed(b"secret key", 32);
        keyed.update(b"message");
        let mut unkeyed = Blake2b::new(32);
        unkeyed.update(b"message");
        assert_ne!(keyed.finalize(), unkeyed.finalize());
    }

    #[test]
    fn short_output_is_prefix_free() {
        // BLAKE2b-256 is NOT a truncation of BLAKE2b-512 (out_len is in the
        // parameter block).
        let h256 = blake2b_256(b"x");
        let h512 = blake2b_512(b"x");
        assert_ne!(&h512[..32], &h256[..]);
    }
}
