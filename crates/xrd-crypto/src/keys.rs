//! Key pairs and Diffie-Hellman key exchange (`DH(g^a, b) = g^{ab}`).

use rand::RngCore;

use crate::kdf;
use crate::ristretto::GroupElement;
use crate::scalar::Scalar;

/// A discrete-log key pair `(pk = g^sk, sk)`.
#[derive(Clone, Copy, Debug)]
pub struct KeyPair {
    /// Secret exponent.
    pub sk: Scalar,
    /// Public group element `g^sk`.
    pub pk: GroupElement,
}

impl KeyPair {
    /// Generate a fresh key pair.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> KeyPair {
        let sk = Scalar::random(rng);
        KeyPair {
            sk,
            pk: GroupElement::base_mul(&sk),
        }
    }

    /// Rebuild a key pair from a secret exponent.
    pub fn from_secret(sk: Scalar) -> KeyPair {
        KeyPair {
            sk,
            pk: GroupElement::base_mul(&sk),
        }
    }

    /// `DH(pk, self.sk)`: the shared group element.
    pub fn dh(&self, their_pk: &GroupElement) -> GroupElement {
        their_pk.mul(&self.sk)
    }
}

/// `DH(P, x) = P^x` — the paper's notation for key exchange.
pub fn dh(public: &GroupElement, secret: &Scalar) -> GroupElement {
    public.mul(secret)
}

/// Derive a 32-byte symmetric key directly from a DH exchange, bound to a
/// usage label and context bytes.
pub fn dh_symmetric_key(
    public: &GroupElement,
    secret: &Scalar,
    label: &str,
    context: &[u8],
) -> [u8; 32] {
    kdf::derive_from_dh(label, &dh(public, secret), context)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keypair_is_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(&mut rng);
        assert_eq!(kp.pk, GroupElement::base_mul(&kp.sk));
        assert_eq!(KeyPair::from_secret(kp.sk).pk, kp.pk);
    }

    #[test]
    fn dh_agreement() {
        let mut rng = StdRng::seed_from_u64(2);
        let alice = KeyPair::generate(&mut rng);
        let bob = KeyPair::generate(&mut rng);
        assert_eq!(alice.dh(&bob.pk), bob.dh(&alice.pk));
    }

    #[test]
    fn dh_symmetric_keys_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let alice = KeyPair::generate(&mut rng);
        let bob = KeyPair::generate(&mut rng);
        let k1 = dh_symmetric_key(&bob.pk, &alice.sk, "msg", b"ctx");
        let k2 = dh_symmetric_key(&alice.pk, &bob.sk, "msg", b"ctx");
        assert_eq!(k1, k2);
    }

    #[test]
    fn distinct_keypairs_distinct_secrets() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_ne!(a.pk, b.pk);
        let k1 = dh_symmetric_key(&b.pk, &a.sk, "l", b"");
        let k2 = dh_symmetric_key(&b.pk, &a.sk, "l", b"x");
        assert_ne!(k1, k2);
    }
}
