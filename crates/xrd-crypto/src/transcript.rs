//! A Fiat–Shamir transcript over BLAKE2b, used to derive NIZK challenges.
//!
//! The transcript maintains a 64-byte chaining state; every absorbed item
//! is framed with its label and length so the mapping from (sequence of
//! items) to state is injective.

use crate::blake2b::Blake2b;
use crate::scalar::Scalar;

/// A running Fiat–Shamir transcript.
#[derive(Clone)]
pub struct Transcript {
    state: [u8; 64],
}

impl Transcript {
    /// Start a transcript under a protocol-level domain label.
    pub fn new(domain: &str) -> Transcript {
        let mut h = Blake2b::new(64);
        h.update(b"xrd-transcript-v1");
        h.update(&(domain.len() as u64).to_le_bytes());
        h.update(domain.as_bytes());
        Transcript {
            state: h.finalize_64(),
        }
    }

    /// Absorb a labelled message.
    pub fn append(&mut self, label: &str, data: &[u8]) {
        let mut h = Blake2b::new(64);
        h.update(&self.state);
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label.as_bytes());
        h.update(&(data.len() as u64).to_le_bytes());
        h.update(data);
        self.state = h.finalize_64();
    }

    /// Absorb a u64 (length, round number, index...).
    pub fn append_u64(&mut self, label: &str, x: u64) {
        self.append(label, &x.to_le_bytes());
    }

    /// Produce a challenge scalar bound to everything absorbed so far,
    /// and fold the extraction into the state (so successive challenges
    /// differ).
    pub fn challenge_scalar(&mut self, label: &str) -> Scalar {
        let mut h = Blake2b::new(64);
        h.update(&self.state);
        h.update(b"challenge");
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label.as_bytes());
        let wide = h.finalize_64();
        // Ratchet state forward.
        let mut h2 = Blake2b::new(64);
        h2.update(&self.state);
        h2.update(b"ratchet");
        self.state = h2.finalize_64();
        Scalar::from_bytes_mod_order_wide(&wide)
    }

    /// Produce 32 challenge bytes (for non-scalar uses).
    pub fn challenge_bytes(&mut self, label: &str) -> [u8; 32] {
        let mut h = Blake2b::new(32);
        h.update(&self.state);
        h.update(b"challenge-bytes");
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label.as_bytes());
        let out = h.finalize_32();
        let mut h2 = Blake2b::new(64);
        h2.update(&self.state);
        h2.update(b"ratchet");
        self.state = h2.finalize_64();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut t1 = Transcript::new("proto");
        let mut t2 = Transcript::new("proto");
        t1.append("m", b"hello");
        t2.append("m", b"hello");
        assert_eq!(t1.challenge_scalar("c"), t2.challenge_scalar("c"));
    }

    #[test]
    fn domain_separates() {
        let mut t1 = Transcript::new("proto-a");
        let mut t2 = Transcript::new("proto-b");
        assert_ne!(t1.challenge_scalar("c"), t2.challenge_scalar("c"));
    }

    #[test]
    fn order_matters() {
        let mut t1 = Transcript::new("p");
        t1.append("a", b"x");
        t1.append("b", b"y");
        let mut t2 = Transcript::new("p");
        t2.append("b", b"y");
        t2.append("a", b"x");
        assert_ne!(t1.challenge_scalar("c"), t2.challenge_scalar("c"));
    }

    #[test]
    fn successive_challenges_differ() {
        let mut t = Transcript::new("p");
        let c1 = t.challenge_scalar("c");
        let c2 = t.challenge_scalar("c");
        assert_ne!(c1, c2);
    }

    #[test]
    fn framing_is_injective() {
        let mut t1 = Transcript::new("p");
        t1.append("ab", b"c");
        let mut t2 = Transcript::new("p");
        t2.append("a", b"bc");
        assert_ne!(t1.challenge_scalar("c"), t2.challenge_scalar("c"));
    }

    #[test]
    fn challenge_bytes_work() {
        let mut t = Transcript::new("p");
        t.append("m", b"data");
        let b1 = t.challenge_bytes("x");
        let b2 = t.challenge_bytes("x");
        assert_ne!(b1, b2);
    }
}
