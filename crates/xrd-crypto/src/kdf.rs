//! Domain-separated key derivation (the paper's `KDF`), built on BLAKE2b.
//!
//! Every derived key binds a human-readable label plus length-prefixed
//! inputs, so keys for different purposes can never collide even when the
//! raw input material does.

use crate::blake2b::Blake2b;
use crate::ristretto::GroupElement;

/// Derive a 32-byte key from a label and a list of byte-string inputs.
pub fn derive_key(label: &str, inputs: &[&[u8]]) -> [u8; 32] {
    let mut h = Blake2b::new(32);
    h.update(b"xrd-kdf-v1");
    h.update(&(label.len() as u64).to_le_bytes());
    h.update(label.as_bytes());
    for input in inputs {
        h.update(&(input.len() as u64).to_le_bytes());
        h.update(input);
    }
    h.finalize_32()
}

/// Derive a symmetric encryption key from a Diffie-Hellman shared group
/// element (the paper's `s = KDF(s_AB, pk_B)` pattern: the second input
/// selects the direction of the conversation).
pub fn derive_from_dh(label: &str, shared: &GroupElement, context: &[u8]) -> [u8; 32] {
    derive_key(label, &[&shared.encode(), context])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;

    #[test]
    fn deterministic() {
        let a = derive_key("test", &[b"input"]);
        let b = derive_key("test", &[b"input"]);
        assert_eq!(a, b);
    }

    #[test]
    fn label_separates() {
        assert_ne!(derive_key("a", &[b"x"]), derive_key("b", &[b"x"]));
    }

    #[test]
    fn input_framing_prevents_concatenation_collisions() {
        // ("ab", "c") must differ from ("a", "bc").
        assert_ne!(
            derive_key("t", &[b"ab", b"c"]),
            derive_key("t", &[b"a", b"bc"])
        );
        // (one input "abc") differs from ("abc", "")
        assert_ne!(derive_key("t", &[b"abc"]), derive_key("t", &[b"abc", b""]));
    }

    #[test]
    fn dh_derivation_is_symmetric_in_shared_secret() {
        // Both endpoints compute the same shared element, so the same key.
        let mut rng = rand::rngs::OsRng;
        let a = Scalar::random(&mut rng);
        let b = Scalar::random(&mut rng);
        let ga = GroupElement::base_mul(&a);
        let gb = GroupElement::base_mul(&b);
        let shared_at_a = gb.mul(&a);
        let shared_at_b = ga.mul(&b);
        assert_eq!(
            derive_from_dh("conv", &shared_at_a, &gb.encode()),
            derive_from_dh("conv", &shared_at_b, &gb.encode()),
        );
        // but the two directions of a conversation get different keys
        assert_ne!(
            derive_from_dh("conv", &shared_at_a, &gb.encode()),
            derive_from_dh("conv", &shared_at_a, &ga.encode()),
        );
    }
}
