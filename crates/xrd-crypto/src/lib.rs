//! # xrd-crypto
//!
//! The cryptographic substrate for the XRD metadata-private messaging
//! system (NSDI 2020), implemented from scratch with no external crypto
//! dependencies:
//!
//! * **Group**: the prime-order ristretto255 group ([`GroupElement`],
//!   [`Scalar`]) built on a from-scratch GF(2^255-19) field and
//!   edwards25519 implementation.  This is the "group of prime order p
//!   with generator g where DDH holds" the paper assumes (§3.1).
//! * **Authenticated encryption**: ChaCha20-Poly1305 (RFC 8439), the
//!   paper's `AEnc`/`ADec` — the same algorithms as the NaCl library the
//!   original prototype used.
//! * **Hash / KDF**: BLAKE2b (RFC 7693) plus domain-separated key
//!   derivation and a Fiat–Shamir [`Transcript`].
//! * **NIZKs**: Schnorr proofs of discrete-log knowledge and
//!   Chaum–Pedersen DLEQ proofs ([`SchnorrProof`], [`DleqProof`]) — the
//!   only proof systems aggregate hybrid shuffle needs.
//! * **Deterministic randomness**: a ChaCha20 DRBG ([`ChaChaRng`]) for
//!   the public randomness beacon and reproducible experiments.
//!
//! ## Security notes
//!
//! This is a research reproduction.  Field/group operations follow
//! constant-time idioms (masked selects, uniform table scans) but the
//! crate as a whole has not been audited or hardened against
//! microarchitectural side channels.

#![warn(missing_docs)]
// Fixed-size limb arithmetic reads more clearly with explicit indices.
#![allow(clippy::needless_range_loop)]

pub mod aead;
pub mod blake2b;
pub mod chacha20;
pub mod drbg;
pub mod edwards;
pub mod field;
pub mod kdf;
pub mod keys;
pub mod nizk;
pub mod poly1305;
pub mod ristretto;
pub mod scalar;
pub mod transcript;
pub mod util;

pub use aead::{adec, aenc, round_nonce, TAG_LEN};
pub use blake2b::{blake2b_256, blake2b_512, Blake2b};
pub use drbg::ChaChaRng;
pub use keys::{dh, dh_symmetric_key, KeyPair};
pub use nizk::{
    DleqBatchEntry, DleqProof, SchnorrBatchEntry, SchnorrProof, DLEQ_PROOF_LEN, SCHNORR_PROOF_LEN,
};
pub use ristretto::{GroupElement, GroupTable};
pub use scalar::Scalar;
pub use transcript::Transcript;

#[cfg(test)]
mod integration_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The full "double enveloping" key-exchange flow from §6.2/§6.3 at
    /// the crypto layer: a user encrypts to mixing keys with a single
    /// DH exponent; servers decrypt with blinded keys.
    #[test]
    fn ahs_key_exchange_algebra() {
        let mut rng = StdRng::seed_from_u64(99);
        let k = 4usize;

        // Server key generation (§6.1): bpk_0 = g;
        // bpk_i = bpk_{i-1}^{bsk_i}, mpk_i = bpk_{i-1}^{msk_i}.
        let mut bpk = vec![GroupElement::generator()];
        let mut bsk = vec![];
        let mut msk = vec![];
        let mut mpk = vec![];
        for i in 0..k {
            let b = Scalar::random(&mut rng);
            let m = Scalar::random(&mut rng);
            bpk.push(bpk[i].mul(&b));
            mpk.push(bpk[i].mul(&m));
            bsk.push(b);
            msk.push(m);
        }

        // User: one exponent x; layer-i key is DH(mpk_i, x).
        let x = Scalar::random(&mut rng);
        let user_keys: Vec<GroupElement> = (0..k).map(|i| mpk[i].mul(&x)).collect();

        // Servers: X_1 = g^x; X_{i+1} = X_i^{bsk_i};
        // server i's key is X_i^{msk_i}.
        let mut x_i = GroupElement::base_mul(&x);
        for i in 0..k {
            let server_key = x_i.mul(&msk[i]);
            assert_eq!(server_key, user_keys[i], "layer {i} key mismatch");
            x_i = x_i.mul(&bsk[i]);
        }
    }

    /// Onion-encrypt with AEAD through 3 layers and peel in order.
    #[test]
    fn onion_layers_peel() {
        let mut rng = StdRng::seed_from_u64(100);
        let keys: Vec<[u8; 32]> = (0..3)
            .map(|_| {
                let mut k = [0u8; 32];
                rng.fill_bytes(&mut k);
                k
            })
            .collect();
        let round = 7u64;
        let mut ct = b"innermost payload".to_vec();
        for (i, key) in keys.iter().enumerate().rev() {
            ct = aenc(key, &round_nonce(round, i as u32), b"", &ct);
        }
        for (i, key) in keys.iter().enumerate() {
            ct = adec(key, &round_nonce(round, i as u32), b"", &ct).expect("layer must open");
        }
        assert_eq!(ct, b"innermost payload");
    }

    use rand::RngCore;
}
