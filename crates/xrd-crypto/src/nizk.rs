//! Non-interactive zero-knowledge proofs used by XRD:
//!
//! * [`SchnorrProof`] — knowledge of discrete log (`log_B X`), used by
//!   users to prove knowledge of the exponent of their per-message
//!   Diffie-Hellman key (§6.2 step 2) and by servers for their key pairs
//!   (§6.1).
//! * [`DleqProof`] — discrete-log equality (`log_{B1} X1 = log_{B2} X2`),
//!   the Chaum–Pedersen proof used in AHS mixing (§6.3 step 3) and
//!   throughout the blame protocol (§6.4).
//!
//! Both are made non-interactive with a Fiat–Shamir [`Transcript`]; every
//! proof binds all public inputs plus a caller-supplied context (round
//! number, chain id, ...), so proofs cannot be replayed across contexts.

use rand::RngCore;

use crate::ristretto::GroupElement;
use crate::scalar::Scalar;
use crate::transcript::Transcript;

/// Proof of knowledge of `x` such that `X = B^x`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchnorrProof {
    /// Commitment `R = B^r`.
    pub commitment: [u8; 32],
    /// Response `z = r + c*x`.
    pub response: Scalar,
}

/// Serialized length of a Schnorr proof.
pub const SCHNORR_PROOF_LEN: usize = 64;

impl SchnorrProof {
    /// Prove knowledge of `x` with `X = B^x`.
    pub fn prove<R: RngCore + ?Sized>(
        rng: &mut R,
        context: &[u8],
        base: &GroupElement,
        public: &GroupElement,
        x: &Scalar,
    ) -> SchnorrProof {
        debug_assert!(GroupElement::base_mul(x) == *public || base.mul(x) == *public);
        let r = Scalar::random(rng);
        let commitment = base.mul(&r);
        let c = Self::challenge(context, base, public, &commitment);
        SchnorrProof {
            commitment: commitment.encode(),
            response: r.add(&c.mul(x)),
        }
    }

    /// Verify the proof against `(B, X)` and the context.
    pub fn verify(&self, context: &[u8], base: &GroupElement, public: &GroupElement) -> bool {
        let commitment = match GroupElement::decode(&self.commitment) {
            Some(p) => p,
            None => return false,
        };
        let c = Self::challenge(context, base, public, &commitment);
        // B^z == R * X^c
        base.mul(&self.response) == commitment.add(&public.mul(&c))
    }

    fn challenge(
        context: &[u8],
        base: &GroupElement,
        public: &GroupElement,
        commitment: &GroupElement,
    ) -> Scalar {
        let mut t = Transcript::new("xrd/schnorr-pok");
        t.append("context", context);
        t.append("base", &base.encode());
        t.append("public", &public.encode());
        t.append("commitment", &commitment.encode());
        t.challenge_scalar("c")
    }

    /// Serialize to 64 bytes.
    pub fn to_bytes(&self) -> [u8; SCHNORR_PROOF_LEN] {
        let mut out = [0u8; SCHNORR_PROOF_LEN];
        out[..32].copy_from_slice(&self.commitment);
        out[32..].copy_from_slice(&self.response.to_bytes());
        out
    }

    /// Parse from 64 bytes (structure check only; cryptographic checks
    /// happen in `verify`).
    pub fn from_bytes(bytes: &[u8]) -> Option<SchnorrProof> {
        if bytes.len() != SCHNORR_PROOF_LEN {
            return None;
        }
        let mut commitment = [0u8; 32];
        commitment.copy_from_slice(&bytes[..32]);
        let mut resp = [0u8; 32];
        resp.copy_from_slice(&bytes[32..]);
        Some(SchnorrProof {
            commitment,
            response: Scalar::from_canonical_bytes(&resp)?,
        })
    }
}

/// Chaum–Pedersen proof that `log_{B1}(X1) = log_{B2}(X2)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DleqProof {
    /// Commitment `R1 = B1^r`.
    pub commitment1: [u8; 32],
    /// Commitment `R2 = B2^r`.
    pub commitment2: [u8; 32],
    /// Response `z = r + c*x`.
    pub response: Scalar,
}

/// Serialized length of a DLEQ proof.
pub const DLEQ_PROOF_LEN: usize = 96;

impl DleqProof {
    /// Prove `X1 = B1^x` and `X2 = B2^x` for the same secret `x`.
    pub fn prove<R: RngCore + ?Sized>(
        rng: &mut R,
        context: &[u8],
        base1: &GroupElement,
        public1: &GroupElement,
        base2: &GroupElement,
        public2: &GroupElement,
        x: &Scalar,
    ) -> DleqProof {
        let r = Scalar::random(rng);
        let c1 = base1.mul(&r);
        let c2 = base2.mul(&r);
        let c = Self::challenge(context, base1, public1, base2, public2, &c1, &c2);
        DleqProof {
            commitment1: c1.encode(),
            commitment2: c2.encode(),
            response: r.add(&c.mul(x)),
        }
    }

    /// Verify against the two base/public pairs and context.
    pub fn verify(
        &self,
        context: &[u8],
        base1: &GroupElement,
        public1: &GroupElement,
        base2: &GroupElement,
        public2: &GroupElement,
    ) -> bool {
        let (r1, r2) = match (
            GroupElement::decode(&self.commitment1),
            GroupElement::decode(&self.commitment2),
        ) {
            (Some(a), Some(b)) => (a, b),
            _ => return false,
        };
        let c = Self::challenge(context, base1, public1, base2, public2, &r1, &r2);
        base1.mul(&self.response) == r1.add(&public1.mul(&c))
            && base2.mul(&self.response) == r2.add(&public2.mul(&c))
    }

    #[allow(clippy::too_many_arguments)]
    fn challenge(
        context: &[u8],
        base1: &GroupElement,
        public1: &GroupElement,
        base2: &GroupElement,
        public2: &GroupElement,
        c1: &GroupElement,
        c2: &GroupElement,
    ) -> Scalar {
        let mut t = Transcript::new("xrd/chaum-pedersen-dleq");
        t.append("context", context);
        t.append("base1", &base1.encode());
        t.append("public1", &public1.encode());
        t.append("base2", &base2.encode());
        t.append("public2", &public2.encode());
        t.append("commitment1", &c1.encode());
        t.append("commitment2", &c2.encode());
        t.challenge_scalar("c")
    }

    /// Serialize to 96 bytes.
    pub fn to_bytes(&self) -> [u8; DLEQ_PROOF_LEN] {
        let mut out = [0u8; DLEQ_PROOF_LEN];
        out[..32].copy_from_slice(&self.commitment1);
        out[32..64].copy_from_slice(&self.commitment2);
        out[64..].copy_from_slice(&self.response.to_bytes());
        out
    }

    /// Parse from 96 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<DleqProof> {
        if bytes.len() != DLEQ_PROOF_LEN {
            return None;
        }
        let mut c1 = [0u8; 32];
        c1.copy_from_slice(&bytes[..32]);
        let mut c2 = [0u8; 32];
        c2.copy_from_slice(&bytes[32..64]);
        let mut resp = [0u8; 32];
        resp.copy_from_slice(&bytes[64..]);
        Some(DleqProof {
            commitment1: c1,
            commitment2: c2,
            response: Scalar::from_canonical_bytes(&resp)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schnorr_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Scalar::random(&mut rng);
        let g = GroupElement::generator();
        let gx = GroupElement::base_mul(&x);
        let proof = SchnorrProof::prove(&mut rng, b"ctx", &g, &gx, &x);
        assert!(proof.verify(b"ctx", &g, &gx));
    }

    #[test]
    fn schnorr_nonstandard_base() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = GroupElement::random(&mut rng);
        let x = Scalar::random(&mut rng);
        let public = base.mul(&x);
        let proof = SchnorrProof::prove(&mut rng, b"ctx", &base, &public, &x);
        assert!(proof.verify(b"ctx", &base, &public));
        // Wrong base fails.
        assert!(!proof.verify(b"ctx", &GroupElement::generator(), &public));
    }

    #[test]
    fn schnorr_rejects_wrong_context() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Scalar::random(&mut rng);
        let g = GroupElement::generator();
        let gx = GroupElement::base_mul(&x);
        let proof = SchnorrProof::prove(&mut rng, b"round-1", &g, &gx, &x);
        assert!(!proof.verify(b"round-2", &g, &gx));
    }

    #[test]
    fn schnorr_rejects_wrong_statement() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Scalar::random(&mut rng);
        let g = GroupElement::generator();
        let gx = GroupElement::base_mul(&x);
        let gy = GroupElement::base_mul(&Scalar::random(&mut rng));
        let proof = SchnorrProof::prove(&mut rng, b"c", &g, &gx, &x);
        assert!(!proof.verify(b"c", &g, &gy));
    }

    #[test]
    fn schnorr_serialization_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Scalar::random(&mut rng);
        let g = GroupElement::generator();
        let gx = GroupElement::base_mul(&x);
        let proof = SchnorrProof::prove(&mut rng, b"c", &g, &gx, &x);
        let parsed = SchnorrProof::from_bytes(&proof.to_bytes()).unwrap();
        assert_eq!(parsed, proof);
        assert!(parsed.verify(b"c", &g, &gx));
        assert!(SchnorrProof::from_bytes(&[0u8; 63]).is_none());
    }

    #[test]
    fn schnorr_tampered_proof_fails() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Scalar::random(&mut rng);
        let g = GroupElement::generator();
        let gx = GroupElement::base_mul(&x);
        let proof = SchnorrProof::prove(&mut rng, b"c", &g, &gx, &x);
        let mut tampered = proof;
        tampered.response = proof.response.add(&Scalar::ONE);
        assert!(!tampered.verify(b"c", &g, &gx));
    }

    #[test]
    fn dleq_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Scalar::random(&mut rng);
        let b1 = GroupElement::random(&mut rng);
        let b2 = GroupElement::random(&mut rng);
        let p1 = b1.mul(&x);
        let p2 = b2.mul(&x);
        let proof = DleqProof::prove(&mut rng, b"ctx", &b1, &p1, &b2, &p2, &x);
        assert!(proof.verify(b"ctx", &b1, &p1, &b2, &p2));
    }

    #[test]
    fn dleq_rejects_unequal_exponents() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = Scalar::random(&mut rng);
        let y = Scalar::random(&mut rng);
        let b1 = GroupElement::random(&mut rng);
        let b2 = GroupElement::random(&mut rng);
        let p1 = b1.mul(&x);
        let p2 = b2.mul(&y); // different exponent!
        let proof = DleqProof::prove(&mut rng, b"c", &b1, &p1, &b2, &p2, &x);
        assert!(!proof.verify(b"c", &b1, &p1, &b2, &p2));
    }

    #[test]
    fn dleq_rejects_wrong_context() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Scalar::random(&mut rng);
        let b1 = GroupElement::generator();
        let b2 = GroupElement::random(&mut rng);
        let proof = DleqProof::prove(&mut rng, b"a", &b1, &b1.mul(&x), &b2, &b2.mul(&x), &x);
        assert!(!proof.verify(b"b", &b1, &b1.mul(&x), &b2, &b2.mul(&x)));
    }

    #[test]
    fn dleq_serialization_roundtrip() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = Scalar::random(&mut rng);
        let b1 = GroupElement::generator();
        let b2 = GroupElement::random(&mut rng);
        let p1 = b1.mul(&x);
        let p2 = b2.mul(&x);
        let proof = DleqProof::prove(&mut rng, b"c", &b1, &p1, &b2, &p2, &x);
        let parsed = DleqProof::from_bytes(&proof.to_bytes()).unwrap();
        assert_eq!(parsed, proof);
        assert!(parsed.verify(b"c", &b1, &p1, &b2, &p2));
        assert!(DleqProof::from_bytes(&[0u8; 95]).is_none());
    }

    #[test]
    fn dleq_aggregate_usage_pattern() {
        // The AHS usage: prove (prod X_i)^bsk = prod X_{i+1} against
        // base pair (bpk_{i-1}, bpk_i).
        let mut rng = StdRng::seed_from_u64(11);
        let bsk = Scalar::random(&mut rng);
        let bpk_prev = GroupElement::random(&mut rng);
        let bpk = bpk_prev.mul(&bsk);
        let xs: Vec<GroupElement> = (0..10).map(|_| GroupElement::random(&mut rng)).collect();
        let blinded: Vec<GroupElement> = xs.iter().map(|x| x.mul(&bsk)).collect();
        let prod_in = GroupElement::product(&xs);
        let prod_out = GroupElement::product(&blinded);
        let proof = DleqProof::prove(&mut rng, b"ahs", &prod_in, &prod_out, &bpk_prev, &bpk, &bsk);
        assert!(proof.verify(b"ahs", &prod_in, &prod_out, &bpk_prev, &bpk));
    }
}
