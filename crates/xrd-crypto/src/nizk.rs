//! Non-interactive zero-knowledge proofs used by XRD:
//!
//! * [`SchnorrProof`] — knowledge of discrete log (`log_B X`), used by
//!   users to prove knowledge of the exponent of their per-message
//!   Diffie-Hellman key (§6.2 step 2) and by servers for their key pairs
//!   (§6.1).
//! * [`DleqProof`] — discrete-log equality (`log_{B1} X1 = log_{B2} X2`),
//!   the Chaum–Pedersen proof used in AHS mixing (§6.3 step 3) and
//!   throughout the blame protocol (§6.4).
//!
//! Both are made non-interactive with a Fiat–Shamir [`Transcript`]; every
//! proof binds all public inputs plus a caller-supplied context (round
//! number, chain id, ...), so proofs cannot be replayed across contexts.

use rand::{RngCore, SeedableRng};

use crate::drbg::ChaChaRng;
use crate::ristretto::GroupElement;
use crate::scalar::Scalar;
use crate::transcript::Transcript;

/// Draw a 128-bit random-linear-combination coefficient from the batch
/// DRBG.  128 bits keep the false-accept probability below 2^-128 while
/// halving the coefficient-scalar multiplications.
fn rlc_coefficient(rng: &mut ChaChaRng) -> Scalar {
    let mut wide = [0u8; 32];
    rng.fill_bytes(&mut wide[..16]);
    Scalar::from_bytes_mod_order(&wide)
}

/// One statement of a Schnorr batch verification:
/// "`proof` proves knowledge of `log_base public` under `context`".
#[derive(Clone, Copy, Debug)]
pub struct SchnorrBatchEntry<'a> {
    /// Caller-supplied domain-separation context.
    pub context: &'a [u8],
    /// The proof's base `B`.
    pub base: GroupElement,
    /// The public value `X = B^x`.
    pub public: GroupElement,
    /// The proof being checked.
    pub proof: SchnorrProof,
}

/// One statement of a DLEQ batch verification:
/// "`proof` proves `log_base1 public1 = log_base2 public2` under
/// `context`".
#[derive(Clone, Copy, Debug)]
pub struct DleqBatchEntry<'a> {
    /// Caller-supplied domain-separation context.
    pub context: &'a [u8],
    /// First base `B1`.
    pub base1: GroupElement,
    /// `X1 = B1^x`.
    pub public1: GroupElement,
    /// Second base `B2`.
    pub base2: GroupElement,
    /// `X2 = B2^x`.
    pub public2: GroupElement,
    /// The proof being checked.
    pub proof: DleqProof,
}

/// Proof of knowledge of `x` such that `X = B^x`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchnorrProof {
    /// Commitment `R = B^r`.
    pub commitment: [u8; 32],
    /// Response `z = r + c*x`.
    pub response: Scalar,
}

/// Serialized length of a Schnorr proof.
pub const SCHNORR_PROOF_LEN: usize = 64;

impl SchnorrProof {
    /// Prove knowledge of `x` with `X = B^x`.
    pub fn prove<R: RngCore + ?Sized>(
        rng: &mut R,
        context: &[u8],
        base: &GroupElement,
        public: &GroupElement,
        x: &Scalar,
    ) -> SchnorrProof {
        debug_assert!(GroupElement::base_mul(x) == *public || base.mul(x) == *public);
        let r = Scalar::random(rng);
        let commitment = base.mul(&r).encode();
        let c = Self::challenge(context, base, public, &commitment);
        SchnorrProof {
            commitment,
            response: r.add(&c.mul(x)),
        }
    }

    /// Verify the proof against `(B, X)` and the context.
    pub fn verify(&self, context: &[u8], base: &GroupElement, public: &GroupElement) -> bool {
        let commitment = match GroupElement::decode(&self.commitment) {
            Some(p) => p,
            None => return false,
        };
        let c = Self::challenge(context, base, public, &self.commitment);
        // B^z == R * X^c
        base.mul(&self.response) == commitment.add(&public.mul(&c))
    }

    /// Verify `n` Schnorr proofs in one multiscalar multiplication.
    ///
    /// Each statement is `(context, base, public, proof)`.  The proofs
    /// are folded with random-linear-combination coefficients drawn
    /// from a transcript-seeded DRBG (bound to every statement and
    /// proof), so the combined equation
    /// `sum_i rho_i * (z_i*B_i - R_i - c_i*X_i) = 0`
    /// accepts iff every individual proof verifies, except with
    /// probability < n * 2^-128.  All inputs are public wire data, so
    /// the variable-time multiscalar engine is safe here.
    pub fn batch_verify(statements: &[SchnorrBatchEntry<'_>]) -> bool {
        if statements.is_empty() {
            return true;
        }
        let mut commitments = Vec::with_capacity(statements.len());
        let mut challenges = Vec::with_capacity(statements.len());
        let mut seed_t = Transcript::new("xrd/schnorr-batch-verify");
        seed_t.append_u64("n", statements.len() as u64);
        for st in statements {
            let commitment = match GroupElement::decode(&st.proof.commitment) {
                Some(p) => p,
                None => return false,
            };
            let c = Self::challenge(st.context, &st.base, &st.public, &st.proof.commitment);
            // The challenge binds context, base, public and commitment,
            // so absorbing (challenge, response) binds the statement.
            seed_t.append("challenge", &c.to_bytes());
            seed_t.append("response", &st.proof.response.to_bytes());
            commitments.push(commitment);
            challenges.push(c);
        }
        let mut drbg = ChaChaRng::from_seed(seed_t.challenge_bytes("rlc-seed"));

        let mut scalars = Vec::with_capacity(3 * statements.len());
        let mut points = Vec::with_capacity(3 * statements.len());
        for ((st, commitment), c) in statements.iter().zip(&commitments).zip(&challenges) {
            let rho = rlc_coefficient(&mut drbg);
            scalars.push(rho.mul(&st.proof.response));
            points.push(st.base);
            scalars.push(rho.neg());
            points.push(*commitment);
            scalars.push(rho.mul(c).neg());
            points.push(st.public);
        }
        GroupElement::vartime_multiscalar_mul(&scalars, &points).is_identity()
    }

    /// The Fiat-Shamir challenge.  The commitment is taken as its
    /// canonical 32-byte encoding (what travels in the proof): since
    /// decoding rejects non-canonical strings, absorbing the bytes is
    /// equivalent to absorbing `decode(bytes).encode()` and saves a
    /// re-encoding on every verification.
    fn challenge(
        context: &[u8],
        base: &GroupElement,
        public: &GroupElement,
        commitment: &[u8; 32],
    ) -> Scalar {
        let mut t = Transcript::new("xrd/schnorr-pok");
        t.append("context", context);
        t.append("base", &base.encode());
        t.append("public", &public.encode());
        t.append("commitment", commitment);
        t.challenge_scalar("c")
    }

    /// Serialize to 64 bytes.
    pub fn to_bytes(&self) -> [u8; SCHNORR_PROOF_LEN] {
        let mut out = [0u8; SCHNORR_PROOF_LEN];
        out[..32].copy_from_slice(&self.commitment);
        out[32..].copy_from_slice(&self.response.to_bytes());
        out
    }

    /// Parse from 64 bytes (structure check only; cryptographic checks
    /// happen in `verify`).
    pub fn from_bytes(bytes: &[u8]) -> Option<SchnorrProof> {
        if bytes.len() != SCHNORR_PROOF_LEN {
            return None;
        }
        let mut commitment = [0u8; 32];
        commitment.copy_from_slice(&bytes[..32]);
        let mut resp = [0u8; 32];
        resp.copy_from_slice(&bytes[32..]);
        Some(SchnorrProof {
            commitment,
            response: Scalar::from_canonical_bytes(&resp)?,
        })
    }
}

/// Chaum–Pedersen proof that `log_{B1}(X1) = log_{B2}(X2)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DleqProof {
    /// Commitment `R1 = B1^r`.
    pub commitment1: [u8; 32],
    /// Commitment `R2 = B2^r`.
    pub commitment2: [u8; 32],
    /// Response `z = r + c*x`.
    pub response: Scalar,
}

/// Serialized length of a DLEQ proof.
pub const DLEQ_PROOF_LEN: usize = 96;

impl DleqProof {
    /// Prove `X1 = B1^x` and `X2 = B2^x` for the same secret `x`.
    pub fn prove<R: RngCore + ?Sized>(
        rng: &mut R,
        context: &[u8],
        base1: &GroupElement,
        public1: &GroupElement,
        base2: &GroupElement,
        public2: &GroupElement,
        x: &Scalar,
    ) -> DleqProof {
        let r = Scalar::random(rng);
        let c1 = base1.mul(&r).encode();
        let c2 = base2.mul(&r).encode();
        let c = Self::challenge(context, base1, public1, base2, public2, &c1, &c2);
        DleqProof {
            commitment1: c1,
            commitment2: c2,
            response: r.add(&c.mul(x)),
        }
    }

    /// Verify against the two base/public pairs and context.
    pub fn verify(
        &self,
        context: &[u8],
        base1: &GroupElement,
        public1: &GroupElement,
        base2: &GroupElement,
        public2: &GroupElement,
    ) -> bool {
        let (r1, r2) = match (
            GroupElement::decode(&self.commitment1),
            GroupElement::decode(&self.commitment2),
        ) {
            (Some(a), Some(b)) => (a, b),
            _ => return false,
        };
        let c = Self::challenge(
            context,
            base1,
            public1,
            base2,
            public2,
            &self.commitment1,
            &self.commitment2,
        );
        base1.mul(&self.response) == r1.add(&public1.mul(&c))
            && base2.mul(&self.response) == r2.add(&public2.mul(&c))
    }

    /// Verify `n` DLEQ proofs in one multiscalar multiplication (see
    /// [`SchnorrProof::batch_verify`] for the soundness argument); the
    /// two per-proof equations get independent 128-bit coefficients, so
    /// the whole batch is a single `6n`-term multiscalar mul.  Public
    /// wire data only — the multiscalar engine is variable time.
    pub fn batch_verify(statements: &[DleqBatchEntry<'_>]) -> bool {
        if statements.is_empty() {
            return true;
        }
        let mut commitments = Vec::with_capacity(statements.len());
        let mut challenges = Vec::with_capacity(statements.len());
        let mut seed_t = Transcript::new("xrd/dleq-batch-verify");
        seed_t.append_u64("n", statements.len() as u64);
        for st in statements {
            let (r1, r2) = match (
                GroupElement::decode(&st.proof.commitment1),
                GroupElement::decode(&st.proof.commitment2),
            ) {
                (Some(a), Some(b)) => (a, b),
                _ => return false,
            };
            let c = Self::challenge(
                st.context,
                &st.base1,
                &st.public1,
                &st.base2,
                &st.public2,
                &st.proof.commitment1,
                &st.proof.commitment2,
            );
            seed_t.append("challenge", &c.to_bytes());
            seed_t.append("response", &st.proof.response.to_bytes());
            commitments.push((r1, r2));
            challenges.push(c);
        }
        let mut drbg = ChaChaRng::from_seed(seed_t.challenge_bytes("rlc-seed"));

        let mut scalars = Vec::with_capacity(6 * statements.len());
        let mut points = Vec::with_capacity(6 * statements.len());
        for ((st, (r1, r2)), c) in statements.iter().zip(&commitments).zip(&challenges) {
            let rho1 = rlc_coefficient(&mut drbg);
            let rho2 = rlc_coefficient(&mut drbg);
            scalars.push(rho1.mul(&st.proof.response));
            points.push(st.base1);
            scalars.push(rho1.neg());
            points.push(*r1);
            scalars.push(rho1.mul(c).neg());
            points.push(st.public1);
            scalars.push(rho2.mul(&st.proof.response));
            points.push(st.base2);
            scalars.push(rho2.neg());
            points.push(*r2);
            scalars.push(rho2.mul(c).neg());
            points.push(st.public2);
        }
        GroupElement::vartime_multiscalar_mul(&scalars, &points).is_identity()
    }

    /// The Fiat-Shamir challenge; commitments are absorbed as their
    /// canonical wire bytes (see [`SchnorrProof::challenge`]).
    #[allow(clippy::too_many_arguments)]
    fn challenge(
        context: &[u8],
        base1: &GroupElement,
        public1: &GroupElement,
        base2: &GroupElement,
        public2: &GroupElement,
        c1: &[u8; 32],
        c2: &[u8; 32],
    ) -> Scalar {
        let mut t = Transcript::new("xrd/chaum-pedersen-dleq");
        t.append("context", context);
        t.append("base1", &base1.encode());
        t.append("public1", &public1.encode());
        t.append("base2", &base2.encode());
        t.append("public2", &public2.encode());
        t.append("commitment1", c1);
        t.append("commitment2", c2);
        t.challenge_scalar("c")
    }

    /// Serialize to 96 bytes.
    pub fn to_bytes(&self) -> [u8; DLEQ_PROOF_LEN] {
        let mut out = [0u8; DLEQ_PROOF_LEN];
        out[..32].copy_from_slice(&self.commitment1);
        out[32..64].copy_from_slice(&self.commitment2);
        out[64..].copy_from_slice(&self.response.to_bytes());
        out
    }

    /// Parse from 96 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<DleqProof> {
        if bytes.len() != DLEQ_PROOF_LEN {
            return None;
        }
        let mut c1 = [0u8; 32];
        c1.copy_from_slice(&bytes[..32]);
        let mut c2 = [0u8; 32];
        c2.copy_from_slice(&bytes[32..64]);
        let mut resp = [0u8; 32];
        resp.copy_from_slice(&bytes[64..]);
        Some(DleqProof {
            commitment1: c1,
            commitment2: c2,
            response: Scalar::from_canonical_bytes(&resp)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schnorr_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Scalar::random(&mut rng);
        let g = GroupElement::generator();
        let gx = GroupElement::base_mul(&x);
        let proof = SchnorrProof::prove(&mut rng, b"ctx", &g, &gx, &x);
        assert!(proof.verify(b"ctx", &g, &gx));
    }

    #[test]
    fn schnorr_nonstandard_base() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = GroupElement::random(&mut rng);
        let x = Scalar::random(&mut rng);
        let public = base.mul(&x);
        let proof = SchnorrProof::prove(&mut rng, b"ctx", &base, &public, &x);
        assert!(proof.verify(b"ctx", &base, &public));
        // Wrong base fails.
        assert!(!proof.verify(b"ctx", &GroupElement::generator(), &public));
    }

    #[test]
    fn schnorr_rejects_wrong_context() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Scalar::random(&mut rng);
        let g = GroupElement::generator();
        let gx = GroupElement::base_mul(&x);
        let proof = SchnorrProof::prove(&mut rng, b"round-1", &g, &gx, &x);
        assert!(!proof.verify(b"round-2", &g, &gx));
    }

    #[test]
    fn schnorr_rejects_wrong_statement() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Scalar::random(&mut rng);
        let g = GroupElement::generator();
        let gx = GroupElement::base_mul(&x);
        let gy = GroupElement::base_mul(&Scalar::random(&mut rng));
        let proof = SchnorrProof::prove(&mut rng, b"c", &g, &gx, &x);
        assert!(!proof.verify(b"c", &g, &gy));
    }

    #[test]
    fn schnorr_serialization_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Scalar::random(&mut rng);
        let g = GroupElement::generator();
        let gx = GroupElement::base_mul(&x);
        let proof = SchnorrProof::prove(&mut rng, b"c", &g, &gx, &x);
        let parsed = SchnorrProof::from_bytes(&proof.to_bytes()).unwrap();
        assert_eq!(parsed, proof);
        assert!(parsed.verify(b"c", &g, &gx));
        assert!(SchnorrProof::from_bytes(&[0u8; 63]).is_none());
    }

    #[test]
    fn schnorr_tampered_proof_fails() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Scalar::random(&mut rng);
        let g = GroupElement::generator();
        let gx = GroupElement::base_mul(&x);
        let proof = SchnorrProof::prove(&mut rng, b"c", &g, &gx, &x);
        let mut tampered = proof;
        tampered.response = proof.response.add(&Scalar::ONE);
        assert!(!tampered.verify(b"c", &g, &gx));
    }

    #[test]
    fn dleq_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Scalar::random(&mut rng);
        let b1 = GroupElement::random(&mut rng);
        let b2 = GroupElement::random(&mut rng);
        let p1 = b1.mul(&x);
        let p2 = b2.mul(&x);
        let proof = DleqProof::prove(&mut rng, b"ctx", &b1, &p1, &b2, &p2, &x);
        assert!(proof.verify(b"ctx", &b1, &p1, &b2, &p2));
    }

    #[test]
    fn dleq_rejects_unequal_exponents() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = Scalar::random(&mut rng);
        let y = Scalar::random(&mut rng);
        let b1 = GroupElement::random(&mut rng);
        let b2 = GroupElement::random(&mut rng);
        let p1 = b1.mul(&x);
        let p2 = b2.mul(&y); // different exponent!
        let proof = DleqProof::prove(&mut rng, b"c", &b1, &p1, &b2, &p2, &x);
        assert!(!proof.verify(b"c", &b1, &p1, &b2, &p2));
    }

    #[test]
    fn dleq_rejects_wrong_context() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Scalar::random(&mut rng);
        let b1 = GroupElement::generator();
        let b2 = GroupElement::random(&mut rng);
        let proof = DleqProof::prove(&mut rng, b"a", &b1, &b1.mul(&x), &b2, &b2.mul(&x), &x);
        assert!(!proof.verify(b"b", &b1, &b1.mul(&x), &b2, &b2.mul(&x)));
    }

    #[test]
    fn dleq_serialization_roundtrip() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = Scalar::random(&mut rng);
        let b1 = GroupElement::generator();
        let b2 = GroupElement::random(&mut rng);
        let p1 = b1.mul(&x);
        let p2 = b2.mul(&x);
        let proof = DleqProof::prove(&mut rng, b"c", &b1, &p1, &b2, &p2, &x);
        let parsed = DleqProof::from_bytes(&proof.to_bytes()).unwrap();
        assert_eq!(parsed, proof);
        assert!(parsed.verify(b"c", &b1, &p1, &b2, &p2));
        assert!(DleqProof::from_bytes(&[0u8; 95]).is_none());
    }

    fn schnorr_batch(
        rng: &mut StdRng,
        n: usize,
    ) -> (Vec<GroupElement>, Vec<GroupElement>, Vec<SchnorrProof>) {
        let mut bases = Vec::new();
        let mut publics = Vec::new();
        let mut proofs = Vec::new();
        for _ in 0..n {
            let base = GroupElement::random(rng);
            let x = Scalar::random(rng);
            let public = base.mul(&x);
            proofs.push(SchnorrProof::prove(rng, b"batch", &base, &public, &x));
            bases.push(base);
            publics.push(public);
        }
        (bases, publics, proofs)
    }

    #[test]
    fn schnorr_batch_verify_accepts_valid_and_rejects_tampered() {
        let mut rng = StdRng::seed_from_u64(30);
        let (bases, publics, mut proofs) = schnorr_batch(&mut rng, 8);
        let entries = |proofs: &[SchnorrProof]| -> Vec<SchnorrBatchEntry<'static>> {
            proofs
                .iter()
                .zip(bases.iter().zip(&publics))
                .map(|(proof, (base, public))| SchnorrBatchEntry {
                    context: b"batch",
                    base: *base,
                    public: *public,
                    proof: *proof,
                })
                .collect()
        };
        assert!(SchnorrProof::batch_verify(&entries(&proofs)));
        assert!(SchnorrProof::batch_verify(&[]));
        // Tamper a single response: the whole batch must reject.
        proofs[5].response = proofs[5].response.add(&Scalar::ONE);
        assert!(!SchnorrProof::batch_verify(&entries(&proofs)));
    }

    #[test]
    fn schnorr_batch_verify_rejects_wrong_context() {
        let mut rng = StdRng::seed_from_u64(31);
        let (bases, publics, proofs) = schnorr_batch(&mut rng, 3);
        let mut entries: Vec<SchnorrBatchEntry> = proofs
            .iter()
            .zip(bases.iter().zip(&publics))
            .map(|(proof, (base, public))| SchnorrBatchEntry {
                context: b"batch",
                base: *base,
                public: *public,
                proof: *proof,
            })
            .collect();
        entries[1].context = b"other";
        assert!(!SchnorrProof::batch_verify(&entries));
    }

    fn dleq_batch(
        rng: &mut StdRng,
        n: usize,
    ) -> Vec<(
        GroupElement,
        GroupElement,
        GroupElement,
        GroupElement,
        DleqProof,
    )> {
        (0..n)
            .map(|_| {
                let x = Scalar::random(rng);
                let b1 = GroupElement::random(rng);
                let b2 = GroupElement::random(rng);
                let p1 = b1.mul(&x);
                let p2 = b2.mul(&x);
                let proof = DleqProof::prove(rng, b"batch", &b1, &p1, &b2, &p2, &x);
                (b1, p1, b2, p2, proof)
            })
            .collect()
    }

    fn dleq_entries(
        stmts: &[(
            GroupElement,
            GroupElement,
            GroupElement,
            GroupElement,
            DleqProof,
        )],
    ) -> Vec<DleqBatchEntry<'_>> {
        stmts
            .iter()
            .map(|(b1, p1, b2, p2, proof)| DleqBatchEntry {
                context: b"batch",
                base1: *b1,
                public1: *p1,
                base2: *b2,
                public2: *p2,
                proof: *proof,
            })
            .collect()
    }

    #[test]
    fn dleq_batch_verify_accepts_valid_and_rejects_tampered() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut stmts = dleq_batch(&mut rng, 8);
        assert!(DleqProof::batch_verify(&dleq_entries(&stmts)));
        assert!(DleqProof::batch_verify(&[]));
        // Tamper one statement (swap its second public): reject.
        let other = GroupElement::random(&mut rng);
        stmts[3].3 = other;
        assert!(!DleqProof::batch_verify(&dleq_entries(&stmts)));
    }

    #[test]
    fn dleq_batch_verify_rejects_unequal_exponents() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut stmts = dleq_batch(&mut rng, 4);
        // Replace one proof with a proof over different exponents.
        let x = Scalar::random(&mut rng);
        let y = Scalar::random(&mut rng);
        let b1 = GroupElement::random(&mut rng);
        let b2 = GroupElement::random(&mut rng);
        let p1 = b1.mul(&x);
        let p2 = b2.mul(&y);
        let proof = DleqProof::prove(&mut rng, b"batch", &b1, &p1, &b2, &p2, &x);
        stmts[0] = (b1, p1, b2, p2, proof);
        assert!(!DleqProof::batch_verify(&dleq_entries(&stmts)));
    }

    #[test]
    fn batch_verify_matches_individual_verify() {
        // Randomized agreement: for random mixes of valid/invalid
        // proofs, batch_verify accepts iff every individual verify does.
        let mut rng = StdRng::seed_from_u64(34);
        for trial in 0..6 {
            let mut stmts = dleq_batch(&mut rng, 5);
            let corrupt = trial % 2 == 1;
            if corrupt {
                let idx = trial % stmts.len();
                stmts[idx].4.response = stmts[idx].4.response.add(&Scalar::ONE);
            }
            let individual = stmts
                .iter()
                .all(|(b1, p1, b2, p2, proof)| proof.verify(b"batch", b1, p1, b2, p2));
            assert_eq!(
                DleqProof::batch_verify(&dleq_entries(&stmts)),
                individual,
                "trial {trial}"
            );
            assert_eq!(individual, !corrupt);
        }
    }

    #[test]
    fn dleq_aggregate_usage_pattern() {
        // The AHS usage: prove (prod X_i)^bsk = prod X_{i+1} against
        // base pair (bpk_{i-1}, bpk_i).
        let mut rng = StdRng::seed_from_u64(11);
        let bsk = Scalar::random(&mut rng);
        let bpk_prev = GroupElement::random(&mut rng);
        let bpk = bpk_prev.mul(&bsk);
        let xs: Vec<GroupElement> = (0..10).map(|_| GroupElement::random(&mut rng)).collect();
        let blinded: Vec<GroupElement> = xs.iter().map(|x| x.mul(&bsk)).collect();
        let prod_in = GroupElement::product(&xs);
        let prod_out = GroupElement::product(&blinded);
        let proof = DleqProof::prove(&mut rng, b"ahs", &prod_in, &prod_out, &bpk_prev, &bpk, &bsk);
        assert!(proof.verify(b"ahs", &prod_in, &prod_out, &bpk_prev, &bpk));
    }
}
