//! The ChaCha20 stream cipher (RFC 8439), from scratch.
//!
//! Used (with Poly1305) to build the authenticated encryption scheme
//! `AEnc`/`ADec` that XRD assumes (§3.1); the original prototype used
//! NaCl, which uses the same pair of primitives.

use crate::util::load_u32_le;

/// "expand 32-byte k"
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Compute one 64-byte ChaCha20 keystream block.
pub fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = load_u32_le(&key[4 * i..4 * i + 4]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = load_u32_le(&nonce[4 * i..4 * i + 4]);
    }

    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XOR `data` in place with the ChaCha20 keystream starting at block
/// `counter`.  Encryption and decryption are the same operation.
pub fn chacha20_xor(key: &[u8; 32], counter: u32, nonce: &[u8; 12], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let block = chacha20_block(key, counter.wrapping_add(i as u32), nonce);
        for (byte, ks) in chunk.iter_mut().zip(block.iter()) {
            *byte ^= ks;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2 (cross-checked against an independent Python
        // implementation).
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce_bytes = from_hex("000000090000004a00000000");
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&nonce_bytes);
        let block = chacha20_block(&key, 1, &nonce);
        assert_eq!(
            to_hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
                .replace(' ', "")
        );
    }

    #[test]
    fn xor_roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let plaintext = b"attack at dawn, bring 256-byte messages".to_vec();
        let mut buf = plaintext.clone();
        chacha20_xor(&key, 1, &nonce, &mut buf);
        assert_ne!(buf, plaintext);
        chacha20_xor(&key, 1, &nonce, &mut buf);
        assert_eq!(buf, plaintext);
    }

    #[test]
    fn multi_block_keystream_is_consistent() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        // Encrypting 200 bytes at once must equal encrypting per-64-byte
        // blocks with incremented counters.
        let mut whole = vec![0u8; 200];
        chacha20_xor(&key, 5, &nonce, &mut whole);
        let mut parts = vec![0u8; 200];
        for (i, chunk) in parts.chunks_mut(64).enumerate() {
            chacha20_xor(&key, 5 + i as u32, &nonce, chunk);
        }
        assert_eq!(whole, parts);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        chacha20_xor(&key, 1, &[0u8; 12], &mut a);
        chacha20_xor(&key, 1, &[1u8; 12], &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_input_is_noop() {
        let mut empty: Vec<u8> = vec![];
        chacha20_xor(&[0u8; 32], 0, &[0u8; 12], &mut empty);
        assert!(empty.is_empty());
    }
}
