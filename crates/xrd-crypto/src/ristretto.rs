//! The ristretto255 prime-order group, built from scratch on top of
//! [`crate::edwards`] per draft-irtf-cfrg-ristretto255-decaf448.
//!
//! This is the group "G of prime order p with generator g in which
//! discrete log is hard and DDH holds" that the XRD paper assumes (§3.1).
//! [`GroupElement`] is the public group API used by the rest of the
//! workspace; exponents are [`Scalar`]s and `g^x` is written
//! [`GroupElement::base_mul`].

use std::sync::OnceLock;

use rand::RngCore;

use crate::edwards::{edwards_d, EdwardsPoint, PointTable};
use crate::field::FieldElement;
use crate::scalar::Scalar;

/// Derived Ristretto constants (computed once, validated by tests).
struct RistrettoConstants {
    /// `1/sqrt(a - d)` with `a = -1`.
    invsqrt_a_minus_d: FieldElement,
    /// `sqrt(a*d - 1)`.
    sqrt_ad_minus_one: FieldElement,
    /// `1 - d^2`.
    one_minus_d_sq: FieldElement,
    /// `(d - 1)^2`.
    d_minus_one_sq: FieldElement,
}

fn constants() -> &'static RistrettoConstants {
    static C: OnceLock<RistrettoConstants> = OnceLock::new();
    C.get_or_init(|| {
        let d = edwards_d();
        let one = FieldElement::ONE;
        let a_minus_d = one.neg().sub(d); // -1 - d
        let (sq1, invsqrt_a_minus_d) = a_minus_d.invsqrt();
        assert!(sq1, "a - d must be a square");
        let ad_minus_one = d.neg().sub(&one); // -d - 1
        let (sq2, sqrt_ad_minus_one) = FieldElement::sqrt_ratio_i(&ad_minus_one, &one);
        assert!(sq2, "a*d - 1 must be a square");
        RistrettoConstants {
            invsqrt_a_minus_d,
            sqrt_ad_minus_one,
            one_minus_d_sq: one.sub(&d.square()),
            d_minus_one_sq: d.sub(&one).square(),
        }
    })
}

/// An element of the ristretto255 group.
///
/// Internally an Edwards point; two Edwards points in the same coset
/// compare and encode identically, so the API presents a prime-order
/// group with no cofactor pitfalls — exactly the abstraction the XRD
/// protocol analysis requires.
#[derive(Clone, Copy, Debug)]
pub struct GroupElement(pub(crate) EdwardsPoint);

impl GroupElement {
    /// The identity element.
    pub fn identity() -> GroupElement {
        GroupElement(EdwardsPoint::identity())
    }

    /// The group generator `g` (Ristretto basepoint).
    pub fn generator() -> GroupElement {
        GroupElement(*EdwardsPoint::basepoint())
    }

    /// `g^x` in the paper's multiplicative notation.
    pub fn base_mul(x: &Scalar) -> GroupElement {
        GroupElement(EdwardsPoint::base_mul(x))
    }

    /// `self^x` in the paper's multiplicative notation.
    pub fn mul(&self, x: &Scalar) -> GroupElement {
        GroupElement(self.0.scalar_mul(x))
    }

    /// The pre-optimization two-exponent hop kernel (two from-scratch
    /// reference ladders).  Kept as the bench baseline and for
    /// differential tests; never called on a hot path.
    #[doc(hidden)]
    pub fn naive_two_muls_reference(&self, a: &Scalar, b: &Scalar) -> (GroupElement, GroupElement) {
        (
            GroupElement(self.0.scalar_mul_reference(a)),
            GroupElement(self.0.scalar_mul_reference(b)),
        )
    }

    /// `self^x` in **variable time** (width-5 NAF, no masked scans).
    ///
    /// Only for *public* exponents and elements — e.g. opening the inner
    /// envelopes after the servers have broadcast their inner keys
    /// (§6.3), or re-checking proof equations.  Secret exponents must
    /// use [`GroupElement::mul`].
    pub fn vartime_mul(&self, x: &Scalar) -> GroupElement {
        GroupElement(self.0.vartime_scalar_mul(x))
    }

    /// `prod_i points[i]^scalars[i]` in **variable time** (Straus for
    /// small batches, Pippenger above ~200 points).
    ///
    /// Only for *public* data: this is the engine of batched proof
    /// verification ([`crate::nizk`]), where every input is a wire
    /// value or a verifier-chosen random coefficient.
    pub fn vartime_multiscalar_mul(scalars: &[Scalar], points: &[GroupElement]) -> GroupElement {
        let inner: Vec<EdwardsPoint> = points.iter().map(|p| p.0).collect();
        GroupElement(EdwardsPoint::vartime_multiscalar_mul(scalars, &inner))
    }

    /// Group operation (written multiplicatively in the paper; this is
    /// the product of two elements).
    pub fn add(&self, other: &GroupElement) -> GroupElement {
        GroupElement(self.0.add(&other.0))
    }

    /// Inverse group operation.
    pub fn sub(&self, other: &GroupElement) -> GroupElement {
        GroupElement(self.0.sub(&other.0))
    }

    /// Inverse element.
    pub fn neg(&self) -> GroupElement {
        GroupElement(self.0.neg())
    }

    /// Product of many elements (`∏_j X_j` in the AHS proofs).
    pub fn product<'a, I: IntoIterator<Item = &'a GroupElement>>(iter: I) -> GroupElement {
        iter.into_iter()
            .fold(GroupElement::identity(), |acc, p| acc.add(p))
    }

    /// Canonical 32-byte encoding.
    pub fn encode(&self) -> [u8; 32] {
        let c = constants();
        let i = FieldElement::sqrt_m1();
        let (x0, y0, z0, t0) = (self.0.x, self.0.y, self.0.z, self.0.t);

        let u1 = z0.add(&y0).mul(&z0.sub(&y0));
        let u2 = x0.mul(&y0);
        let (_, invsqrt) = u1.mul(&u2.square()).invsqrt();
        let den1 = invsqrt.mul(&u1);
        let den2 = invsqrt.mul(&u2);
        let z_inv = den1.mul(&den2).mul(&t0);

        let ix0 = x0.mul(i);
        let iy0 = y0.mul(i);
        let enchanted_denominator = den1.mul(&c.invsqrt_a_minus_d);
        let rotate = t0.mul(&z_inv).is_negative() as u64;

        let x = FieldElement::select(&x0, &iy0, rotate);
        let mut y = FieldElement::select(&y0, &ix0, rotate);
        let den_inv = FieldElement::select(&den2, &enchanted_denominator, rotate);

        y = y.conditional_negate(x.mul(&z_inv).is_negative() as u64);

        den_inv.mul(&z0.sub(&y)).abs().to_bytes()
    }

    /// Encode a slice of elements.
    ///
    /// This is a plain per-point map — **there is no batch fast path
    /// for ristretto encoding, by arithmetic, not by omission.**  Each
    /// encode is dominated by one inverse square root (a fixed
    /// ~254-squaring exponentiation), and square roots do not combine
    /// under Montgomery's product trick the way inversions do
    /// (`sqrt(ab)` relates to `sqrt(a)sqrt(b)` only up to a quadratic
    /// character, which costs another per-element exponentiation to
    /// resolve).  The serial encode also contains no discrete
    /// inversion to amortize — every denominator already derives from
    /// that single invsqrt.  A shared-inversion "batch" variant (PR 2)
    /// measured 0.98× against this map and was removed; the name
    /// `encode_all` states the intent (encode many) without promising
    /// a speedup that cannot exist.  Batch wins on the wire path come
    /// from [`EdwardsPoint::batch_compress`]-style shared inversions
    /// (48× on table normalization), where a real per-point inversion
    /// exists to amortize.
    pub fn encode_all(points: &[GroupElement]) -> Vec<[u8; 32]> {
        points.iter().map(|p| p.encode()).collect()
    }

    /// Decode a canonical 32-byte encoding; `None` for invalid encodings.
    pub fn decode(bytes: &[u8; 32]) -> Option<GroupElement> {
        let s = FieldElement::from_bytes(bytes);
        // Must be canonical and non-negative.
        if s.to_bytes() != *bytes || s.is_negative() {
            return None;
        }
        let one = FieldElement::ONE;
        let ss = s.square();
        let u1 = one.sub(&ss);
        let u2 = one.add(&ss);
        let u2_sqr = u2.square();
        // v = -(D * u1^2) - u2_sqr
        let v = edwards_d().mul(&u1.square()).neg().sub(&u2_sqr);
        let (was_square, invsqrt) = v.mul(&u2_sqr).invsqrt();
        let den_x = invsqrt.mul(&u2);
        let den_y = invsqrt.mul(&den_x).mul(&v);

        let x = s.add(&s).mul(&den_x).abs();
        let y = u1.mul(&den_y);
        let t = x.mul(&y);

        if !was_square || t.is_negative() || y.is_zero() {
            return None;
        }
        Some(GroupElement(EdwardsPoint { x, y, z: one, t }))
    }

    /// The Elligator-style one-way map from a field element to a group
    /// element (MAP in the ristretto255 draft).
    fn elligator_map(t: &FieldElement) -> GroupElement {
        let c = constants();
        let i = FieldElement::sqrt_m1();
        let one = FieldElement::ONE;
        let d = edwards_d();

        let r = i.mul(&t.square());
        let u = r.add(&one).mul(&c.one_minus_d_sq);
        let v = one.neg().sub(&r.mul(d)).mul(&r.add(d));

        let (was_square, mut s) = FieldElement::sqrt_ratio_i(&u, &v);
        let s_prime = s.mul(t).abs().neg();
        s = FieldElement::select(&s_prime, &s, was_square as u64);
        let c_sel = FieldElement::select(&r, &one.neg(), was_square as u64);

        let n = c_sel.mul(&r.sub(&one)).mul(&c.d_minus_one_sq).sub(&v);

        let w0 = s.add(&s).mul(&v);
        let w1 = n.mul(&c.sqrt_ad_minus_one);
        let ss = s.square();
        let w2 = one.sub(&ss);
        let w3 = one.add(&ss);

        GroupElement(EdwardsPoint {
            x: w0.mul(&w3),
            y: w2.mul(&w1),
            z: w1.mul(&w3),
            t: w0.mul(&w2),
        })
    }

    /// Hash-to-group: map 64 uniform bytes to a uniform group element.
    pub fn from_uniform_bytes(bytes: &[u8; 64]) -> GroupElement {
        let mut lo = [0u8; 32];
        let mut hi = [0u8; 32];
        lo.copy_from_slice(&bytes[..32]);
        hi.copy_from_slice(&bytes[32..]);
        let p1 = Self::elligator_map(&FieldElement::from_bytes(&lo));
        let p2 = Self::elligator_map(&FieldElement::from_bytes(&hi));
        p1.add(&p2)
    }

    /// Uniformly random group element (with unknown discrete log).
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> GroupElement {
        let mut bytes = [0u8; 64];
        rng.fill_bytes(&mut bytes);
        Self::from_uniform_bytes(&bytes)
    }

    /// True iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.eq(&GroupElement::identity())
    }

    /// Ristretto equality (coset equality, constant-time style).
    #[allow(clippy::should_implement_trait)] // PartialEq delegates here
    pub fn eq(&self, other: &GroupElement) -> bool {
        let x1y2 = self.0.x.mul(&other.0.y);
        let y1x2 = self.0.y.mul(&other.0.x);
        let x1x2 = self.0.x.mul(&other.0.x);
        let y1y2 = self.0.y.mul(&other.0.y);
        x1y2.ct_eq(&y1x2) || x1x2.ct_eq(&y1y2)
    }
}

impl PartialEq for GroupElement {
    fn eq(&self, other: &Self) -> bool {
        GroupElement::eq(self, other)
    }
}
impl Eq for GroupElement {}

/// A reusable window table of a fixed group element (wrapping
/// [`PointTable`]): build once, exponentiate many times.
///
/// The §6.3 hop kernel builds one table per entry (batched across the
/// whole hop with [`GroupTable::batch_new`], sharing a single field
/// inversion) and runs both the decrypt (`msk`) and blind (`bsk`)
/// exponentiations off it with [`GroupTable::mul_pair`].  Scans stay
/// masked, so secret exponents are safe here.
pub struct GroupTable(PointTable);

impl GroupTable {
    /// Precompute the table for one element (prefer
    /// [`GroupTable::batch_new`] for several).
    pub fn new(point: &GroupElement) -> GroupTable {
        GroupTable(PointTable::new(&point.0))
    }

    /// Precompute tables for a batch of elements with one shared field
    /// inversion.
    pub fn batch_new(points: &[GroupElement]) -> Vec<GroupTable> {
        let inner: Vec<EdwardsPoint> = points.iter().map(|p| p.0).collect();
        PointTable::batch_new(&inner)
            .into_iter()
            .map(GroupTable)
            .collect()
    }

    /// `P^x` off the precomputed table (constant-time-style scans).
    pub fn mul(&self, x: &Scalar) -> GroupElement {
        GroupElement(self.0.scalar_mul(x))
    }

    /// `(P^a, P^b)`: two ladders off one precomputed table — the
    /// two-scalar hop kernel (the savings come from sharing the table
    /// build; the ladders themselves run back to back).
    pub fn mul_pair(&self, a: &Scalar, b: &Scalar) -> (GroupElement, GroupElement) {
        let (pa, pb) = self.0.scalar_mul_pair(a, b);
        (GroupElement(pa), GroupElement(pb))
    }
}

impl std::ops::Add for GroupElement {
    type Output = GroupElement;
    fn add(self, rhs: GroupElement) -> GroupElement {
        GroupElement::add(&self, &rhs)
    }
}
impl std::ops::Sub for GroupElement {
    type Output = GroupElement;
    fn sub(self, rhs: GroupElement) -> GroupElement {
        GroupElement::sub(&self, &rhs)
    }
}
impl std::ops::Neg for GroupElement {
    type Output = GroupElement;
    fn neg(self) -> GroupElement {
        GroupElement::neg(&self)
    }
}
impl std::ops::Mul<Scalar> for GroupElement {
    type Output = GroupElement;
    fn mul(self, rhs: Scalar) -> GroupElement {
        GroupElement::mul(&self, &rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_hex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Encodings of small multiples 0..16 of the Ristretto basepoint,
    /// from draft-irtf-cfrg-ristretto255-decaf448 (Appendix A).
    const SMALL_MULTIPLES: [&str; 16] = [
        "0000000000000000000000000000000000000000000000000000000000000000",
        "e2f2ae0a6abc4e71a884a961c500515f58e30b6aa582dd8db6a65945e08d2d76",
        "6a493210f7499cd17fecb510ae0cea23a110e8d5b901f8acadd3095c73a3b919",
        "94741f5d5d52755ece4f23f044ee27d5d1ea1e2bd196b462166b16152a9d0259",
        "da80862773358b466ffadfe0b3293ab3d9fd53c5ea6c955358f568322daf6a57",
        "e882b131016b52c1d3337080187cf768423efccbb517bb495ab812c4160ff44e",
        "f64746d3c92b13050ed8d80236a7f0007c3b3f962f5ba793d19a601ebb1df403",
        "44f53520926ec81fbd5a387845beb7df85a96a24ece18738bdcfa6a7822a176d",
        "903293d8f2287ebe10e2374dc1a53e0bc887e592699f02d077d5263cdd55601c",
        "02622ace8f7303a31cafc63f8fc48fdc16e1c8c8d234b2f0d6685282a9076031",
        "20706fd788b2720a1ed2a5dad4952b01f413bcf0e7564de8cdc816689e2db95f",
        "bce83f8ba5dd2fa572864c24ba1810f9522bc6004afe95877ac73241cafdab42",
        "e4549ee16b9aa03099ca208c67adafcafa4c3f3e4e5303de6026e3ca8ff84460",
        "aa52e000df2e16f55fb1032fc33bc42742dad6bd5a8fc0be0167436c5948501f",
        "46376b80f409b29dc2b5f6f0c52591990896e5716f41477cd30085ab7f10301e",
        "e0c418f7c8d9c4cdd7395b93ea124f3ad99021bb681dfc3302a9d99a2e53e64e",
    ];

    #[test]
    fn small_multiples_match_draft_vectors() {
        let g = GroupElement::generator();
        let mut acc = GroupElement::identity();
        for expected in SMALL_MULTIPLES.iter() {
            assert_eq!(&to_hex(&acc.encode()), expected);
            acc = acc.add(&g);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let p = GroupElement::base_mul(&Scalar::random(&mut rng));
            let enc = p.encode();
            let q = GroupElement::decode(&enc).unwrap();
            assert_eq!(p, q);
            assert_eq!(q.encode(), enc);
        }
    }

    #[test]
    fn decode_rejects_noncanonical() {
        // A negative s (odd first byte paired with otherwise-valid data)
        // must be rejected; so must s >= p.
        let mut bytes = GroupElement::generator().encode();
        // Make s negative by flipping low bit (if it becomes invalid, good;
        // we check it does not decode to the same point at minimum).
        bytes[0] ^= 1;
        if let Some(p) = GroupElement::decode(&bytes) {
            assert_ne!(p, GroupElement::generator());
        }
        // s = p (non-canonical encoding of 0)
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        assert!(GroupElement::decode(&p_bytes).is_none());
    }

    #[test]
    fn cofactor_components_encode_identically() {
        // Adding an 8-torsion Edwards point must not change the Ristretto
        // encoding. 4-torsion point: (x, 0) ... use the known order-4 point
        // (sqrt(-1) related); simplest: take E = l*P' for random Edwards P'
        // obtained via elligator, which lands in the torsion subgroup.
        let mut rng = StdRng::seed_from_u64(6);
        let p = GroupElement::base_mul(&Scalar::random(&mut rng));
        // Torsion point: the Edwards point of order 4 with x=1? Instead use:
        // t = (l * E) where E is any Edwards point; l kills the prime-order
        // component leaving pure torsion.
        let e = GroupElement::random(&mut rng).0;
        let l_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
        let torsion = e.scalar_mul(&l_minus_1).add(&e); // l * E
        let q = GroupElement(p.0.add(&torsion));
        assert_eq!(p.encode(), q.encode());
        assert_eq!(p, q);
    }

    #[test]
    fn group_is_prime_order() {
        // l * g = identity in Ristretto.
        let l_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
        let almost = GroupElement::base_mul(&l_minus_1);
        assert_eq!(
            almost.add(&GroupElement::generator()),
            GroupElement::identity()
        );
    }

    #[test]
    fn dh_is_commutative() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Scalar::random(&mut rng);
        let b = Scalar::random(&mut rng);
        let ga = GroupElement::base_mul(&a);
        let gb = GroupElement::base_mul(&b);
        assert_eq!(ga.mul(&b), gb.mul(&a));
    }

    #[test]
    fn from_uniform_bytes_is_deterministic_and_valid() {
        let bytes = [42u8; 64];
        let p = GroupElement::from_uniform_bytes(&bytes);
        let q = GroupElement::from_uniform_bytes(&bytes);
        assert_eq!(p, q);
        assert!(p.0.is_on_curve());
        // Roundtrips through encoding
        let r = GroupElement::decode(&p.encode()).unwrap();
        assert_eq!(p, r);
    }

    #[test]
    fn random_elements_are_distinct() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = GroupElement::random(&mut rng);
        let q = GroupElement::random(&mut rng);
        assert_ne!(p, q);
    }

    #[test]
    fn product_of_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs: Vec<Scalar> = (0..5).map(|_| Scalar::random(&mut rng)).collect();
        let points: Vec<GroupElement> = xs.iter().map(GroupElement::base_mul).collect();
        let sum_scalar = xs.iter().fold(Scalar::ZERO, |a, b| a.add(b));
        assert_eq!(
            GroupElement::product(&points),
            GroupElement::base_mul(&sum_scalar)
        );
    }

    #[test]
    fn operators_match_methods() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Scalar::random(&mut rng);
        let p = GroupElement::base_mul(&a);
        let g = GroupElement::generator();
        assert_eq!(p + g, p.add(&g));
        assert_eq!(p - g, p.sub(&g));
        assert_eq!(-p, p.neg());
        assert_eq!(g * a, g.mul(&a));
    }

    #[test]
    fn identity_encoding_is_all_zero() {
        assert_eq!(GroupElement::identity().encode(), [0u8; 32]);
        assert!(GroupElement::decode(&[0u8; 32]).unwrap().is_identity());
    }

    #[test]
    fn encode_all_matches_encode() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut points: Vec<GroupElement> =
            (0..10).map(|_| GroupElement::random(&mut rng)).collect();
        points.push(GroupElement::identity());
        // Torsion representatives: same coset, so same encoding — and
        // they exercise the u2 = 0 masking.
        let e = GroupElement::random(&mut rng).0;
        let l_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
        let torsion = e.scalar_mul(&l_minus_1).add(&e); // pure torsion
        points.push(GroupElement(GroupElement::identity().0.add(&torsion)));
        points.push(GroupElement(points[0].0.add(&torsion)));
        let batch = GroupElement::encode_all(&points);
        for (p, enc) in points.iter().zip(&batch) {
            assert_eq!(*enc, p.encode());
        }
        assert!(GroupElement::encode_all(&[]).is_empty());
    }

    #[test]
    fn group_table_matches_mul() {
        let mut rng = StdRng::seed_from_u64(21);
        let points: Vec<GroupElement> = (0..4).map(|_| GroupElement::random(&mut rng)).collect();
        let tables = GroupTable::batch_new(&points);
        for (p, table) in points.iter().zip(&tables) {
            let a = Scalar::random(&mut rng);
            let b = Scalar::random(&mut rng);
            assert_eq!(table.mul(&a), p.mul(&a));
            let (pa, pb) = table.mul_pair(&a, &b);
            assert_eq!(pa, p.mul(&a));
            assert_eq!(pb, p.mul(&b));
        }
        let single = GroupTable::new(&points[0]);
        let s = Scalar::random(&mut rng);
        assert_eq!(single.mul(&s), points[0].mul(&s));
    }

    #[test]
    fn vartime_mul_matches_ct_mul() {
        let mut rng = StdRng::seed_from_u64(22);
        let p = GroupElement::random(&mut rng);
        for _ in 0..6 {
            let x = Scalar::random(&mut rng);
            assert_eq!(p.vartime_mul(&x), p.mul(&x));
        }
        assert!(p.vartime_mul(&Scalar::ZERO).is_identity());
    }

    #[test]
    fn vartime_multiscalar_matches_naive() {
        let mut rng = StdRng::seed_from_u64(23);
        for n in [0usize, 1, 3, 17] {
            let scalars: Vec<Scalar> = (0..n).map(|_| Scalar::random(&mut rng)).collect();
            let points: Vec<GroupElement> =
                (0..n).map(|_| GroupElement::random(&mut rng)).collect();
            let naive = scalars
                .iter()
                .zip(&points)
                .fold(GroupElement::identity(), |acc, (s, p)| acc.add(&p.mul(s)));
            assert_eq!(
                GroupElement::vartime_multiscalar_mul(&scalars, &points),
                naive,
                "n={n}"
            );
        }
    }
}
