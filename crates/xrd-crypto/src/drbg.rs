//! A deterministic ChaCha20-based random bit generator.
//!
//! Used wherever the protocol needs *shared, reproducible* randomness
//! (the public randomness beacon for chain formation, deterministic test
//! runs, workload generation).  Secrets should use the OS RNG instead.

use rand::{CryptoRng, RngCore, SeedableRng};

use crate::chacha20::chacha20_block;

/// Deterministic RNG: the ChaCha20 keystream under a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaChaRng {
    key: [u8; 32],
    /// 96-bit block position: (nonce_hi as u64, counter as u32).
    block_idx: u64,
    buf: [u8; 64],
    buf_pos: usize,
}

impl ChaChaRng {
    /// Create from a 32-byte seed.
    pub fn new(seed: [u8; 32]) -> ChaChaRng {
        ChaChaRng {
            key: seed,
            block_idx: 0,
            buf: [0u8; 64],
            buf_pos: 64, // force refill on first use
        }
    }

    /// Derive a child RNG for a labelled subdomain; children with
    /// different labels produce independent streams.
    pub fn fork(&self, label: &str) -> ChaChaRng {
        let seed = crate::kdf::derive_key("drbg-fork", &[&self.key, label.as_bytes()]);
        ChaChaRng::new(seed)
    }

    fn refill(&mut self) {
        // Use the low 32 bits as the counter, the next 64 as the nonce, so
        // the stream never repeats within 2^96 blocks.
        let counter = (self.block_idx & 0xffff_ffff) as u32;
        let hi = self.block_idx >> 32;
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&hi.to_le_bytes());
        self.buf = chacha20_block(&self.key, counter, &nonce);
        self.block_idx = self.block_idx.wrapping_add(1);
        self.buf_pos = 0;
    }
}

impl RngCore for ChaChaRng {
    fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_le_bytes(bytes)
    }

    fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_le_bytes(bytes)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.buf_pos >= 64 {
                self.refill();
            }
            let take = (64 - self.buf_pos).min(dest.len() - written);
            dest[written..written + take]
                .copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            written += take;
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl CryptoRng for ChaChaRng {}

impl SeedableRng for ChaChaRng {
    type Seed = [u8; 32];
    fn from_seed(seed: [u8; 32]) -> ChaChaRng {
        ChaChaRng::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = ChaChaRng::new([1u8; 32]);
        let mut b = ChaChaRng::new([1u8; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaChaRng::new([1u8; 32]);
        let mut b = ChaChaRng::new([2u8; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_streams_are_independent() {
        let root = ChaChaRng::new([3u8; 32]);
        let mut c1 = root.fork("alpha");
        let mut c2 = root.fork("beta");
        let c1_again = root.fork("alpha");
        assert_ne!(c1.next_u64(), c2.next_u64());
        let mut c1b = root.fork("alpha");
        let _ = c1_again;
        assert_eq!(c1b.next_u64(), {
            let mut fresh = root.fork("alpha");
            fresh.next_u64()
        });
    }

    #[test]
    fn fill_bytes_crosses_block_boundaries() {
        let mut rng = ChaChaRng::new([4u8; 32]);
        let mut big = [0u8; 200];
        rng.fill_bytes(&mut big);
        // compare against byte-at-a-time stream
        let mut rng2 = ChaChaRng::new([4u8; 32]);
        let mut small = [0u8; 200];
        for b in small.iter_mut() {
            let mut one = [0u8; 1];
            rng2.fill_bytes(&mut one);
            *b = one[0];
        }
        assert_eq!(big, small);
    }

    #[test]
    fn output_is_not_all_zero() {
        let mut rng = ChaChaRng::new([0u8; 32]);
        let mut buf = [0u8; 64];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 64]);
    }
}
