//! Arithmetic in the field GF(2^255 - 19), the base field of Curve25519.
//!
//! Elements are represented with five 51-bit limbs in radix 2^51 (the
//! standard 64-bit "ref10"-style representation).  All arithmetic keeps
//! limbs weakly reduced (below ~2^52) so that products never overflow
//! 128-bit accumulators.
//!
//! This module is self-contained: no external crypto dependency.  Derived
//! curve constants (sqrt(-1), Edwards d, the Ristretto magic constants) are
//! computed at first use from first principles rather than transcribed, and
//! validated by unit tests.

use crate::util::load_u64_le;

/// Mask selecting the low 51 bits of a `u64`.
const LOW_51_BIT_MASK: u64 = (1u64 << 51) - 1;

/// An element of GF(2^255 - 19), weakly reduced (limbs < 2^52).
#[derive(Clone, Copy, Debug)]
pub struct FieldElement(pub(crate) [u64; 5]);

/// `16 * p` in radix-2^51 limbs; added before subtraction to avoid
/// underflow while keeping the result congruent mod p.
const SIXTEEN_P: [u64; 5] = [
    36028797018963664, // 16 * (2^51 - 19)
    36028797018963952, // 16 * (2^51 - 1)
    36028797018963952,
    36028797018963952,
    36028797018963952,
];

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0, 0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0, 0]);

    /// Construct from a small integer.
    pub const fn from_u64(x: u64) -> FieldElement {
        // Splitting x across the first two limbs keeps the invariant even
        // for x close to u64::MAX.
        FieldElement([x & LOW_51_BIT_MASK, x >> 51, 0, 0, 0])
    }

    /// Parse 32 little-endian bytes as a field element, ignoring the top
    /// bit (matching the curve25519 convention).
    pub fn from_bytes(bytes: &[u8; 32]) -> FieldElement {
        FieldElement([
            load_u64_le(&bytes[0..8]) & LOW_51_BIT_MASK,
            (load_u64_le(&bytes[6..14]) >> 3) & LOW_51_BIT_MASK,
            (load_u64_le(&bytes[12..20]) >> 6) & LOW_51_BIT_MASK,
            (load_u64_le(&bytes[19..27]) >> 1) & LOW_51_BIT_MASK,
            (load_u64_le(&bytes[24..32]) >> 12) & LOW_51_BIT_MASK,
        ])
    }

    /// Fully reduce and serialize to 32 little-endian bytes.  The encoding
    /// is canonical: the value is reduced into [0, p).
    pub fn to_bytes(&self) -> [u8; 32] {
        // First carry-propagate so limbs fit in 51 bits (plus small excess).
        let mut limbs = Self::weak_reduce(self.0).0;

        // Compute q = floor((value + 19) / 2^255), i.e. q = 1 iff value >= p.
        let mut q = (limbs[0] + 19) >> 51;
        q = (limbs[1] + q) >> 51;
        q = (limbs[2] + q) >> 51;
        q = (limbs[3] + q) >> 51;
        q = (limbs[4] + q) >> 51;

        // Add 19*q, then mask to 255 bits: this subtracts p iff value >= p.
        limbs[0] += 19 * q;
        limbs[1] += limbs[0] >> 51;
        limbs[0] &= LOW_51_BIT_MASK;
        limbs[2] += limbs[1] >> 51;
        limbs[1] &= LOW_51_BIT_MASK;
        limbs[3] += limbs[2] >> 51;
        limbs[2] &= LOW_51_BIT_MASK;
        limbs[4] += limbs[3] >> 51;
        limbs[3] &= LOW_51_BIT_MASK;
        limbs[4] &= LOW_51_BIT_MASK;

        let mut out = [0u8; 32];
        out[0] = limbs[0] as u8;
        out[1] = (limbs[0] >> 8) as u8;
        out[2] = (limbs[0] >> 16) as u8;
        out[3] = (limbs[0] >> 24) as u8;
        out[4] = (limbs[0] >> 32) as u8;
        out[5] = (limbs[0] >> 40) as u8;
        out[6] = ((limbs[0] >> 48) | (limbs[1] << 3)) as u8;
        out[7] = (limbs[1] >> 5) as u8;
        out[8] = (limbs[1] >> 13) as u8;
        out[9] = (limbs[1] >> 21) as u8;
        out[10] = (limbs[1] >> 29) as u8;
        out[11] = (limbs[1] >> 37) as u8;
        out[12] = ((limbs[1] >> 45) | (limbs[2] << 6)) as u8;
        out[13] = (limbs[2] >> 2) as u8;
        out[14] = (limbs[2] >> 10) as u8;
        out[15] = (limbs[2] >> 18) as u8;
        out[16] = (limbs[2] >> 26) as u8;
        out[17] = (limbs[2] >> 34) as u8;
        out[18] = (limbs[2] >> 42) as u8;
        out[19] = ((limbs[2] >> 50) | (limbs[3] << 1)) as u8;
        out[20] = (limbs[3] >> 7) as u8;
        out[21] = (limbs[3] >> 15) as u8;
        out[22] = (limbs[3] >> 23) as u8;
        out[23] = (limbs[3] >> 31) as u8;
        out[24] = (limbs[3] >> 39) as u8;
        out[25] = ((limbs[3] >> 47) | (limbs[4] << 4)) as u8;
        out[26] = (limbs[4] >> 4) as u8;
        out[27] = (limbs[4] >> 12) as u8;
        out[28] = (limbs[4] >> 20) as u8;
        out[29] = (limbs[4] >> 28) as u8;
        out[30] = (limbs[4] >> 36) as u8;
        out[31] = (limbs[4] >> 44) as u8;
        out
    }

    /// Carry-propagate limbs back below 2^52 without full reduction mod p.
    #[inline(always)]
    fn weak_reduce(mut limbs: [u64; 5]) -> FieldElement {
        let c0 = limbs[0] >> 51;
        limbs[0] &= LOW_51_BIT_MASK;
        limbs[1] += c0;
        let c1 = limbs[1] >> 51;
        limbs[1] &= LOW_51_BIT_MASK;
        limbs[2] += c1;
        let c2 = limbs[2] >> 51;
        limbs[2] &= LOW_51_BIT_MASK;
        limbs[3] += c2;
        let c3 = limbs[3] >> 51;
        limbs[3] &= LOW_51_BIT_MASK;
        limbs[4] += c3;
        let c4 = limbs[4] >> 51;
        limbs[4] &= LOW_51_BIT_MASK;
        limbs[0] += c4 * 19;
        FieldElement(limbs)
    }

    /// Field addition.
    #[inline(always)]
    pub fn add(&self, rhs: &FieldElement) -> FieldElement {
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            limbs[i] = self.0[i] + rhs.0[i];
        }
        Self::weak_reduce(limbs)
    }

    /// Field subtraction.
    #[inline(always)]
    pub fn sub(&self, rhs: &FieldElement) -> FieldElement {
        // Add 16p so that per-limb subtraction never underflows.
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            limbs[i] = self.0[i] + SIXTEEN_P[i] - rhs.0[i];
        }
        Self::weak_reduce(limbs)
    }

    /// Field negation.
    #[inline(always)]
    pub fn neg(&self) -> FieldElement {
        FieldElement::ZERO.sub(self)
    }

    // -----------------------------------------------------------------
    // Lazy (non-reducing) additive ops for the point-arithmetic kernels.
    //
    // `mul`/`square` tolerate inputs with limbs up to 2^57 (products
    // stay under 2^121 across the five-term accumulators, and the
    // 19-fold premultiply stays under 2^62), so a bounded amount of
    // carry-postponement between multiplications is sound.  The rules,
    // checked by debug asserts:
    //
    //   * reduced values (mul/square/weak_reduce outputs) have limbs
    //     < 2^52;
    //   * `lazy_add` accepts limbs < 2^56 and yields limbs < 2^57 —
    //     mul-safe, NOT safe as a `lazy_sub` rhs;
    //   * `lazy_sub` accepts an rhs with limbs < 2^55 (it adds 16p
    //     before subtracting) and yields limbs < 2^56 given lhs limbs
    //     < 2^55.8 — mul-safe;
    //   * `lazy_sub_wide` accepts an rhs with limbs < 2^56.1 (it adds
    //     32p) for the one doubling step whose rhs is itself a
    //     `lazy_sub` output.
    //
    // These are pub(crate): every call site lives in `edwards.rs` where
    // the bounds are established structurally.
    // -----------------------------------------------------------------

    /// Addition without carry propagation (see module rules above).
    #[inline(always)]
    pub(crate) fn lazy_add(&self, rhs: &FieldElement) -> FieldElement {
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            debug_assert!(self.0[i] < 1 << 56 && rhs.0[i] < 1 << 56);
            limbs[i] = self.0[i] + rhs.0[i];
        }
        FieldElement(limbs)
    }

    /// Subtraction (adding 16p first) without carry propagation; the
    /// rhs must have limbs below 16p's (< ~2^55).
    #[inline(always)]
    pub(crate) fn lazy_sub(&self, rhs: &FieldElement) -> FieldElement {
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            debug_assert!(rhs.0[i] <= SIXTEEN_P[i]);
            limbs[i] = self.0[i] + SIXTEEN_P[i] - rhs.0[i];
        }
        FieldElement(limbs)
    }

    /// Subtraction (adding 32p first) without carry propagation, for an
    /// rhs that is itself a `lazy_sub` output (limbs < 2^56.1).
    #[inline(always)]
    pub(crate) fn lazy_sub_wide(&self, rhs: &FieldElement) -> FieldElement {
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            debug_assert!(rhs.0[i] <= 2 * SIXTEEN_P[i]);
            limbs[i] = self.0[i] + 2 * SIXTEEN_P[i] - rhs.0[i];
        }
        FieldElement(limbs)
    }

    /// Field multiplication.
    #[inline(always)]
    pub fn mul(&self, rhs: &FieldElement) -> FieldElement {
        #[inline(always)]
        fn m(a: u64, b: u64) -> u128 {
            (a as u128) * (b as u128)
        }
        let a = &self.0;
        let b = &rhs.0;

        // Precompute 19*b[i] (fits: b[i] < 2^52, 19*b[i] < 2^57).
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;

        let c0 = m(a[0], b[0]) + m(a[4], b1_19) + m(a[3], b2_19) + m(a[2], b3_19) + m(a[1], b4_19);
        let c1 = m(a[1], b[0]) + m(a[0], b[1]) + m(a[4], b2_19) + m(a[3], b3_19) + m(a[2], b4_19);
        let c2 = m(a[2], b[0]) + m(a[1], b[1]) + m(a[0], b[2]) + m(a[4], b3_19) + m(a[3], b4_19);
        let c3 = m(a[3], b[0]) + m(a[2], b[1]) + m(a[1], b[2]) + m(a[0], b[3]) + m(a[4], b4_19);
        let c4 = m(a[4], b[0]) + m(a[3], b[1]) + m(a[2], b[2]) + m(a[1], b[3]) + m(a[0], b[4]);

        Self::carry_wide([c0, c1, c2, c3, c4])
    }

    /// Field squaring (slightly cheaper than `mul(self, self)`).
    #[inline(always)]
    pub fn square(&self) -> FieldElement {
        #[inline(always)]
        fn m(a: u64, b: u64) -> u128 {
            (a as u128) * (b as u128)
        }
        let a = &self.0;
        // Pre-double the u64 operands so the off-diagonal terms need no
        // 128-bit shifts (cheaper than doubling the wide accumulators).
        let a0_2 = a[0] * 2;
        let a1_2 = a[1] * 2;
        let a3_19 = a[3] * 19;
        let a4_19 = a[4] * 19;

        let c0 = m(a[0], a[0]) + m(a1_2, a4_19) + m(2 * a[2], a3_19);
        let c1 = m(a[3], a3_19) + m(a0_2, a[1]) + m(2 * a[2], a4_19);
        let c2 = m(a[1], a[1]) + m(a0_2, a[2]) + m(2 * a[4], a3_19);
        let c3 = m(a[4], a4_19) + m(a0_2, a[3]) + m(a1_2, a[2]);
        let c4 = m(a[2], a[2]) + m(a0_2, a[4]) + m(a1_2, a[3]);

        Self::carry_wide([c0, c1, c2, c3, c4])
    }

    /// Carry-propagate a wide (u128-limb) product back to 51-bit limbs.
    /// The final 19-fold runs in 128 bits so that products of *lazy*
    /// (non-reduced, limbs < 2^57) operands stay sound: each input limb
    /// product is then < 2^121 and the top carry can exceed 64 bits.
    #[inline(always)]
    fn carry_wide(mut c: [u128; 5]) -> FieldElement {
        let mut out = [0u64; 5];
        c[1] += c[0] >> 51;
        c[2] += c[1] >> 51;
        out[1] = (c[1] as u64) & LOW_51_BIT_MASK;
        c[3] += c[2] >> 51;
        out[2] = (c[2] as u64) & LOW_51_BIT_MASK;
        c[4] += c[3] >> 51;
        out[3] = (c[3] as u64) & LOW_51_BIT_MASK;
        let carry = c[4] >> 51;
        out[4] = (c[4] as u64) & LOW_51_BIT_MASK;
        let c0 = ((c[0] as u64 & LOW_51_BIT_MASK) as u128) + carry * 19;
        out[0] = (c0 as u64) & LOW_51_BIT_MASK;
        out[1] += (c0 >> 51) as u64;
        FieldElement(out)
    }

    /// Square `k` times: returns `self^(2^k)`.
    pub fn pow2k(&self, k: u32) -> FieldElement {
        debug_assert!(k > 0);
        let mut out = self.square();
        for _ in 1..k {
            out = out.square();
        }
        out
    }

    /// Shared tower for inversion and `pow_p58`: returns
    /// `(self^(2^250 - 1), self^11)`.
    fn pow22501(&self) -> (FieldElement, FieldElement) {
        let t0 = self.square(); // 2
        let t1 = t0.square().square(); // 8
        let t2 = self.mul(&t1); // 9
        let t3 = t0.mul(&t2); // 11
        let t4 = t3.square(); // 22
        let t5 = t2.mul(&t4); // 2^5 - 1
        let t6 = t5.pow2k(5); // 2^10 - 2^5
        let t7 = t6.mul(&t5); // 2^10 - 1
        let t8 = t7.pow2k(10); // 2^20 - 2^10
        let t9 = t8.mul(&t7); // 2^20 - 1
        let t10 = t9.pow2k(20); // 2^40 - 2^20
        let t11 = t10.mul(&t9); // 2^40 - 1
        let t12 = t11.pow2k(10); // 2^50 - 2^10
        let t13 = t12.mul(&t7); // 2^50 - 1
        let t14 = t13.pow2k(50); // 2^100 - 2^50
        let t15 = t14.mul(&t13); // 2^100 - 1
        let t16 = t15.pow2k(100); // 2^200 - 2^100
        let t17 = t16.mul(&t15); // 2^200 - 1
        let t18 = t17.pow2k(50); // 2^250 - 2^50
        let t19 = t18.mul(&t13); // 2^250 - 1
        (t19, t3)
    }

    /// Multiplicative inverse: `self^(p-2)`.  Returns zero for zero.
    pub fn invert(&self) -> FieldElement {
        let (t19, t3) = self.pow22501();
        let t20 = t19.pow2k(5); // 2^255 - 2^5
        t20.mul(&t3) // 2^255 - 21 = p - 2
    }

    /// `self^((p-5)/8) = self^(2^252 - 3)`, used by `sqrt_ratio_i`.
    fn pow_p58(&self) -> FieldElement {
        let (t19, _) = self.pow22501();
        let t20 = t19.pow2k(2); // 2^252 - 4
        self.mul(&t20) // 2^252 - 3
    }

    /// Generic (variable-time) exponentiation by a 256-bit little-endian
    /// exponent.  Only used to derive public constants; never on secrets.
    pub fn pow_vartime(&self, exp_le: &[u8; 32]) -> FieldElement {
        let mut result = FieldElement::ONE;
        for byte in exp_le.iter().rev() {
            for bit in (0..8).rev() {
                result = result.square();
                if (byte >> bit) & 1 == 1 {
                    result = result.mul(self);
                }
            }
        }
        result
    }

    /// True iff the canonical encoding's low bit is set (the "negative"
    /// convention used by Ristretto).
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// True iff this element is zero.
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Constant-time-style select: returns `b` if `choice` is 1, else `a`.
    #[inline(always)]
    pub fn select(a: &FieldElement, b: &FieldElement, choice: u64) -> FieldElement {
        debug_assert!(choice == 0 || choice == 1);
        let mask = choice.wrapping_neg(); // 0 or all-ones
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            limbs[i] = a.0[i] ^ (mask & (a.0[i] ^ b.0[i]));
        }
        FieldElement(limbs)
    }

    /// Negate iff `choice` is 1.
    #[inline(always)]
    pub fn conditional_negate(&self, choice: u64) -> FieldElement {
        Self::select(self, &self.neg(), choice)
    }

    /// Absolute value: negate iff negative.
    pub fn abs(&self) -> FieldElement {
        self.conditional_negate(self.is_negative() as u64)
    }

    /// Equality via canonical encodings.
    pub fn ct_eq(&self, other: &FieldElement) -> bool {
        crate::util::ct_bytes_eq(&self.to_bytes(), &other.to_bytes())
    }

    /// sqrt(-1) mod p, derived as `|2^((p-1)/4)|` (2 is a non-residue since
    /// p = 5 mod 8, so the square of this is -1).  The draft-irtf
    /// ristretto255 constant is the non-negative root, hence `abs`.
    pub fn sqrt_m1() -> &'static FieldElement {
        use std::sync::OnceLock;
        static SQRT_M1: OnceLock<FieldElement> = OnceLock::new();
        SQRT_M1.get_or_init(|| {
            // exponent = (p-1)/4 = 2^253 - 5
            let mut exp = [0xffu8; 32];
            exp[0] = 0xfb; // 2^253 - 5 = ...fb in the lowest byte
            exp[31] = 0x1f; // top byte: 2^253 -> 0x1f...
            let two = FieldElement::from_u64(2);
            two.pow_vartime(&exp).abs()
        })
    }

    /// Computes `sqrt(u/v)` in the Ristretto convention.
    ///
    /// Returns `(was_square, r)` where:
    /// - if `u/v` is square, `was_square = true` and `r = +sqrt(u/v)`;
    /// - if `u/v` is non-square, `was_square = false` and
    ///   `r = +sqrt(i*u/v)` (where `i = sqrt(-1)`);
    /// - if `u = 0`, returns `(true, 0)`; if `v = 0` (and `u != 0`),
    ///   returns `(false, 0)`.
    ///
    /// `r` is always non-negative.
    pub fn sqrt_ratio_i(u: &FieldElement, v: &FieldElement) -> (bool, FieldElement) {
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut r = u.mul(&v3).mul(&u.mul(&v7).pow_p58());
        let check = v.mul(&r.square());

        let i = Self::sqrt_m1();
        let correct_sign = check.ct_eq(u);
        let flipped_sign = check.ct_eq(&u.neg());
        let flipped_sign_i = check.ct_eq(&u.neg().mul(i));

        let r_prime = i.mul(&r);
        r = Self::select(&r, &r_prime, (flipped_sign || flipped_sign_i) as u64);
        r = r.abs();

        (correct_sign || flipped_sign, r)
    }

    /// Montgomery batch inversion: invert every element of `elements`
    /// in place using a single field inversion plus `3n` multiplications
    /// (instead of `n` inversions).
    ///
    /// Zeros are left as zeros (matching [`FieldElement::invert`]).  The
    /// zero-masking uses constant-time selects, but callers on the XRD
    /// hot paths only ever pass public data (projective `Z` coordinates
    /// of wire-visible points, encoding denominators).
    pub fn batch_invert(elements: &mut [FieldElement]) {
        if elements.is_empty() {
            return;
        }
        // Replace zeros by one so the running product stays invertible;
        // remember where they were to restore them at the end.
        let zero_mask: Vec<u64> = elements.iter().map(|e| e.is_zero() as u64).collect();
        // prefix[i] = product of (masked) elements[0..=i]
        let mut prefix = Vec::with_capacity(elements.len());
        let mut acc = FieldElement::ONE;
        for (e, &z) in elements.iter().zip(&zero_mask) {
            let masked = FieldElement::select(e, &FieldElement::ONE, z);
            acc = acc.mul(&masked);
            prefix.push(acc);
        }
        // One inversion of the total product...
        let mut inv = acc.invert();
        // ...then walk backwards peeling one element per step.
        for i in (0..elements.len()).rev() {
            let masked = FieldElement::select(&elements[i], &FieldElement::ONE, zero_mask[i]);
            let this_inv = if i == 0 { inv } else { prefix[i - 1].mul(&inv) };
            inv = inv.mul(&masked);
            elements[i] = FieldElement::select(&this_inv, &FieldElement::ZERO, zero_mask[i]);
        }
    }

    /// `1/sqrt(self)` (Ristretto convention; see `sqrt_ratio_i`).
    pub fn invsqrt(&self) -> (bool, FieldElement) {
        Self::sqrt_ratio_i(&FieldElement::ONE, self)
    }
}

impl PartialEq for FieldElement {
    fn eq(&self, other: &Self) -> bool {
        self.ct_eq(other)
    }
}
impl Eq for FieldElement {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    fn fe(n: u64) -> FieldElement {
        FieldElement::from_u64(n)
    }

    #[test]
    fn one_plus_one() {
        assert_eq!(fe(1).add(&fe(1)), fe(2));
    }

    #[test]
    fn sub_wraps_mod_p() {
        // 0 - 1 = p - 1
        let p_minus_1 = fe(0).sub(&fe(1));
        // p - 1 = 2^255 - 20: little-endian bytes ec ff .. ff 7f
        let mut expect = [0xffu8; 32];
        expect[0] = 0xec;
        expect[31] = 0x7f;
        assert_eq!(p_minus_1.to_bytes(), expect);
    }

    #[test]
    fn to_bytes_is_canonical_for_p() {
        // p itself must encode as zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let p = FieldElement::from_bytes(&p_bytes);
        assert_eq!(p.to_bytes(), [0u8; 32]);
        assert!(p.is_zero());
    }

    #[test]
    fn mul_small() {
        assert_eq!(fe(3).mul(&fe(7)), fe(21));
        assert_eq!(fe(0).mul(&fe(7)), fe(0));
    }

    #[test]
    fn mul_matches_square() {
        let x = fe(0xdead_beef_cafe);
        assert_eq!(x.mul(&x), x.square());
    }

    #[test]
    fn invert_roundtrip() {
        let x = fe(1234567);
        let xinv = x.invert();
        assert_eq!(x.mul(&xinv), FieldElement::ONE);
    }

    #[test]
    fn invert_zero_is_zero() {
        assert_eq!(FieldElement::ZERO.invert(), FieldElement::ZERO);
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = FieldElement::sqrt_m1();
        assert_eq!(i.square(), FieldElement::ONE.neg());
        assert!(!i.is_negative());
    }

    #[test]
    fn sqrt_m1_matches_rfc_draft_value() {
        // draft-irtf-cfrg-ristretto255-decaf448: SQRT_M1 =
        // 19681161376707505956807079304988542015446066515923890162744021073123829784752
        // little-endian hex:
        let expect = from_hex("b0a00e4a271beec478e42fad0618432fa7d7fb3d99004d2b0bdfc14f8024832b");
        assert_eq!(to_hex(&FieldElement::sqrt_m1().to_bytes()), to_hex(&expect));
    }

    #[test]
    fn sqrt_ratio_of_square() {
        let u = fe(4);
        let v = fe(1);
        let (ok, r) = FieldElement::sqrt_ratio_i(&u, &v);
        assert!(ok);
        assert_eq!(r.square(), u);
        assert!(!r.is_negative());
    }

    #[test]
    fn sqrt_ratio_zero_u() {
        let (ok, r) = FieldElement::sqrt_ratio_i(&FieldElement::ZERO, &fe(7));
        assert!(ok);
        assert!(r.is_zero());
    }

    #[test]
    fn sqrt_ratio_zero_v() {
        let (ok, r) = FieldElement::sqrt_ratio_i(&fe(7), &FieldElement::ZERO);
        assert!(!ok);
        assert!(r.is_zero());
    }

    #[test]
    fn sqrt_ratio_nonsquare() {
        // 2 is a non-residue mod p (p = 5 mod 8), so sqrt_ratio(2, 1) must
        // report non-square and return sqrt(2*i).
        let (ok, r) = FieldElement::sqrt_ratio_i(&fe(2), &FieldElement::ONE);
        assert!(!ok);
        let i = FieldElement::sqrt_m1();
        assert_eq!(r.square(), fe(2).mul(i));
    }

    #[test]
    fn abs_is_non_negative() {
        let x = fe(0).sub(&fe(5));
        assert!(!x.abs().is_negative());
        // abs(-x) * abs(-x) = x^2
        assert_eq!(x.abs().square(), x.square());
    }

    #[test]
    fn select_picks_correctly() {
        let a = fe(1);
        let b = fe(2);
        assert_eq!(FieldElement::select(&a, &b, 0), a);
        assert_eq!(FieldElement::select(&a, &b, 1), b);
    }

    #[test]
    fn from_bytes_ignores_top_bit() {
        let mut b = [0u8; 32];
        b[31] = 0x80;
        assert!(FieldElement::from_bytes(&b).is_zero());
    }

    #[test]
    fn distributivity_spot_check() {
        let a = fe(0x1234_5678_9abc);
        let b = fe(0xfedc_ba98);
        let c = fe(0x1111_2222_3333);
        let left = a.mul(&b.add(&c));
        let right = a.mul(&b).add(&a.mul(&c));
        assert_eq!(left, right);
    }
}
