//! ChaCha20-Poly1305 authenticated encryption (RFC 8439) — the paper's
//! `AEnc`/`ADec` (§3.1).
//!
//! XRD's security argument relies on two properties of this construction
//! (both hold for encrypt-then-MAC schemes like this one):
//! 1. producing a validly-authenticated ciphertext without the key is
//!    infeasible, and
//! 2. a ciphertext does not authenticate under two different keys
//!    (except with negligible probability).
//!
//! Nonces in XRD are derived from the round number `ρ` plus a layer/
//! direction domain tag, so a key is never reused with the same nonce.

use crate::chacha20::{chacha20_block, chacha20_xor};
use crate::poly1305::Poly1305;

/// Tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Derive the per-message Poly1305 key (RFC 8439 §2.6).
fn poly_key(key: &[u8; 32], nonce: &[u8; 12]) -> [u8; 32] {
    let block = chacha20_block(key, 0, nonce);
    let mut out = [0u8; 32];
    out.copy_from_slice(&block[..32]);
    out
}

fn compute_tag(poly_key: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
    let mut mac = Poly1305::new(poly_key);
    let zeros = [0u8; 16];
    mac.update(aad);
    if !aad.len().is_multiple_of(16) {
        mac.update(&zeros[..16 - aad.len() % 16]);
    }
    mac.update(ciphertext);
    if !ciphertext.len().is_multiple_of(16) {
        mac.update(&zeros[..16 - ciphertext.len() % 16]);
    }
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

/// `AEnc(s, nonce, m)`: encrypt and authenticate.  Output layout is
/// `ciphertext || tag` (input length + 16 bytes).
pub fn aenc(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
    out.extend_from_slice(plaintext);
    chacha20_xor(key, 1, nonce, &mut out);
    let tag = compute_tag(&poly_key(key, nonce), aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// `ADec(s, nonce, c)`: check integrity and decrypt.  Returns `None` if
/// authentication fails (the paper's `b = 0` case).
pub fn adec(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], sealed: &[u8]) -> Option<Vec<u8>> {
    if sealed.len() < TAG_LEN {
        return None;
    }
    let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let expect = compute_tag(&poly_key(key, nonce), aad, ciphertext);
    if !crate::util::ct_bytes_eq(&expect, tag) {
        return None;
    }
    let mut out = ciphertext.to_vec();
    chacha20_xor(key, 1, nonce, &mut out);
    Some(out)
}

/// Build a 12-byte nonce from the XRD round number and a small domain tag
/// (layer index, message direction, ...), guaranteeing distinct nonces for
/// distinct (round, domain) pairs.
pub fn round_nonce(round: u64, domain: u32) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&round.to_le_bytes());
    nonce[8..].copy_from_slice(&domain.to_le_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 §2.8.2 (cross-checked against an independent Python
        // implementation).
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        let nonce_bytes = from_hex("070000004041424344454647");
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&nonce_bytes);
        let aad = from_hex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";

        let sealed = aenc(&key, &nonce, &aad, plaintext);
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(
            to_hex(ct),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116"
                .replace(' ', "")
        );
        assert_eq!(to_hex(tag), "1ae10b594f09e26a7e902ecbd0600691");

        let opened = adec(&key, &nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn roundtrip_various_sizes() {
        let key = [42u8; 32];
        let nonce = round_nonce(3, 0);
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 256, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let sealed = aenc(&key, &nonce, b"", &pt);
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(adec(&key, &nonce, b"", &sealed).unwrap(), pt);
        }
    }

    #[test]
    fn tamper_detection() {
        let key = [1u8; 32];
        let nonce = round_nonce(7, 1);
        let sealed = aenc(&key, &nonce, b"aad", b"secret message");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert!(adec(&key, &nonce, b"aad", &bad).is_none(), "byte {i}");
        }
    }

    #[test]
    fn wrong_key_fails() {
        let nonce = round_nonce(1, 0);
        let sealed = aenc(&[1u8; 32], &nonce, b"", b"hello");
        assert!(adec(&[2u8; 32], &nonce, b"", &sealed).is_none());
    }

    #[test]
    fn wrong_nonce_fails() {
        let key = [1u8; 32];
        let sealed = aenc(&key, &round_nonce(1, 0), b"", b"hello");
        assert!(adec(&key, &round_nonce(2, 0), b"", &sealed).is_none());
        assert!(adec(&key, &round_nonce(1, 1), b"", &sealed).is_none());
    }

    #[test]
    fn wrong_aad_fails() {
        let key = [1u8; 32];
        let nonce = round_nonce(1, 0);
        let sealed = aenc(&key, &nonce, b"round-1", b"hello");
        assert!(adec(&key, &nonce, b"round-2", &sealed).is_none());
    }

    #[test]
    fn too_short_input_rejected() {
        assert!(adec(&[0u8; 32], &round_nonce(0, 0), b"", &[0u8; 15]).is_none());
        assert!(adec(&[0u8; 32], &round_nonce(0, 0), b"", &[]).is_none());
    }

    #[test]
    fn round_nonce_is_injective_per_domain() {
        assert_ne!(round_nonce(1, 0), round_nonce(1, 1));
        assert_ne!(round_nonce(1, 0), round_nonce(2, 0));
    }
}
