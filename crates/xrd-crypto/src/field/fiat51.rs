//! The portable 5×51 radix-2^51 backend (the 64-bit "ref10"-style
//! representation).
//!
//! Elements are five 51-bit limbs kept weakly reduced (below ~2^52) so
//! that products never overflow 128-bit accumulators.  This backend is
//! pure integer arithmetic over `u64`/`u128` and compiles everywhere;
//! it is the fallback when the saturated [`super::sat64`] backend is
//! not selected (see `field/mod.rs` for the dispatch rules).

use crate::util::load_u64_le;

/// Mask selecting the low 51 bits of a `u64`.
const LOW_51_BIT_MASK: u64 = (1u64 << 51) - 1;

/// An element of GF(2^255 - 19), weakly reduced (limbs < 2^52).
#[derive(Clone, Copy, Debug)]
pub struct FieldElement(pub(crate) [u64; 5]);

/// Backend name for diagnostics and bench labels.
pub const BACKEND_NAME: &str = "fiat51";

/// `16 * p` in radix-2^51 limbs; added before subtraction to avoid
/// underflow while keeping the result congruent mod p.
const SIXTEEN_P: [u64; 5] = [
    36028797018963664, // 16 * (2^51 - 19)
    36028797018963952, // 16 * (2^51 - 1)
    36028797018963952,
    36028797018963952,
    36028797018963952,
];

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0, 0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0, 0]);

    /// Construct from a small integer.
    pub const fn from_u64(x: u64) -> FieldElement {
        // Splitting x across the first two limbs keeps the invariant even
        // for x close to u64::MAX.
        FieldElement([x & LOW_51_BIT_MASK, x >> 51, 0, 0, 0])
    }

    /// Parse 32 little-endian bytes as a field element, ignoring the top
    /// bit (matching the curve25519 convention).
    pub fn from_bytes(bytes: &[u8; 32]) -> FieldElement {
        FieldElement([
            load_u64_le(&bytes[0..8]) & LOW_51_BIT_MASK,
            (load_u64_le(&bytes[6..14]) >> 3) & LOW_51_BIT_MASK,
            (load_u64_le(&bytes[12..20]) >> 6) & LOW_51_BIT_MASK,
            (load_u64_le(&bytes[19..27]) >> 1) & LOW_51_BIT_MASK,
            (load_u64_le(&bytes[24..32]) >> 12) & LOW_51_BIT_MASK,
        ])
    }

    /// Fully reduce and serialize to 32 little-endian bytes.  The encoding
    /// is canonical: the value is reduced into [0, p).
    pub fn to_bytes(&self) -> [u8; 32] {
        // First carry-propagate so limbs fit in 51 bits (plus small excess).
        let mut limbs = Self::weak_reduce(self.0).0;

        // Compute q = floor((value + 19) / 2^255), i.e. q = 1 iff value >= p.
        let mut q = (limbs[0] + 19) >> 51;
        q = (limbs[1] + q) >> 51;
        q = (limbs[2] + q) >> 51;
        q = (limbs[3] + q) >> 51;
        q = (limbs[4] + q) >> 51;

        // Add 19*q, then mask to 255 bits: this subtracts p iff value >= p.
        limbs[0] += 19 * q;
        limbs[1] += limbs[0] >> 51;
        limbs[0] &= LOW_51_BIT_MASK;
        limbs[2] += limbs[1] >> 51;
        limbs[1] &= LOW_51_BIT_MASK;
        limbs[3] += limbs[2] >> 51;
        limbs[2] &= LOW_51_BIT_MASK;
        limbs[4] += limbs[3] >> 51;
        limbs[3] &= LOW_51_BIT_MASK;
        limbs[4] &= LOW_51_BIT_MASK;

        let mut out = [0u8; 32];
        out[0] = limbs[0] as u8;
        out[1] = (limbs[0] >> 8) as u8;
        out[2] = (limbs[0] >> 16) as u8;
        out[3] = (limbs[0] >> 24) as u8;
        out[4] = (limbs[0] >> 32) as u8;
        out[5] = (limbs[0] >> 40) as u8;
        out[6] = ((limbs[0] >> 48) | (limbs[1] << 3)) as u8;
        out[7] = (limbs[1] >> 5) as u8;
        out[8] = (limbs[1] >> 13) as u8;
        out[9] = (limbs[1] >> 21) as u8;
        out[10] = (limbs[1] >> 29) as u8;
        out[11] = (limbs[1] >> 37) as u8;
        out[12] = ((limbs[1] >> 45) | (limbs[2] << 6)) as u8;
        out[13] = (limbs[2] >> 2) as u8;
        out[14] = (limbs[2] >> 10) as u8;
        out[15] = (limbs[2] >> 18) as u8;
        out[16] = (limbs[2] >> 26) as u8;
        out[17] = (limbs[2] >> 34) as u8;
        out[18] = (limbs[2] >> 42) as u8;
        out[19] = ((limbs[2] >> 50) | (limbs[3] << 1)) as u8;
        out[20] = (limbs[3] >> 7) as u8;
        out[21] = (limbs[3] >> 15) as u8;
        out[22] = (limbs[3] >> 23) as u8;
        out[23] = (limbs[3] >> 31) as u8;
        out[24] = (limbs[3] >> 39) as u8;
        out[25] = ((limbs[3] >> 47) | (limbs[4] << 4)) as u8;
        out[26] = (limbs[4] >> 4) as u8;
        out[27] = (limbs[4] >> 12) as u8;
        out[28] = (limbs[4] >> 20) as u8;
        out[29] = (limbs[4] >> 28) as u8;
        out[30] = (limbs[4] >> 36) as u8;
        out[31] = (limbs[4] >> 44) as u8;
        out
    }

    /// Carry-propagate limbs back below 2^52 without full reduction mod p.
    #[inline(always)]
    fn weak_reduce(mut limbs: [u64; 5]) -> FieldElement {
        let c0 = limbs[0] >> 51;
        limbs[0] &= LOW_51_BIT_MASK;
        limbs[1] += c0;
        let c1 = limbs[1] >> 51;
        limbs[1] &= LOW_51_BIT_MASK;
        limbs[2] += c1;
        let c2 = limbs[2] >> 51;
        limbs[2] &= LOW_51_BIT_MASK;
        limbs[3] += c2;
        let c3 = limbs[3] >> 51;
        limbs[3] &= LOW_51_BIT_MASK;
        limbs[4] += c3;
        let c4 = limbs[4] >> 51;
        limbs[4] &= LOW_51_BIT_MASK;
        limbs[0] += c4 * 19;
        FieldElement(limbs)
    }

    /// Field addition.
    #[inline(always)]
    pub fn add(&self, rhs: &FieldElement) -> FieldElement {
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            limbs[i] = self.0[i] + rhs.0[i];
        }
        Self::weak_reduce(limbs)
    }

    /// Field subtraction.
    #[inline(always)]
    pub fn sub(&self, rhs: &FieldElement) -> FieldElement {
        // Add 16p so that per-limb subtraction never underflows.
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            limbs[i] = self.0[i] + SIXTEEN_P[i] - rhs.0[i];
        }
        Self::weak_reduce(limbs)
    }

    // -----------------------------------------------------------------
    // Lazy (non-reducing) additive ops for the point-arithmetic kernels.
    //
    // `mul`/`square` tolerate inputs with limbs up to 2^57 (products
    // stay under 2^121 across the five-term accumulators, and the
    // 19-fold premultiply stays under 2^62), so a bounded amount of
    // carry-postponement between multiplications is sound.  The rules,
    // checked by debug asserts:
    //
    //   * reduced values (mul/square/weak_reduce outputs) have limbs
    //     < 2^52;
    //   * `lazy_add` accepts limbs < 2^56 and yields limbs < 2^57 —
    //     mul-safe, NOT safe as a `lazy_sub` rhs;
    //   * `lazy_sub` accepts an rhs with limbs < 2^55 (it adds 16p
    //     before subtracting) and yields limbs < 2^56 given lhs limbs
    //     < 2^55.8 — mul-safe;
    //   * `lazy_sub_wide` accepts an rhs with limbs < 2^56.1 (it adds
    //     32p) for the one doubling step whose rhs is itself a
    //     `lazy_sub` output.
    //
    // These are pub(crate): every call site lives in `edwards.rs` where
    // the bounds are established structurally.  The sat64 backend's
    // lazy entry points reduce eagerly instead (its saturated limbs
    // have no spare bits to postpone carries into); see `field/mod.rs`.
    // -----------------------------------------------------------------

    /// Addition without carry propagation (see module rules above).
    #[inline(always)]
    #[allow(dead_code)] // unused when the other backend is selected
    pub(crate) fn lazy_add(&self, rhs: &FieldElement) -> FieldElement {
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            debug_assert!(self.0[i] < 1 << 56 && rhs.0[i] < 1 << 56);
            limbs[i] = self.0[i] + rhs.0[i];
        }
        FieldElement(limbs)
    }

    /// Subtraction (adding 16p first) without carry propagation; the
    /// rhs must have limbs below 16p's (< ~2^55).
    #[inline(always)]
    #[allow(dead_code)] // unused when the other backend is selected
    pub(crate) fn lazy_sub(&self, rhs: &FieldElement) -> FieldElement {
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            debug_assert!(rhs.0[i] <= SIXTEEN_P[i]);
            limbs[i] = self.0[i] + SIXTEEN_P[i] - rhs.0[i];
        }
        FieldElement(limbs)
    }

    /// Subtraction (adding 32p first) without carry propagation, for an
    /// rhs that is itself a `lazy_sub` output (limbs < 2^56.1).
    #[inline(always)]
    #[allow(dead_code)] // unused when the other backend is selected
    pub(crate) fn lazy_sub_wide(&self, rhs: &FieldElement) -> FieldElement {
        let mut limbs = [0u64; 5];
        for i in 0..5 {
            debug_assert!(rhs.0[i] <= 2 * SIXTEEN_P[i]);
            limbs[i] = self.0[i] + 2 * SIXTEEN_P[i] - rhs.0[i];
        }
        FieldElement(limbs)
    }

    /// Field multiplication.
    #[inline(always)]
    pub fn mul(&self, rhs: &FieldElement) -> FieldElement {
        #[inline(always)]
        fn m(a: u64, b: u64) -> u128 {
            (a as u128) * (b as u128)
        }
        let a = &self.0;
        let b = &rhs.0;

        // Precompute 19*b[i] (fits: b[i] < 2^52, 19*b[i] < 2^57).
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;

        let c0 = m(a[0], b[0]) + m(a[4], b1_19) + m(a[3], b2_19) + m(a[2], b3_19) + m(a[1], b4_19);
        let c1 = m(a[1], b[0]) + m(a[0], b[1]) + m(a[4], b2_19) + m(a[3], b3_19) + m(a[2], b4_19);
        let c2 = m(a[2], b[0]) + m(a[1], b[1]) + m(a[0], b[2]) + m(a[4], b3_19) + m(a[3], b4_19);
        let c3 = m(a[3], b[0]) + m(a[2], b[1]) + m(a[1], b[2]) + m(a[0], b[3]) + m(a[4], b4_19);
        let c4 = m(a[4], b[0]) + m(a[3], b[1]) + m(a[2], b[2]) + m(a[1], b[3]) + m(a[0], b[4]);

        Self::carry_wide([c0, c1, c2, c3, c4])
    }

    /// The wide (pre-carry) accumulators of a squaring.
    #[inline(always)]
    fn square_wide(&self) -> [u128; 5] {
        #[inline(always)]
        fn m(a: u64, b: u64) -> u128 {
            (a as u128) * (b as u128)
        }
        let a = &self.0;
        // Pre-double the u64 operands so the off-diagonal terms need no
        // 128-bit shifts (cheaper than doubling the wide accumulators).
        let a0_2 = a[0] * 2;
        let a1_2 = a[1] * 2;
        let a3_19 = a[3] * 19;
        let a4_19 = a[4] * 19;

        let c0 = m(a[0], a[0]) + m(a1_2, a4_19) + m(2 * a[2], a3_19);
        let c1 = m(a[3], a3_19) + m(a0_2, a[1]) + m(2 * a[2], a4_19);
        let c2 = m(a[1], a[1]) + m(a0_2, a[2]) + m(2 * a[4], a3_19);
        let c3 = m(a[4], a4_19) + m(a0_2, a[3]) + m(a1_2, a[2]);
        let c4 = m(a[2], a[2]) + m(a0_2, a[4]) + m(a1_2, a[3]);
        [c0, c1, c2, c3, c4]
    }

    /// Field squaring (slightly cheaper than `mul(self, self)`).
    #[inline(always)]
    pub fn square(&self) -> FieldElement {
        Self::carry_wide(self.square_wide())
    }

    /// `2 * self^2` in one carry pass: the accumulators are doubled
    /// before propagation (inputs with limbs < 2^57 keep the doubled
    /// accumulators under 2^122, well within `u128`).
    #[inline(always)]
    pub fn square2(&self) -> FieldElement {
        let mut c = self.square_wide();
        for limb in c.iter_mut() {
            *limb *= 2;
        }
        Self::carry_wide(c)
    }

    /// Constant-time-style select: returns `b` if `choice` is 1,
    /// else `a`.
    #[inline(always)]
    pub fn select(a: &FieldElement, b: &FieldElement, choice: u64) -> FieldElement {
        debug_assert!(choice == 0 || choice == 1);
        let mask = choice.wrapping_neg(); // 0 or all-ones
        let mut out = *a;
        for (o, l) in out.0.iter_mut().zip(b.0.iter()) {
            *o ^= mask & (*o ^ l);
        }
        out
    }

    /// All limbs ANDed with `mask` (masked table-scan seed; the mask
    /// is all-ones or all-zero).
    #[inline(always)]
    #[allow(dead_code)] // unused when the other backend is selected
    pub(crate) fn and_mask(&self, mask: u64) -> FieldElement {
        let mut out = *self;
        for l in out.0.iter_mut() {
            *l &= mask;
        }
        out
    }

    /// OR in `entry`'s limbs under `mask` (masked table-scan
    /// accumulation: exactly one all-ones mask contributes).
    #[inline(always)]
    #[allow(dead_code)] // unused when the other backend is selected
    pub(crate) fn or_assign_masked(&mut self, entry: &FieldElement, mask: u64) {
        for (l, e) in self.0.iter_mut().zip(entry.0.iter()) {
            *l |= e & mask;
        }
    }

    /// Carry-propagate a wide (u128-limb) product back to 51-bit limbs.
    /// The final 19-fold runs in 128 bits so that products of *lazy*
    /// (non-reduced, limbs < 2^57) operands stay sound: each input limb
    /// product is then < 2^121 and the top carry can exceed 64 bits.
    #[inline(always)]
    fn carry_wide(mut c: [u128; 5]) -> FieldElement {
        let mut out = [0u64; 5];
        c[1] += c[0] >> 51;
        c[2] += c[1] >> 51;
        out[1] = (c[1] as u64) & LOW_51_BIT_MASK;
        c[3] += c[2] >> 51;
        out[2] = (c[2] as u64) & LOW_51_BIT_MASK;
        c[4] += c[3] >> 51;
        out[3] = (c[3] as u64) & LOW_51_BIT_MASK;
        let carry = c[4] >> 51;
        out[4] = (c[4] as u64) & LOW_51_BIT_MASK;
        let c0 = ((c[0] as u64 & LOW_51_BIT_MASK) as u128) + carry * 19;
        out[0] = (c0 as u64) & LOW_51_BIT_MASK;
        out[1] += (c0 >> 51) as u64;
        FieldElement(out)
    }
}

crate::field::impl_field_shared!(FieldElement);
