//! Arithmetic in the field GF(2^255 - 19), the base field of Curve25519.
//!
//! This module is self-contained (no external crypto dependency) and
//! ships **two interchangeable limb representations** behind one public
//! type, [`FieldElement`]:
//!
//! | backend            | limbs | representation            | multiply kernel |
//! |--------------------|-------|---------------------------|-----------------|
//! | [`fiat51`]         | 5×51  | radix 2^51, weakly reduced | portable `u128` accumulators |
//! | [`sat64`]          | 4×64  | saturated, value < 2^256  | `mulx`+`adcx`/`adox` inline asm on x86-64 (BMI2+ADX), portable `u128` carry chains elsewhere |
//!
//! **Selection** happens at build time:
//!
//! * feature `force-field51` → the portable 5×51 backend, everywhere;
//! * feature `force-field64` → the 4×64 backend (its portable carry
//!   chains if the target lacks BMI2+ADX);
//! * default: 4×64 on x86-64 compiled with `bmi2`+`adx` target
//!   features (the workspace's `-C target-cpu=native` enables them on
//!   the reference host), 5×51 anywhere else.
//!
//! Both backends are *always compiled* — the feature only chooses which
//! one `FieldElement` aliases — so differential tests and benches can
//! drive the two representations against each other in a single build.
//!
//! ## Lazy-reduction contract
//!
//! The point-arithmetic pipeline in `edwards.rs` calls `lazy_add` /
//! `lazy_sub` / `lazy_sub_wide` between multiplications.  The *contract*
//! of these entry points is only "congruent mod p, and a valid input to
//! every field op"; whether reduction is actually postponed is a
//! per-backend optimization:
//!
//! * **fiat51** postpones carries (limbs may grow to 2^57, which its
//!   `mul`/`square` accumulators absorb); the exact bounds ride on the
//!   structure of the curve formulas and are documented and
//!   debug-asserted in `fiat51.rs`.
//! * **sat64** reduces eagerly: saturated limbs have no spare bits, and
//!   its add/sub are already a handful of ALU ops, so the lazy entry
//!   points simply forward to `add`/`sub` (see `sat64.rs`).
//!
//! Derived curve constants (sqrt(-1), Edwards d, the Ristretto magic
//! constants) are computed at first use from first principles rather
//! than transcribed, and validated by unit tests.

#[cfg(all(feature = "force-field51", feature = "force-field64"))]
compile_error!("features `force-field51` and `force-field64` are mutually exclusive");

/// Everything the two backends share — the exponentiation towers,
/// square-root machinery, batched inversion and constant-time helpers
/// are representation-independent (they only use the backend's core
/// ops plus canonical encodings), so they are stamped into each
/// backend module from this single definition.
macro_rules! impl_field_shared {
    ($fe:ident) => {
        impl $fe {
            /// Field negation.
            #[inline(always)]
            pub fn neg(&self) -> $fe {
                $fe::ZERO.sub(self)
            }

            /// Square `k` times: returns `self^(2^k)`.
            pub fn pow2k(&self, k: u32) -> $fe {
                debug_assert!(k > 0);
                let mut out = self.square();
                for _ in 1..k {
                    out = out.square();
                }
                out
            }

            /// Shared tower for inversion and `pow_p58`: returns
            /// `(self^(2^250 - 1), self^11)`.
            fn pow22501(&self) -> ($fe, $fe) {
                let t0 = self.square(); // 2
                let t1 = t0.square().square(); // 8
                let t2 = self.mul(&t1); // 9
                let t3 = t0.mul(&t2); // 11
                let t4 = t3.square(); // 22
                let t5 = t2.mul(&t4); // 2^5 - 1
                let t6 = t5.pow2k(5); // 2^10 - 2^5
                let t7 = t6.mul(&t5); // 2^10 - 1
                let t8 = t7.pow2k(10); // 2^20 - 2^10
                let t9 = t8.mul(&t7); // 2^20 - 1
                let t10 = t9.pow2k(20); // 2^40 - 2^20
                let t11 = t10.mul(&t9); // 2^40 - 1
                let t12 = t11.pow2k(10); // 2^50 - 2^10
                let t13 = t12.mul(&t7); // 2^50 - 1
                let t14 = t13.pow2k(50); // 2^100 - 2^50
                let t15 = t14.mul(&t13); // 2^100 - 1
                let t16 = t15.pow2k(100); // 2^200 - 2^100
                let t17 = t16.mul(&t15); // 2^200 - 1
                let t18 = t17.pow2k(50); // 2^250 - 2^50
                let t19 = t18.mul(&t13); // 2^250 - 1
                (t19, t3)
            }

            /// Multiplicative inverse: `self^(p-2)`.  Returns zero for zero.
            pub fn invert(&self) -> $fe {
                let (t19, t3) = self.pow22501();
                let t20 = t19.pow2k(5); // 2^255 - 2^5
                t20.mul(&t3) // 2^255 - 21 = p - 2
            }

            /// `self^((p-5)/8) = self^(2^252 - 3)`, used by `sqrt_ratio_i`.
            fn pow_p58(&self) -> $fe {
                let (t19, _) = self.pow22501();
                let t20 = t19.pow2k(2); // 2^252 - 4
                self.mul(&t20) // 2^252 - 3
            }

            /// Generic (variable-time) exponentiation by a 256-bit
            /// little-endian exponent.  Only used to derive public
            /// constants; never on secrets.
            pub fn pow_vartime(&self, exp_le: &[u8; 32]) -> $fe {
                let mut result = $fe::ONE;
                for byte in exp_le.iter().rev() {
                    for bit in (0..8).rev() {
                        result = result.square();
                        if (byte >> bit) & 1 == 1 {
                            result = result.mul(self);
                        }
                    }
                }
                result
            }

            /// True iff the canonical encoding's low bit is set (the
            /// "negative" convention used by Ristretto).
            pub fn is_negative(&self) -> bool {
                self.to_bytes()[0] & 1 == 1
            }

            /// True iff this element is zero.
            pub fn is_zero(&self) -> bool {
                self.to_bytes() == [0u8; 32]
            }

            /// Negate iff `choice` is 1.
            #[inline(always)]
            pub fn conditional_negate(&self, choice: u64) -> $fe {
                Self::select(self, &self.neg(), choice)
            }

            /// Absolute value: negate iff negative.
            pub fn abs(&self) -> $fe {
                self.conditional_negate(self.is_negative() as u64)
            }

            /// Equality via canonical encodings.
            pub fn ct_eq(&self, other: &$fe) -> bool {
                crate::util::ct_bytes_eq(&self.to_bytes(), &other.to_bytes())
            }

            /// sqrt(-1) mod p, derived as `|2^((p-1)/4)|` (2 is a
            /// non-residue since p = 5 mod 8, so the square of this is
            /// -1).  The draft-irtf ristretto255 constant is the
            /// non-negative root, hence `abs`.
            pub fn sqrt_m1() -> &'static $fe {
                use std::sync::OnceLock;
                static SQRT_M1: OnceLock<$fe> = OnceLock::new();
                SQRT_M1.get_or_init(|| {
                    // exponent = (p-1)/4 = 2^253 - 5
                    let mut exp = [0xffu8; 32];
                    exp[0] = 0xfb; // 2^253 - 5 = ...fb in the lowest byte
                    exp[31] = 0x1f; // top byte: 2^253 -> 0x1f...
                    let two = $fe::from_u64(2);
                    two.pow_vartime(&exp).abs()
                })
            }

            /// Computes `sqrt(u/v)` in the Ristretto convention.
            ///
            /// Returns `(was_square, r)` where:
            /// - if `u/v` is square, `was_square = true` and
            ///   `r = +sqrt(u/v)`;
            /// - if `u/v` is non-square, `was_square = false` and
            ///   `r = +sqrt(i*u/v)` (where `i = sqrt(-1)`);
            /// - if `u = 0`, returns `(true, 0)`; if `v = 0` (and
            ///   `u != 0`), returns `(false, 0)`.
            ///
            /// `r` is always non-negative.
            pub fn sqrt_ratio_i(u: &$fe, v: &$fe) -> (bool, $fe) {
                let v3 = v.square().mul(v);
                let v7 = v3.square().mul(v);
                let mut r = u.mul(&v3).mul(&u.mul(&v7).pow_p58());
                let check = v.mul(&r.square());

                let i = Self::sqrt_m1();
                let correct_sign = check.ct_eq(u);
                let flipped_sign = check.ct_eq(&u.neg());
                let flipped_sign_i = check.ct_eq(&u.neg().mul(i));

                let r_prime = i.mul(&r);
                r = Self::select(&r, &r_prime, (flipped_sign || flipped_sign_i) as u64);
                r = r.abs();

                (correct_sign || flipped_sign, r)
            }

            /// Montgomery batch inversion: invert every element of
            /// `elements` in place using a single field inversion plus
            /// `3n` multiplications (instead of `n` inversions).
            ///
            /// Zeros are left as zeros (matching `invert`).  The
            /// zero-masking uses constant-time selects, but callers on
            /// the XRD hot paths only ever pass public data (projective
            /// `Z` coordinates of wire-visible points, encoding
            /// denominators).
            pub fn batch_invert(elements: &mut [$fe]) {
                if elements.is_empty() {
                    return;
                }
                // Replace zeros by one so the running product stays
                // invertible; remember where they were to restore them
                // at the end.
                let zero_mask: Vec<u64> = elements.iter().map(|e| e.is_zero() as u64).collect();
                // prefix[i] = product of (masked) elements[0..=i]
                let mut prefix = Vec::with_capacity(elements.len());
                let mut acc = $fe::ONE;
                for (e, &z) in elements.iter().zip(&zero_mask) {
                    let masked = $fe::select(e, &$fe::ONE, z);
                    acc = acc.mul(&masked);
                    prefix.push(acc);
                }
                // One inversion of the total product...
                let mut inv = acc.invert();
                // ...then walk backwards peeling one element per step.
                for i in (0..elements.len()).rev() {
                    let masked = $fe::select(&elements[i], &$fe::ONE, zero_mask[i]);
                    let this_inv = if i == 0 { inv } else { prefix[i - 1].mul(&inv) };
                    inv = inv.mul(&masked);
                    elements[i] = $fe::select(&this_inv, &$fe::ZERO, zero_mask[i]);
                }
            }

            /// `1/sqrt(self)` (Ristretto convention; see `sqrt_ratio_i`).
            pub fn invsqrt(&self) -> (bool, $fe) {
                Self::sqrt_ratio_i(&$fe::ONE, self)
            }
        }

        impl PartialEq for $fe {
            fn eq(&self, other: &Self) -> bool {
                self.ct_eq(other)
            }
        }
        impl Eq for $fe {}

        impl crate::field::FieldBackend for $fe {
            const ZERO: Self = $fe::ZERO;
            const ONE: Self = $fe::ONE;
            fn from_u64(x: u64) -> Self {
                $fe::from_u64(x)
            }
            fn from_bytes(bytes: &[u8; 32]) -> Self {
                $fe::from_bytes(bytes)
            }
            fn to_bytes(&self) -> [u8; 32] {
                $fe::to_bytes(self)
            }
            fn add(&self, rhs: &Self) -> Self {
                $fe::add(self, rhs)
            }
            fn sub(&self, rhs: &Self) -> Self {
                $fe::sub(self, rhs)
            }
            fn neg(&self) -> Self {
                $fe::neg(self)
            }
            fn mul(&self, rhs: &Self) -> Self {
                $fe::mul(self, rhs)
            }
            fn square(&self) -> Self {
                $fe::square(self)
            }
            fn square2(&self) -> Self {
                $fe::square2(self)
            }
            fn lazy_add(&self, rhs: &Self) -> Self {
                $fe::lazy_add(self, rhs)
            }
            fn lazy_sub(&self, rhs: &Self) -> Self {
                $fe::lazy_sub(self, rhs)
            }
            fn lazy_sub_wide(&self, rhs: &Self) -> Self {
                $fe::lazy_sub_wide(self, rhs)
            }
            fn select(a: &Self, b: &Self, choice: u64) -> Self {
                $fe::select(a, b, choice)
            }
            fn and_mask(&self, mask: u64) -> Self {
                $fe::and_mask(self, mask)
            }
            fn or_assign_masked(&mut self, entry: &Self, mask: u64) {
                $fe::or_assign_masked(self, entry, mask)
            }
            fn conditional_negate(&self, choice: u64) -> Self {
                $fe::conditional_negate(self, choice)
            }
            fn abs(&self) -> Self {
                $fe::abs(self)
            }
            fn is_negative(&self) -> bool {
                $fe::is_negative(self)
            }
            fn is_zero(&self) -> bool {
                $fe::is_zero(self)
            }
            fn ct_eq(&self, other: &Self) -> bool {
                $fe::ct_eq(self, other)
            }
            fn invert(&self) -> Self {
                $fe::invert(self)
            }
            fn batch_invert(elements: &mut [Self]) {
                $fe::batch_invert(elements)
            }
            fn sqrt_ratio_i(u: &Self, v: &Self) -> (bool, Self) {
                $fe::sqrt_ratio_i(u, v)
            }
            fn invsqrt(&self) -> (bool, Self) {
                $fe::invsqrt(self)
            }
            fn sqrt_m1() -> &'static Self {
                $fe::sqrt_m1()
            }
            fn edwards_d() -> &'static Self {
                use std::sync::OnceLock;
                static D: OnceLock<$fe> = OnceLock::new();
                D.get_or_init(|| {
                    $fe::from_u64(121665)
                        .neg()
                        .mul(&$fe::from_u64(121666).invert())
                })
            }
            fn edwards_d2() -> &'static Self {
                use std::sync::OnceLock;
                static D2: OnceLock<$fe> = OnceLock::new();
                D2.get_or_init(|| {
                    let d = <$fe as crate::field::FieldBackend>::edwards_d();
                    d.add(d)
                })
            }
        }
    };
}
pub(crate) use impl_field_shared;

/// Seals [`FieldBackend`]: the point pipeline's invariants (the
/// lazy-reduction bounds among them) are only audited for the two
/// in-crate backends, so no foreign type may implement the trait.
mod sealed {
    pub trait Sealed {}
    impl Sealed for super::fiat51::FieldElement {}
    impl Sealed for super::sat64::FieldElement {}
}

/// The field interface the generic point pipeline (`edwards.rs`) is
/// written against.  Both backends implement it (via
/// `impl_field_shared!`, which delegates to the inherent methods), so
/// point arithmetic — and therefore the hop kernel — can be
/// instantiated over *either* representation in the same build; the
/// cross-backend benches and differential tests rely on exactly that.
/// Outside of those harnesses, use the [`FieldElement`] alias and its
/// inherent methods.
///
/// The `lazy_*` and masked-scan methods are doc-hidden: they carry
/// per-backend contracts (see the module docs — on the 5×51 backend a
/// chain of lazy ops that exceeds the documented limb bounds silently
/// corrupts later multiplications in release builds) and their only
/// sound call sites are the curve formulas in `edwards.rs`, where the
/// bounds are established structurally and debug-asserted.
#[allow(missing_docs)] // mirror of the documented inherent methods
pub trait FieldBackend:
    sealed::Sealed + Copy + Clone + std::fmt::Debug + PartialEq + Eq + Send + Sync + 'static
{
    const ZERO: Self;
    const ONE: Self;
    fn from_u64(x: u64) -> Self;
    fn from_bytes(bytes: &[u8; 32]) -> Self;
    fn to_bytes(&self) -> [u8; 32];
    fn add(&self, rhs: &Self) -> Self;
    fn sub(&self, rhs: &Self) -> Self;
    fn neg(&self) -> Self;
    fn mul(&self, rhs: &Self) -> Self;
    fn square(&self) -> Self;
    fn square2(&self) -> Self;
    #[doc(hidden)]
    fn lazy_add(&self, rhs: &Self) -> Self;
    #[doc(hidden)]
    fn lazy_sub(&self, rhs: &Self) -> Self;
    #[doc(hidden)]
    fn lazy_sub_wide(&self, rhs: &Self) -> Self;
    fn select(a: &Self, b: &Self, choice: u64) -> Self;
    #[doc(hidden)]
    fn and_mask(&self, mask: u64) -> Self;
    #[doc(hidden)]
    fn or_assign_masked(&mut self, entry: &Self, mask: u64);
    fn conditional_negate(&self, choice: u64) -> Self;
    fn abs(&self) -> Self;
    fn is_negative(&self) -> bool;
    fn is_zero(&self) -> bool;
    fn ct_eq(&self, other: &Self) -> bool;
    fn invert(&self) -> Self;
    fn batch_invert(elements: &mut [Self]);
    fn sqrt_ratio_i(u: &Self, v: &Self) -> (bool, Self);
    fn invsqrt(&self) -> (bool, Self);
    /// sqrt(-1) mod p (per-backend cached static).
    fn sqrt_m1() -> &'static Self;
    /// The curve constant `d = -121665/121666` (per-backend cached).
    fn edwards_d() -> &'static Self;
    /// `2 * d` (per-backend cached).
    fn edwards_d2() -> &'static Self;
}

pub mod fiat51;
pub mod sat64;

/// True when this build selects the portable 5×51 backend.
#[cfg(any(
    feature = "force-field51",
    all(
        not(feature = "force-field64"),
        not(all(
            target_arch = "x86_64",
            target_feature = "bmi2",
            target_feature = "adx"
        ))
    )
))]
pub use fiat51::{FieldElement, BACKEND_NAME as FIELD_BACKEND};

/// True when this build selects the 4×64 saturated backend.
#[cfg(not(any(
    feature = "force-field51",
    all(
        not(feature = "force-field64"),
        not(all(
            target_arch = "x86_64",
            target_feature = "bmi2",
            target_feature = "adx"
        ))
    )
)))]
pub use sat64::{FieldElement, BACKEND_NAME as FIELD_BACKEND};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    fn fe(n: u64) -> FieldElement {
        FieldElement::from_u64(n)
    }

    #[test]
    fn one_plus_one() {
        assert_eq!(fe(1).add(&fe(1)), fe(2));
    }

    #[test]
    fn sub_wraps_mod_p() {
        // 0 - 1 = p - 1
        let p_minus_1 = fe(0).sub(&fe(1));
        // p - 1 = 2^255 - 20: little-endian bytes ec ff .. ff 7f
        let mut expect = [0xffu8; 32];
        expect[0] = 0xec;
        expect[31] = 0x7f;
        assert_eq!(p_minus_1.to_bytes(), expect);
    }

    #[test]
    fn to_bytes_is_canonical_for_p() {
        // p itself must encode as zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let p = FieldElement::from_bytes(&p_bytes);
        assert_eq!(p.to_bytes(), [0u8; 32]);
        assert!(p.is_zero());
    }

    #[test]
    fn mul_small() {
        assert_eq!(fe(3).mul(&fe(7)), fe(21));
        assert_eq!(fe(0).mul(&fe(7)), fe(0));
    }

    #[test]
    fn mul_matches_square() {
        let x = fe(0xdead_beef_cafe);
        assert_eq!(x.mul(&x), x.square());
    }

    #[test]
    fn square2_is_twice_square() {
        let x = fe(0x1234_5678_9abc_def0);
        assert_eq!(x.square2(), x.square().add(&x.square()));
    }

    #[test]
    fn invert_roundtrip() {
        let x = fe(1234567);
        let xinv = x.invert();
        assert_eq!(x.mul(&xinv), FieldElement::ONE);
    }

    #[test]
    fn invert_zero_is_zero() {
        assert_eq!(FieldElement::ZERO.invert(), FieldElement::ZERO);
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = FieldElement::sqrt_m1();
        assert_eq!(i.square(), FieldElement::ONE.neg());
        assert!(!i.is_negative());
    }

    #[test]
    fn sqrt_m1_matches_rfc_draft_value() {
        // draft-irtf-cfrg-ristretto255-decaf448: SQRT_M1 =
        // 19681161376707505956807079304988542015446066515923890162744021073123829784752
        // little-endian hex:
        let expect = from_hex("b0a00e4a271beec478e42fad0618432fa7d7fb3d99004d2b0bdfc14f8024832b");
        assert_eq!(to_hex(&FieldElement::sqrt_m1().to_bytes()), to_hex(&expect));
    }

    #[test]
    fn sqrt_ratio_of_square() {
        let u = fe(4);
        let v = fe(1);
        let (ok, r) = FieldElement::sqrt_ratio_i(&u, &v);
        assert!(ok);
        assert_eq!(r.square(), u);
        assert!(!r.is_negative());
    }

    #[test]
    fn sqrt_ratio_zero_u() {
        let (ok, r) = FieldElement::sqrt_ratio_i(&FieldElement::ZERO, &fe(7));
        assert!(ok);
        assert!(r.is_zero());
    }

    #[test]
    fn sqrt_ratio_zero_v() {
        let (ok, r) = FieldElement::sqrt_ratio_i(&fe(7), &FieldElement::ZERO);
        assert!(!ok);
        assert!(r.is_zero());
    }

    #[test]
    fn sqrt_ratio_nonsquare() {
        // 2 is a non-residue mod p (p = 5 mod 8), so sqrt_ratio(2, 1) must
        // report non-square and return sqrt(2*i).
        let (ok, r) = FieldElement::sqrt_ratio_i(&fe(2), &FieldElement::ONE);
        assert!(!ok);
        let i = FieldElement::sqrt_m1();
        assert_eq!(r.square(), fe(2).mul(i));
    }

    #[test]
    fn abs_is_non_negative() {
        let x = fe(0).sub(&fe(5));
        assert!(!x.abs().is_negative());
        // abs(-x) * abs(-x) = x^2
        assert_eq!(x.abs().square(), x.square());
    }

    #[test]
    fn select_picks_correctly() {
        let a = fe(1);
        let b = fe(2);
        assert_eq!(FieldElement::select(&a, &b, 0), a);
        assert_eq!(FieldElement::select(&a, &b, 1), b);
    }

    #[test]
    fn from_bytes_ignores_top_bit() {
        let mut b = [0u8; 32];
        b[31] = 0x80;
        assert!(FieldElement::from_bytes(&b).is_zero());
    }

    #[test]
    fn distributivity_spot_check() {
        let a = fe(0x1234_5678_9abc);
        let b = fe(0xfedc_ba98);
        let c = fe(0x1111_2222_3333);
        let left = a.mul(&b.add(&c));
        let right = a.mul(&b).add(&a.mul(&c));
        assert_eq!(left, right);
    }
}
