//! The 4×64 saturated-limb backend.
//!
//! Elements are four full-width 64-bit limbs; the representation
//! invariant is simply *value < 2^256* (any bit pattern is a valid
//! input to every op).  Arithmetic works mod `2^256 - 38 = 2p`: every
//! carry or borrow out of the top limb folds back as `±38` into limb 0
//! (`2^256 ≡ 38 (mod p)`), and only `to_bytes` performs the final
//! canonical reduction into `[0, p)`.
//!
//! Two multiply kernels coexist:
//!
//! * an inline-`asm!` kernel for x86-64 with BMI2+ADX (`mulx` full
//!   64×64 multiplies, `adcx`/`adox` dual carry chains — the
//!   saturated representation exists to exploit exactly these
//!   instructions), selected when those target features are enabled
//!   at compile time (`-C target-cpu=native` on the reference host);
//! * a portable `u128` carry-chain path everywhere else, which also
//!   serves as the differential-testing reference for the asm.
//!
//! Unlike the 5×51 backend there are no spare bits to postpone carries
//! into, so the `lazy_*` entry points reduce eagerly — additions here
//! are cheap (4 adds + a 38-fold) and the point formulas in
//! `edwards.rs` remain correct under strict reduction (lazy reduction
//! is an optimization contract, not a semantic one; see
//! `field/mod.rs`).

use crate::util::load_u64_le;

/// An element of GF(2^255 - 19) as four saturated 64-bit limbs
/// (little-endian limb order), reduced only mod `2^256 - 38`.
#[derive(Clone, Copy, Debug)]
pub struct FieldElement(pub(crate) [u64; 4]);

/// Backend name for diagnostics and bench labels.
pub const BACKEND_NAME: &str = "sat64";

/// Mask clearing bit 255 (the top bit of limb 3).
const TOP_BIT_CLEAR: u64 = (1u64 << 63) - 1;

/// Fold a carry out of limb 3 back into the value: `value + carry*2^256
/// ≡ value + 38*carry (mod p)`.  A second wrap is only possible when
/// the pre-fold value was within `38*carry` of `2^256`; limb 0 is then
/// tiny, so the final 38-add cannot carry again.
#[inline(always)]
fn fold_carry(mut l: [u64; 4], carry: u64) -> [u64; 4] {
    let mut acc = (l[0] as u128) + (carry as u128) * 38;
    l[0] = acc as u64;
    acc >>= 64;
    for i in 1..4 {
        acc += l[i] as u128;
        l[i] = acc as u64;
        acc >>= 64;
    }
    l[0] = l[0].wrapping_add(38 * (acc as u64));
    l
}

/// Reduce a 512-bit product to four limbs: `lo + 38*hi` (since `2^256
/// ≡ 38`), then fold the small remaining carry.
#[inline(always)]
fn reduce512(t: [u64; 8]) -> [u64; 4] {
    let mut l = [0u64; 4];
    let mut acc: u128 = 0;
    for i in 0..4 {
        acc += (t[i] as u128) + 38u128 * (t[i + 4] as u128);
        l[i] = acc as u64;
        acc >>= 64;
    }
    // acc ≤ 38 here; fold_carry's second-wrap argument still holds
    // because the first fold adds at most 38*38 = 1444.
    fold_carry(l, acc as u64)
}

/// Portable 4×4 schoolbook multiply into a 512-bit product, then a
/// 38-fold reduction.  `u128` accumulation: `t + a*b + carry` peaks at
/// exactly `2^128 - 1`, so the chain never overflows.
#[inline(always)]
fn mul_portable(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut t = [0u64; 8];
    for i in 0..4 {
        let mut carry: u128 = 0;
        for j in 0..4 {
            let acc = (t[i + j] as u128) + (a[i] as u128) * (b[j] as u128) + carry;
            t[i + j] = acc as u64;
            carry = acc >> 64;
        }
        t[i + 4] = carry as u64;
    }
    reduce512(t)
}

/// x86-64 BMI2+ADX kernels: `mulx` for full 64×64→128 products with
/// untouched flags, `adcx`/`adox` for two independent carry chains per
/// row.  The 512-bit product never touches memory — it lives in eight
/// registers and is folded mod `2^256 - 38` in place.
///
/// Correctness of the tails: after folding `hi*38` the remaining top
/// word is < 39, so `imul`-folding it adds < 1482; if *that* carries
/// out of limb 3 the value wrapped mod 2^256, limb 0 is < 1482, and
/// the final masked 38-add (`sbb/and/add`) cannot carry.  The asm is
/// differentially tested against the portable path (unit test below
/// and `tests/field_backends.rs`).
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "bmi2",
    target_feature = "adx"
))]
mod asm {
    /// Addition with the carry folded back as +38, twice (the second
    /// fold's `sbb/and` masks 38 in only on the rare second wrap).
    /// One flags chain end to end — the compiler's portable version
    /// materializes every carry through `setb`/`movzbl` breaks.
    #[inline(always)]
    pub fn add(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
        let (mut l0, mut l1, mut l2, mut l3) = (a[0], a[1], a[2], a[3]);
        // SAFETY: register-only (nomem), all clobbers declared.
        unsafe {
            core::arch::asm!(
                "add {l0}, {r0}",
                "adc {l1}, {r1}",
                "adc {l2}, {r2}",
                "adc {l3}, {r3}",
                "sbb {t}, {t}",
                "and {t}, 38",
                "add {l0}, {t}",
                "adc {l1}, 0",
                "adc {l2}, 0",
                "adc {l3}, 0",
                "sbb {t}, {t}",
                "and {t}, 38",
                "add {l0}, {t}",
                l0 = inout(reg) l0,
                l1 = inout(reg) l1,
                l2 = inout(reg) l2,
                l3 = inout(reg) l3,
                r0 = in(reg) b[0],
                r1 = in(reg) b[1],
                r2 = in(reg) b[2],
                r3 = in(reg) b[3],
                t = out(reg) _,
                options(pure, nomem, nostack),
            );
        }
        [l0, l1, l2, l3]
    }

    /// Subtraction with the borrow folded back as -38, twice.
    #[inline(always)]
    pub fn sub(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
        let (mut l0, mut l1, mut l2, mut l3) = (a[0], a[1], a[2], a[3]);
        // SAFETY: register-only (nomem), all clobbers declared.
        unsafe {
            core::arch::asm!(
                "sub {l0}, {r0}",
                "sbb {l1}, {r1}",
                "sbb {l2}, {r2}",
                "sbb {l3}, {r3}",
                "sbb {t}, {t}",
                "and {t}, 38",
                "sub {l0}, {t}",
                "sbb {l1}, 0",
                "sbb {l2}, 0",
                "sbb {l3}, 0",
                "sbb {t}, {t}",
                "and {t}, 38",
                "sub {l0}, {t}",
                l0 = inout(reg) l0,
                l1 = inout(reg) l1,
                l2 = inout(reg) l2,
                l3 = inout(reg) l3,
                r0 = in(reg) b[0],
                r1 = in(reg) b[1],
                r2 = in(reg) b[2],
                r3 = in(reg) b[3],
                t = out(reg) _,
                options(pure, nomem, nostack),
            );
        }
        [l0, l1, l2, l3]
    }

    /// 4×4 multiply, reduced mod 2^256 - 38.
    ///
    /// Every limb travels **by value in registers** — no loads, no
    /// stores (`options(nomem)`), so back-to-back field ops chain
    /// register-to-register instead of paying a stack spill plus
    /// store-to-load forward on every call (measured ~25% of the op
    /// cost on the reference host).  x86-64 gives `asm!` 13 general
    /// registers plus the fixed `rdx` that `mulx` reads; the 16
    /// products plus 8 accumulators don't fit in one block, so the
    /// kernel is two blocks (rows 0–2, then row 3 + reduction) and the
    /// register allocator bridges them.  (A single-block variant that
    /// parks the over-budget limb in an XMM register measured *slower*
    /// — the `movq` round trip sits on the critical path.)  Within a
    /// block, registers are recycled as values die: each row's `b`
    /// limb moves into `rdx` and its register is re-zeroed (`xor`,
    /// which also clears CF/OF for the row's `adcx`/`adox` chains) as
    /// the row's new top accumulator, and `a0`'s register becomes the
    /// 512-bit product's top limb once row 3 has consumed it.
    #[inline(always)]
    pub fn mul(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
        let (mut c0, mut c1, mut c2, mut c3): (u64, u64, u64, u64);
        let (mut c4, mut c5, mut c6): (u64, u64, u64);
        // SAFETY: register-only (nomem), all clobbers declared.
        unsafe {
            // rows 0..2: c0..c6 = a * (b0 + b1*2^64 + b2*2^128)
            core::arch::asm!(
                // row 0: single carry chain, b0 in rdx
                "mulx {c1}, {c0}, {a0}",
                "mulx {c2}, {t0}, {a1}",
                "add {c1}, {t0}",
                "mulx {c3}, {t0}, {a2}",
                "adc {c2}, {t0}",
                "mulx {c4}, {t0}, {a3}",
                "adc {c3}, {t0}",
                "adc {c4}, 0",
                // row 1: b1 -> rdx; its register becomes c5 (xor also
                // clears CF+OF for the dual adcx/adox chains)
                "mov rdx, {b1c5}",
                "xor {b1c5:e}, {b1c5:e}",
                "mulx {hi}, {t0}, {a0}",
                "adox {c1}, {t0}",
                "adcx {c2}, {hi}",
                "mulx {hi}, {t0}, {a1}",
                "adox {c2}, {t0}",
                "adcx {c3}, {hi}",
                "mulx {hi}, {t0}, {a2}",
                "adox {c3}, {t0}",
                "adcx {c4}, {hi}",
                "mulx {hi}, {t0}, {a3}",
                "adox {c4}, {t0}",
                "adcx {b1c5}, {hi}",
                "mov {t0:e}, 0",
                "adox {b1c5}, {t0}",
                // row 2: b2 -> rdx; its register becomes c6
                "mov rdx, {b2c6}",
                "xor {b2c6:e}, {b2c6:e}",
                "mulx {hi}, {t0}, {a0}",
                "adox {c2}, {t0}",
                "adcx {c3}, {hi}",
                "mulx {hi}, {t0}, {a1}",
                "adox {c3}, {t0}",
                "adcx {c4}, {hi}",
                "mulx {hi}, {t0}, {a2}",
                "adox {c4}, {t0}",
                "adcx {b1c5}, {hi}",
                "mulx {hi}, {t0}, {a3}",
                "adox {b1c5}, {t0}",
                "adcx {b2c6}, {hi}",
                "mov {t0:e}, 0",
                "adox {b2c6}, {t0}",
                inout("rdx") b[0] => _,
                a0 = in(reg) a[0],
                a1 = in(reg) a[1],
                a2 = in(reg) a[2],
                a3 = in(reg) a[3],
                b1c5 = inout(reg) b[1] => c5,
                b2c6 = inout(reg) b[2] => c6,
                c0 = out(reg) c0,
                c1 = out(reg) c1,
                c2 = out(reg) c2,
                c3 = out(reg) c3,
                c4 = out(reg) c4,
                t0 = out(reg) _,
                hi = out(reg) _,
                options(pure, nomem, nostack),
            );
            // row 3 + reduction mod 2^256 - 38
            core::arch::asm!(
                // row 3: b3 in rdx; after its first product a0 is dead
                // and its register is re-zeroed as the top limb c7
                "mulx {hi}, {t0}, {a0c7}",
                "xor {a0c7:e}, {a0c7:e}",
                "adox {c3}, {t0}",
                "adcx {c4}, {hi}",
                "mulx {hi}, {t0}, {a1}",
                "adox {c4}, {t0}",
                "adcx {c5}, {hi}",
                "mulx {hi}, {t0}, {a2}",
                "adox {c5}, {t0}",
                "adcx {c6}, {hi}",
                "mulx {hi}, {t0}, {a3}",
                "adox {c6}, {t0}",
                "adcx {a0c7}, {hi}",
                "mov {t0:e}, 0",
                "adox {a0c7}, {t0}",
                // reduce: c0..c3 += 38 * c4..c7
                "mov rdx, 38",
                "xor {t0:e}, {t0:e}",
                "mulx {hi}, {t0}, {c4}",
                "mov {c4:e}, 0",
                "adox {c0}, {t0}",
                "adcx {c1}, {hi}",
                "mulx {hi}, {t0}, {c5}",
                "adox {c1}, {t0}",
                "adcx {c2}, {hi}",
                "mulx {hi}, {t0}, {c6}",
                "adox {c2}, {t0}",
                "adcx {c3}, {hi}",
                "mulx {hi}, {t0}, {a0c7}",
                "adox {c3}, {t0}",
                "adcx {c4}, {hi}",
                "mov {t0:e}, 0",
                "adox {c4}, {t0}",
                // fold the <39 top word, then the final masked 38.
                "imul rdx, {c4}",
                "add {c0}, rdx",
                "adc {c1}, 0",
                "adc {c2}, 0",
                "adc {c3}, 0",
                "sbb rdx, rdx",
                "and rdx, 38",
                "add {c0}, rdx",
                inout("rdx") b[3] => _,
                a0c7 = inout(reg) a[0] => _,
                a1 = in(reg) a[1],
                a2 = in(reg) a[2],
                a3 = in(reg) a[3],
                c0 = inout(reg) c0,
                c1 = inout(reg) c1,
                c2 = inout(reg) c2,
                c3 = inout(reg) c3,
                c4 = inout(reg) c4 => _,
                c5 = inout(reg) c5 => _,
                c6 = inout(reg) c6 => _,
                t0 = out(reg) _,
                hi = out(reg) _,
                options(pure, nomem, nostack),
            );
        }
        [c0, c1, c2, c3]
    }

    /// Dedicated squaring: 10 `mulx` instead of 16 — cross products
    /// once, then the doubling rides the CF (`adcx`) chain while the
    /// diagonals `a_i^2` ride the OF (`adox`) chain, so the two serial
    /// passes retire concurrently instead of back to back.  Same
    /// register-only, two-block structure as [`mul`].
    #[inline(always)]
    pub fn square(a: &[u64; 4]) -> [u64; 4] {
        let (mut c0, mut c1, mut c2, mut c3): (u64, u64, u64, u64);
        let (mut c4, mut c5, mut c6): (u64, u64, u64);
        // SAFETY: register-only (nomem), all clobbers declared.
        unsafe {
            // cross products (a0 in rdx)
            core::arch::asm!(
                "mulx {c2}, {c1}, {a1}", // a0a1 -> cols 1,2
                "mulx {c3}, {t0}, {a2}", // a0a2 -> cols 2,3
                "add {c2}, {t0}",
                "mulx {c4}, {t0}, {a3}", // a0a3 -> cols 3,4
                "adc {c3}, {t0}",
                "mov rdx, {a1}",
                "mulx {c5}, {t0}, {a3}", // a1a3 -> cols 4,5
                "adc {c4}, {t0}",
                "adc {c5}, 0",
                "mov rdx, {a2}",
                "mulx {hi}, {t0}, {a1}", // a1a2 -> cols 3,4
                "mulx {c6}, {c0}, {a3}", // a2a3 -> cols 5,6 (lo via c0)
                "add {c3}, {t0}",
                "adc {c4}, {hi}",
                "adc {c5}, {c0}",
                "adc {c6}, 0",
                inout("rdx") a[0] => _,
                a1 = in(reg) a[1],
                a2 = in(reg) a[2],
                a3 = in(reg) a[3],
                c0 = out(reg) _,
                c1 = out(reg) c1,
                c2 = out(reg) c2,
                c3 = out(reg) c3,
                c4 = out(reg) c4,
                c5 = out(reg) c5,
                c6 = out(reg) c6,
                t0 = out(reg) _,
                hi = out(reg) _,
                options(pure, nomem, nostack),
            );
            // Double the cross half and add the diagonals a_i^2 in one
            // pass: the doubling rides the CF (`adcx`) chain and the
            // diagonals ride the OF (`adox`) chain, so the two serial
            // chains retire concurrently.  Then the reduction (a0 back
            // in rdx at entry).
            core::arch::asm!(
                "mulx {hi}, {t0}, rdx",   // a0^2 -> cols 0,1
                "xor {c7:e}, {c7:e}",     // c7 = 0, clears CF+OF
                "mov {c0}, {t0}",         // col 0 has no cross half
                "adcx {c1}, {c1}",
                "adox {c1}, {hi}",
                "mov rdx, {a1}",
                "mulx {hi}, {t0}, rdx",
                "adcx {c2}, {c2}",
                "adox {c2}, {t0}",
                "adcx {c3}, {c3}",
                "adox {c3}, {hi}",
                "mov rdx, {a2}",
                "mulx {hi}, {t0}, rdx",
                "adcx {c4}, {c4}",
                "adox {c4}, {t0}",
                "adcx {c5}, {c5}",
                "adox {c5}, {hi}",
                "mov rdx, {a3}",
                "mulx {hi}, {t0}, rdx",
                "adcx {c6}, {c6}",
                "adox {c6}, {t0}",
                "adcx {c7}, {c7}",        // doubling carry lands in c7
                "adox {c7}, {hi}",        // total = a^2 < 2^512: no carry out
                // reduce: identical tail to `mul`
                "mov rdx, 38",
                "xor {t0:e}, {t0:e}",
                "mulx {hi}, {t0}, {c4}",
                "mov {c4:e}, 0",
                "adox {c0}, {t0}",
                "adcx {c1}, {hi}",
                "mulx {hi}, {t0}, {c5}",
                "adox {c1}, {t0}",
                "adcx {c2}, {hi}",
                "mulx {hi}, {t0}, {c6}",
                "adox {c2}, {t0}",
                "adcx {c3}, {hi}",
                "mulx {hi}, {t0}, {c7}",
                "adox {c3}, {t0}",
                "adcx {c4}, {hi}",
                "mov {t0:e}, 0",
                "adox {c4}, {t0}",
                "imul rdx, {c4}",
                "add {c0}, rdx",
                "adc {c1}, 0",
                "adc {c2}, 0",
                "adc {c3}, 0",
                "sbb rdx, rdx",
                "and rdx, 38",
                "add {c0}, rdx",
                inout("rdx") a[0] => _,
                a1 = in(reg) a[1],
                a2 = in(reg) a[2],
                a3 = in(reg) a[3],
                c0 = out(reg) c0,
                c1 = inout(reg) c1,
                c2 = inout(reg) c2,
                c3 = inout(reg) c3,
                c4 = inout(reg) c4 => _,
                c5 = inout(reg) c5 => _,
                c6 = inout(reg) c6 => _,
                c7 = out(reg) _,
                t0 = out(reg) _,
                hi = out(reg) _,
                options(pure, nomem, nostack),
            );
        }
        [c0, c1, c2, c3]
    }
}

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0]);

    /// Construct from a small integer.
    pub const fn from_u64(x: u64) -> FieldElement {
        FieldElement([x, 0, 0, 0])
    }

    /// Parse 32 little-endian bytes as a field element, ignoring the top
    /// bit (matching the curve25519 convention).
    pub fn from_bytes(bytes: &[u8; 32]) -> FieldElement {
        FieldElement([
            load_u64_le(&bytes[0..8]),
            load_u64_le(&bytes[8..16]),
            load_u64_le(&bytes[16..24]),
            load_u64_le(&bytes[24..32]) & TOP_BIT_CLEAR,
        ])
    }

    /// Fully reduce and serialize to 32 little-endian bytes.  The encoding
    /// is canonical: the value is reduced into [0, p).
    pub fn to_bytes(&self) -> [u8; 32] {
        let mut l = self.0;
        // Fold bit 255 as +19 (2^255 ≡ 19).  Twice: a value < 2^256
        // drops below 2^255 + 19 on the first pass and below 2^255 on
        // the second.
        for _ in 0..2 {
            let hi = l[3] >> 63;
            l[3] &= TOP_BIT_CLEAR;
            let mut acc = (l[0] as u128) + (hi as u128) * 19;
            l[0] = acc as u64;
            acc >>= 64;
            for i in 1..4 {
                acc += l[i] as u128;
                l[i] = acc as u64;
                acc >>= 64;
            }
            debug_assert_eq!(acc, 0);
        }
        // Conditionally subtract p: w = value + 19 carries into bit 255
        // iff value >= p, and then w mod 2^255 = value - p.
        let mut w = [0u64; 4];
        let mut acc = (l[0] as u128) + 19;
        w[0] = acc as u64;
        acc >>= 64;
        for i in 1..4 {
            acc += l[i] as u128;
            w[i] = acc as u64;
            acc >>= 64;
        }
        let mask = (w[3] >> 63).wrapping_neg();
        let mut out = [0u8; 32];
        for i in 0..4 {
            let limb = (l[i] & !mask) | (w[i] & mask);
            let limb = if i == 3 { limb & TOP_BIT_CLEAR } else { limb };
            out[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// Field addition.
    #[inline(always)]
    pub fn add(&self, rhs: &FieldElement) -> FieldElement {
        #[cfg(all(
            target_arch = "x86_64",
            target_feature = "bmi2",
            target_feature = "adx"
        ))]
        {
            FieldElement(asm::add(&self.0, &rhs.0))
        }
        #[cfg(not(all(
            target_arch = "x86_64",
            target_feature = "bmi2",
            target_feature = "adx"
        )))]
        {
            let mut l = [0u64; 4];
            let mut acc: u128 = 0;
            for i in 0..4 {
                acc += (self.0[i] as u128) + (rhs.0[i] as u128);
                l[i] = acc as u64;
                acc >>= 64;
            }
            FieldElement(fold_carry(l, acc as u64))
        }
    }

    /// Field subtraction: borrow out of the top limb folds back as
    /// `-38` (`-2^256 ≡ -38 mod p`), twice for the rare double wrap.
    #[inline(always)]
    pub fn sub(&self, rhs: &FieldElement) -> FieldElement {
        #[cfg(all(
            target_arch = "x86_64",
            target_feature = "bmi2",
            target_feature = "adx"
        ))]
        {
            FieldElement(asm::sub(&self.0, &rhs.0))
        }
        #[cfg(not(all(
            target_arch = "x86_64",
            target_feature = "bmi2",
            target_feature = "adx"
        )))]
        {
            let mut l = [0u64; 4];
            let mut borrow = 0u64;
            for i in 0..4 {
                let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                l[i] = d2;
                borrow = (b1 | b2) as u64;
            }
            let (d, b) = l[0].overflowing_sub(38 * borrow);
            l[0] = d;
            let mut bb = b as u64;
            for i in 1..4 {
                let (d, b) = l[i].overflowing_sub(bb);
                l[i] = d;
                bb = b as u64;
            }
            // A second borrow means the value wrapped high: limb 0 is
            // now within 38 of 2^64, so it cannot borrow again.
            l[0] = l[0].wrapping_sub(38 * bb);
            FieldElement(l)
        }
    }

    // -----------------------------------------------------------------
    // Lazy entry points: eager here.  Saturated limbs have no headroom
    // for postponed carries, and add/sub are a handful of ALU ops — the
    // 5×51 backend's lazy-reduction contract (see fiat51.rs) is an
    // optimization it alone can exploit.
    // -----------------------------------------------------------------

    /// Lazy addition (eager in this backend; see module docs).
    #[inline(always)]
    #[allow(dead_code)] // unused when the other backend is selected
    pub(crate) fn lazy_add(&self, rhs: &FieldElement) -> FieldElement {
        self.add(rhs)
    }

    /// Lazy subtraction (eager in this backend; see module docs).
    #[inline(always)]
    #[allow(dead_code)] // unused when the other backend is selected
    pub(crate) fn lazy_sub(&self, rhs: &FieldElement) -> FieldElement {
        self.sub(rhs)
    }

    /// Wide-rhs lazy subtraction (eager in this backend).
    #[inline(always)]
    #[allow(dead_code)] // unused when the other backend is selected
    pub(crate) fn lazy_sub_wide(&self, rhs: &FieldElement) -> FieldElement {
        self.sub(rhs)
    }

    /// Field multiplication.
    #[inline(always)]
    pub fn mul(&self, rhs: &FieldElement) -> FieldElement {
        #[cfg(all(
            target_arch = "x86_64",
            target_feature = "bmi2",
            target_feature = "adx"
        ))]
        {
            FieldElement(asm::mul(&self.0, &rhs.0))
        }
        #[cfg(not(all(
            target_arch = "x86_64",
            target_feature = "bmi2",
            target_feature = "adx"
        )))]
        {
            FieldElement(mul_portable(&self.0, &rhs.0))
        }
    }

    /// Field squaring.
    #[inline(always)]
    pub fn square(&self) -> FieldElement {
        #[cfg(all(
            target_arch = "x86_64",
            target_feature = "bmi2",
            target_feature = "adx"
        ))]
        {
            FieldElement(asm::square(&self.0))
        }
        #[cfg(not(all(
            target_arch = "x86_64",
            target_feature = "bmi2",
            target_feature = "adx"
        )))]
        {
            FieldElement(mul_portable(&self.0, &self.0))
        }
    }

    /// `2 * self^2`.
    #[inline(always)]
    pub fn square2(&self) -> FieldElement {
        let s = self.square();
        s.add(&s)
    }

    /// Constant-time-style select: returns `b` if `choice` is 1, else
    /// `a` — one branchless `vpand`/`vpxor` pair under AVX2 (see
    /// `and_mask` below for why the scalar loop is worse).
    #[inline(always)]
    pub fn select(a: &FieldElement, b: &FieldElement, choice: u64) -> FieldElement {
        debug_assert!(choice == 0 || choice == 1);
        let mask = choice.wrapping_neg(); // 0 or all-ones
        #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
        // SAFETY: loads/stores 32 bytes from/to valid [u64; 4] refs.
        unsafe {
            use core::arch::x86_64::*;
            let mut out = [0u64; 4];
            let va = _mm256_loadu_si256(a.0.as_ptr() as *const __m256i);
            let vb = _mm256_loadu_si256(b.0.as_ptr() as *const __m256i);
            let m = _mm256_set1_epi64x(mask as i64);
            // a ^ (mask & (a ^ b))
            let sel = _mm256_xor_si256(va, _mm256_and_si256(m, _mm256_xor_si256(va, vb)));
            _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, sel);
            FieldElement(out)
        }
        #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
        {
            let mut out = *a;
            for (o, l) in out.0.iter_mut().zip(b.0.iter()) {
                *o ^= mask & (*o ^ l);
            }
            out
        }
    }

    /// All limbs ANDed with `mask` (masked table-scan seed).  The four
    /// saturated limbs are exactly one 256-bit vector, so with AVX2
    /// this is a single branchless `vpand` — the compiler turns the
    /// scalar loop into a *branch* on the (all-or-nothing) mask, and
    /// the resulting per-entry mispredicts are measurable across the
    /// ladder's 126 scans per two-scalar kernel.
    #[inline(always)]
    #[allow(dead_code)] // unused when the other backend is selected
    pub(crate) fn and_mask(&self, mask: u64) -> FieldElement {
        #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
        // SAFETY: loads/stores 32 bytes from/to valid [u64; 4] refs.
        unsafe {
            use core::arch::x86_64::*;
            let mut out = [0u64; 4];
            let v = _mm256_loadu_si256(self.0.as_ptr() as *const __m256i);
            let m = _mm256_set1_epi64x(mask as i64);
            _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, _mm256_and_si256(v, m));
            FieldElement(out)
        }
        #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
        {
            let mut out = *self;
            for l in out.0.iter_mut() {
                *l &= mask;
            }
            out
        }
    }

    /// OR in `entry`'s limbs under `mask` (masked table-scan
    /// accumulation): one `vpand` + `vpor` under AVX2, branchless.
    #[inline(always)]
    #[allow(dead_code)] // unused when the other backend is selected
    pub(crate) fn or_assign_masked(&mut self, entry: &FieldElement, mask: u64) {
        #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
        // SAFETY: loads/stores 32 bytes from/to valid [u64; 4] refs.
        unsafe {
            use core::arch::x86_64::*;
            let acc = _mm256_loadu_si256(self.0.as_ptr() as *const __m256i);
            let e = _mm256_loadu_si256(entry.0.as_ptr() as *const __m256i);
            let m = _mm256_set1_epi64x(mask as i64);
            let merged = _mm256_or_si256(acc, _mm256_and_si256(e, m));
            _mm256_storeu_si256(self.0.as_mut_ptr() as *mut __m256i, merged);
        }
        #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
        {
            for (l, e) in self.0.iter_mut().zip(entry.0.iter()) {
                *l |= e & mask;
            }
        }
    }

    /// The portable multiply, exposed for differential testing of the
    /// asm kernel (`tests/field_backends.rs`).
    #[doc(hidden)]
    pub fn mul_portable_ref(&self, rhs: &FieldElement) -> FieldElement {
        FieldElement(mul_portable(&self.0, &rhs.0))
    }
}

crate::field::impl_field_shared!(FieldElement);

#[cfg(test)]
mod tests {
    use super::*;

    /// The asm kernels must agree with the portable carry chains on
    /// structured and pseudo-random limb patterns (only meaningful when
    /// the asm path is compiled in; otherwise this tests the portable
    /// path against itself and is vacuous but harmless).
    #[test]
    fn asm_matches_portable() {
        let mut patterns: Vec<[u64; 4]> = vec![
            [0, 0, 0, 0],
            [1, 0, 0, 0],
            [38, 0, 0, 0],
            [u64::MAX, u64::MAX, u64::MAX, u64::MAX],
            [u64::MAX - 18, u64::MAX, u64::MAX, u64::MAX >> 1], // p alias
            [0, 0, 0, 1 << 63],
            [u64::MAX, 0, u64::MAX, 0],
        ];
        // Deterministic xorshift so failures reproduce.
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..200 {
            patterns.push([next(), next(), next(), next()]);
        }
        for a in &patterns {
            for b in patterns.iter().take(8) {
                let fa = FieldElement(*a);
                let fb = FieldElement(*b);
                assert_eq!(
                    fa.mul(&fb).to_bytes(),
                    fa.mul_portable_ref(&fb).to_bytes(),
                    "mul mismatch on {a:?} * {b:?}"
                );
            }
            let fa = FieldElement(*a);
            assert_eq!(
                fa.square().to_bytes(),
                fa.mul_portable_ref(&fa).to_bytes(),
                "square mismatch on {a:?}"
            );
        }
    }

    #[test]
    fn fold_carry_extremes() {
        // carry*38 that wraps the whole value: the double-fold must
        // land on the congruent small value.
        let l = fold_carry([u64::MAX, u64::MAX, u64::MAX, u64::MAX], 1);
        // 2^256 - 1 + 38 = 2^256 + 37 ≡ 38 + 37 = 75
        assert_eq!(
            FieldElement(l).to_bytes(),
            FieldElement::from_u64(75).to_bytes()
        );
    }

    #[test]
    fn sub_double_wrap() {
        // 0 - 1 must canonicalize to p - 1.
        let r = FieldElement::ZERO.sub(&FieldElement::ONE);
        let mut expect = [0xffu8; 32];
        expect[0] = 0xec;
        expect[31] = 0x7f;
        assert_eq!(r.to_bytes(), expect);
    }
}
