//! Points on the twisted Edwards curve `-x^2 + y^2 = 1 + d x^2 y^2`
//! (edwards25519), in extended coordinates `(X:Y:Z:T)` with `x = X/Z`,
//! `y = Y/Z`, `xy = T/Z`.
//!
//! This module is internal plumbing: the public prime-order group exposed
//! by the crate is [`crate::ristretto::GroupElement`], which wraps these
//! points.  Formulas follow the standard unified a=-1 HWCD'08 set.

use std::sync::OnceLock;

use crate::field::FieldElement;
use crate::scalar::Scalar;

/// The curve constant `d = -121665/121666`, derived at first use.
pub fn edwards_d() -> &'static FieldElement {
    static D: OnceLock<FieldElement> = OnceLock::new();
    D.get_or_init(|| {
        FieldElement::from_u64(121665)
            .neg()
            .mul(&FieldElement::from_u64(121666).invert())
    })
}

/// `2 * d`, used by the addition formula.
fn edwards_d2() -> &'static FieldElement {
    static D2: OnceLock<FieldElement> = OnceLock::new();
    D2.get_or_init(|| edwards_d().add(edwards_d()))
}

/// A point on edwards25519 in extended coordinates.
#[derive(Clone, Copy, Debug)]
pub struct EdwardsPoint {
    pub(crate) x: FieldElement,
    pub(crate) y: FieldElement,
    pub(crate) z: FieldElement,
    pub(crate) t: FieldElement,
}

/// The canonical compressed (curve25519 "y plus sign bit") encoding of the
/// Ed25519 basepoint, `y = 4/5` with even `x`.
const BASEPOINT_COMPRESSED: [u8; 32] = [
    0x58, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
    0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
];

impl EdwardsPoint {
    /// The identity element `(0, 1)`.
    pub fn identity() -> EdwardsPoint {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
            t: FieldElement::ZERO,
        }
    }

    /// The Ed25519 basepoint.
    pub fn basepoint() -> &'static EdwardsPoint {
        static B: OnceLock<EdwardsPoint> = OnceLock::new();
        B.get_or_init(|| {
            EdwardsPoint::decompress(&BASEPOINT_COMPRESSED)
                .expect("basepoint constant decompresses")
        })
    }

    /// Point addition (unified: also correct for doubling and identity).
    pub fn add(&self, other: &EdwardsPoint) -> EdwardsPoint {
        let y1_plus_x1 = self.y.add(&self.x);
        let y1_minus_x1 = self.y.sub(&self.x);
        let y2_plus_x2 = other.y.add(&other.x);
        let y2_minus_x2 = other.y.sub(&other.x);
        let pp = y1_plus_x1.mul(&y2_plus_x2);
        let mm = y1_minus_x1.mul(&y2_minus_x2);
        let tt2d = self.t.mul(&other.t).mul(edwards_d2());
        let zz2 = self.z.mul(&other.z).add(&self.z.mul(&other.z));

        let e = pp.sub(&mm);
        let f = zz2.sub(&tt2d);
        let g = zz2.add(&tt2d);
        let h = pp.add(&mm);

        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Point doubling.
    pub fn double(&self) -> EdwardsPoint {
        let xx = self.x.square();
        let yy = self.y.square();
        let zz2 = self.z.square().add(&self.z.square());
        let xy2 = self.x.add(&self.y).square().sub(&xx).sub(&yy); // 2XY
        let yy_plus_xx = yy.add(&xx);
        let yy_minus_xx = yy.sub(&xx);

        let e = xy2;
        let f = yy_minus_xx;
        let g = yy_plus_xx;
        let h = zz2.sub(&yy_minus_xx);

        // Completed (E:G:F:H) -> extended
        EdwardsPoint {
            x: e.mul(&h),
            y: g.mul(&f),
            z: f.mul(&h),
            t: e.mul(&g),
        }
    }

    /// Point negation.
    pub fn neg(&self) -> EdwardsPoint {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Subtraction.
    pub fn sub(&self, other: &EdwardsPoint) -> EdwardsPoint {
        self.add(&other.neg())
    }

    /// Scalar multiplication with a signed radix-16 fixed window and a
    /// masked table scan (uniform memory access pattern per window).
    pub fn scalar_mul(&self, scalar: &Scalar) -> EdwardsPoint {
        // Table of [1P, 2P, ..., 8P].
        let mut table = [*self; 8];
        for i in 1..8 {
            table[i] = table[i - 1].add(self);
        }
        let digits = scalar.to_radix_16();

        let mut acc = EdwardsPoint::identity();
        for i in (0..64).rev() {
            acc = acc.double().double().double().double();
            let d = digits[i];
            if d == 0 {
                continue;
            }
            let abs = d.unsigned_abs() as usize;
            // Masked scan over the whole table (uniform access pattern).
            let mut chosen = table[0];
            for (j, entry) in table.iter().enumerate() {
                let hit = ((j + 1) == abs) as u64;
                chosen = EdwardsPoint {
                    x: FieldElement::select(&chosen.x, &entry.x, hit),
                    y: FieldElement::select(&chosen.y, &entry.y, hit),
                    z: FieldElement::select(&chosen.z, &entry.z, hit),
                    t: FieldElement::select(&chosen.t, &entry.t, hit),
                };
            }
            if d < 0 {
                chosen = chosen.neg();
            }
            acc = acc.add(&chosen);
        }
        acc
    }

    /// `scalar * basepoint`, using a precomputed radix-16 table (no
    /// doublings: 64 table lookups + additions).  This is the hot
    /// operation of client sealing (`g^x`, `g^y`, proof commitments).
    pub fn base_mul(scalar: &Scalar) -> EdwardsPoint {
        let table = basepoint_table();
        let digits = scalar.to_radix_16();
        let mut acc = EdwardsPoint::identity();
        for (window, &d) in digits.iter().enumerate() {
            if d == 0 {
                continue;
            }
            let abs = d.unsigned_abs() as usize;
            // Masked scan over the window's 8 multiples.
            let row = &table.windows[window];
            let mut chosen = row[0];
            for (j, entry) in row.iter().enumerate() {
                let hit = ((j + 1) == abs) as u64;
                chosen = EdwardsPoint {
                    x: FieldElement::select(&chosen.x, &entry.x, hit),
                    y: FieldElement::select(&chosen.y, &entry.y, hit),
                    z: FieldElement::select(&chosen.z, &entry.z, hit),
                    t: FieldElement::select(&chosen.t, &entry.t, hit),
                };
            }
            if d < 0 {
                chosen = chosen.neg();
            }
            acc = acc.add(&chosen);
        }
        acc
    }

    /// Multiply by the cofactor 8.
    pub fn mul_by_cofactor(&self) -> EdwardsPoint {
        self.double().double().double()
    }

    /// Compress to the 32-byte "y plus sign of x" encoding.
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut bytes = y.to_bytes();
        bytes[31] |= (x.is_negative() as u8) << 7;
        bytes
    }

    /// Decompress a 32-byte encoding; `None` if not a curve point.
    pub fn decompress(bytes: &[u8; 32]) -> Option<EdwardsPoint> {
        let y = FieldElement::from_bytes(bytes);
        let sign = (bytes[31] >> 7) & 1;

        // x^2 = (y^2 - 1) / (d y^2 + 1)
        let yy = y.square();
        let u = yy.sub(&FieldElement::ONE);
        let v = yy.mul(edwards_d()).add(&FieldElement::ONE);
        let (is_valid, mut x) = FieldElement::sqrt_ratio_i(&u, &v);
        if !is_valid {
            return None;
        }
        if x.is_zero() && sign == 1 {
            return None; // "-0" is not a valid encoding
        }
        if (x.is_negative() as u8) != sign {
            x = x.neg();
        }
        Some(EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x.mul(&y),
        })
    }

    /// Projective equality: `X1 Z2 == X2 Z1 && Y1 Z2 == Y2 Z1`.
    pub fn ct_eq(&self, other: &EdwardsPoint) -> bool {
        let lhs_x = self.x.mul(&other.z);
        let rhs_x = other.x.mul(&self.z);
        let lhs_y = self.y.mul(&other.z);
        let rhs_y = other.y.mul(&self.z);
        lhs_x.ct_eq(&rhs_x) && lhs_y.ct_eq(&rhs_y)
    }

    /// True iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.ct_eq(&EdwardsPoint::identity())
    }

    /// Debug check: the point satisfies the curve equation and the
    /// extended-coordinate invariant `XY = ZT`.
    pub fn is_on_curve(&self) -> bool {
        let xx = self.x.square();
        let yy = self.y.square();
        let zz = self.z.square();
        let zzzz = zz.square();
        // (-X^2 + Y^2) Z^2 == Z^4 + d X^2 Y^2
        let lhs = yy.sub(&xx).mul(&zz);
        let rhs = zzzz.add(&edwards_d().mul(&xx).mul(&yy));
        let ok_curve = lhs.ct_eq(&rhs);
        let ok_t = self.x.mul(&self.y).ct_eq(&self.z.mul(&self.t));
        ok_curve && ok_t
    }
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        self.ct_eq(other)
    }
}
impl Eq for EdwardsPoint {}

/// Precomputed multiples of the basepoint: `windows[i][j] = (j+1)·16^i·B`
/// for the 64 radix-16 digit positions.
struct BasepointTable {
    windows: Vec<[EdwardsPoint; 8]>,
}

fn basepoint_table() -> &'static BasepointTable {
    static TABLE: OnceLock<BasepointTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut windows = Vec::with_capacity(64);
        let mut base = *EdwardsPoint::basepoint();
        for _ in 0..64 {
            let mut row = [base; 8];
            for j in 1..8 {
                row[j] = row[j - 1].add(&base);
            }
            windows.push(row);
            // base = 16 * base for the next digit position.
            base = base.double().double().double().double();
        }
        BasepointTable { windows }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_hex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basepoint_is_on_curve() {
        assert!(EdwardsPoint::basepoint().is_on_curve());
    }

    #[test]
    fn basepoint_compress_roundtrip() {
        assert_eq!(EdwardsPoint::basepoint().compress(), BASEPOINT_COMPRESSED);
    }

    #[test]
    fn known_multiples_of_basepoint() {
        // Vectors generated from an independent (Python) implementation.
        let b = EdwardsPoint::basepoint();
        assert_eq!(
            to_hex(&b.double().compress()),
            "c9a3f86aae465f0e56513864510f3997561fa2c9e85ea21dc2292309f3cd6022"
        );
        assert_eq!(
            to_hex(&b.double().add(b).compress()),
            "d4b4f5784868c3020403246717ec169ff79e26608ea126a1ab69ee77d1b16712"
        );
        assert_eq!(
            to_hex(&b.scalar_mul(&Scalar::from_u64(9)).compress()),
            "c0f1225584444ec730446e231390781ffdd2f256e9fcbeb2f40dddc2c2233d7f"
        );
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let b = EdwardsPoint::basepoint();
        let mut acc = EdwardsPoint::identity();
        for k in 0..20u64 {
            assert!(acc.ct_eq(&b.scalar_mul(&Scalar::from_u64(k))));
            assert!(acc.is_on_curve());
            acc = acc.add(b);
        }
    }

    #[test]
    fn base_mul_matches_generic_scalar_mul() {
        // The table-driven base_mul must agree with the generic ladder
        // for random scalars and all small/edge scalars.
        let mut rng = StdRng::seed_from_u64(77);
        let b = EdwardsPoint::basepoint();
        for _ in 0..10 {
            let s = Scalar::random(&mut rng);
            assert!(EdwardsPoint::base_mul(&s).ct_eq(&b.scalar_mul(&s)));
        }
        for k in [0u64, 1, 2, 7, 8, 9, 15, 16, 17, 255, 256] {
            let s = Scalar::from_u64(k);
            assert!(EdwardsPoint::base_mul(&s).ct_eq(&b.scalar_mul(&s)), "k={k}");
        }
        let l_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
        assert!(EdwardsPoint::base_mul(&l_minus_1).ct_eq(&b.scalar_mul(&l_minus_1)));
    }

    #[test]
    fn group_order_annihilates_basepoint() {
        // l * B == identity, (l-1) * B == -B
        let l_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
        let p = EdwardsPoint::base_mul(&l_minus_1);
        assert!(p.ct_eq(&EdwardsPoint::basepoint().neg()));
        assert!(p.add(EdwardsPoint::basepoint()).is_identity());
    }

    #[test]
    fn add_is_commutative_and_associative() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
        let q = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
        let r = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
        assert!(p.add(&q).ct_eq(&q.add(&p)));
        assert!(p.add(&q).add(&r).ct_eq(&p.add(&q.add(&r))));
    }

    #[test]
    fn double_matches_add_self() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
        assert!(p.double().ct_eq(&p.add(&p)));
    }

    #[test]
    fn scalar_mul_homomorphism() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Scalar::random(&mut rng);
        let b = Scalar::random(&mut rng);
        let lhs = EdwardsPoint::base_mul(&a.add(&b));
        let rhs = EdwardsPoint::base_mul(&a).add(&EdwardsPoint::base_mul(&b));
        assert!(lhs.ct_eq(&rhs));
    }

    #[test]
    fn decompress_rejects_non_points() {
        // y = 2 gives x^2 non-square on this curve.
        let mut bytes = [0u8; 32];
        bytes[0] = 2;
        assert!(EdwardsPoint::decompress(&bytes).is_none());
    }

    #[test]
    fn decompress_rejects_negative_zero() {
        // y = 1 (identity) with sign bit set: x = -0 is invalid.
        let mut bytes = [0u8; 32];
        bytes[0] = 1;
        bytes[31] = 0x80;
        assert!(EdwardsPoint::decompress(&bytes).is_none());
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..8 {
            let p = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
            let c = p.compress();
            let q = EdwardsPoint::decompress(&c).unwrap();
            assert!(p.ct_eq(&q));
            assert_eq!(q.compress(), c);
        }
    }

    #[test]
    fn identity_behaves() {
        let id = EdwardsPoint::identity();
        let b = EdwardsPoint::basepoint();
        assert!(id.add(b).ct_eq(b));
        assert!(b.add(&id).ct_eq(b));
        assert!(b.sub(b).is_identity());
        assert!(id.is_on_curve());
        assert!(id.double().is_identity());
        assert!(b.scalar_mul(&Scalar::ZERO).is_identity());
    }
}
