//! Points on the twisted Edwards curve `-x^2 + y^2 = 1 + d x^2 y^2`
//! (edwards25519), in extended coordinates `(X:Y:Z:T)` with `x = X/Z`,
//! `y = Y/Z`, `xy = T/Z`.
//!
//! This module is internal plumbing: the public prime-order group exposed
//! by the crate is [`crate::ristretto::GroupElement`], which wraps these
//! points.  Formulas follow the standard unified a=-1 HWCD'08 set, with
//! the hot paths running on the mixed-coordinate pipeline (projective
//! "P2" doublings, cached-Niels additions) so a scalar multiplication
//! costs roughly half the field work of the naive extended-only ladder.
//!
//! The whole pipeline is generic over the field representation
//! ([`FieldBackend`]): `EdwardsPoint<F>` defaults to the build-selected
//! [`FieldElement`], which is what the rest of the crate (and the
//! public API) uses, while benches and differential tests instantiate
//! the *same* formulas over both backends in one build to compare them
//! like for like.
//!
//! Three multiplication strategies coexist:
//!
//! * [`EdwardsPoint::scalar_mul`] — constant-time-style signed radix-16
//!   ladder with a masked table scan; safe for secret scalars.
//! * [`PointTable`] — a reusable signed radix-16 table of a fixed point,
//!   batch-normalized to affine Niels form with one shared field
//!   inversion ([`FieldElement::batch_invert`]); the AHS hop kernel
//!   builds one table per entry and runs both the `msk` and `bsk`
//!   multiplications off it, still with masked (constant-time-style)
//!   scans.
//! * [`EdwardsPoint::vartime_multiscalar_mul`] — Straus (small n) or
//!   Pippenger (large n) multi-scalar multiplication, **variable time**:
//!   only ever used on public data (batched proof verification).

use std::sync::OnceLock;

use crate::field::{FieldBackend, FieldElement};
use crate::scalar::Scalar;

/// The curve constant `d = -121665/121666` for the build-selected
/// field backend, derived at first use.
pub fn edwards_d() -> &'static FieldElement {
    <FieldElement as FieldBackend>::edwards_d()
}

/// A point on edwards25519 in extended coordinates, generic over the
/// field representation (defaulting to the build-selected backend).
#[derive(Clone, Copy, Debug)]
pub struct EdwardsPoint<F: FieldBackend = FieldElement> {
    pub(crate) x: F,
    pub(crate) y: F,
    pub(crate) z: F,
    pub(crate) t: F,
}

/// The canonical compressed (curve25519 "y plus sign bit") encoding of the
/// Ed25519 basepoint, `y = 4/5` with even `x`.
const BASEPOINT_COMPRESSED: [u8; 32] = [
    0x58, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
    0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
];

// ---------------------------------------------------------------------
// Internal curve models (mixed-coordinate pipeline)
//
//   ProjectivePoint ("P2"):   x = X/Z, y = Y/Z          — cheap doubling
//   CompletedPoint ("P1xP1"): x = X/Z, y = Y/T          — formula output
//   ProjectiveNielsPoint:     (Y+X, Y-X, Z, 2dT) cache  — 4-mul addition
//   AffineNielsPoint:         (y+x, y-x, 2dxy)   cache  — 3-mul addition
// ---------------------------------------------------------------------

/// A point in projective "P2" coordinates (no `T`): doubling input.
#[derive(Clone, Copy, Debug)]
struct ProjectivePoint<F: FieldBackend> {
    x: F,
    y: F,
    z: F,
}

/// The output of an addition/doubling formula before renormalization:
/// `x = X/Z`, `y = Y/T`.
#[derive(Clone, Copy, Debug)]
struct CompletedPoint<F: FieldBackend> {
    x: F,
    y: F,
    z: F,
    t: F,
}

/// Cached form of a point for repeated additions (projective).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ProjectiveNielsPoint<F: FieldBackend = FieldElement> {
    y_plus_x: F,
    y_minus_x: F,
    z: F,
    t2d: F,
}

/// Cached form of an *affine* (`Z = 1`) point: one multiplication
/// cheaper to add than [`ProjectiveNielsPoint`], and 3 field elements
/// instead of 4, so masked table scans touch less memory.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AffineNielsPoint<F: FieldBackend = FieldElement> {
    y_plus_x: F,
    y_minus_x: F,
    xy2d: F,
}

impl<F: FieldBackend> ProjectiveNielsPoint<F> {
    /// The cached form of the identity.
    const IDENTITY: ProjectiveNielsPoint<F> = ProjectiveNielsPoint {
        y_plus_x: F::ONE,
        y_minus_x: F::ONE,
        z: F::ONE,
        t2d: F::ZERO,
    };

    /// Negate iff `choice` is 1 (swaps the sum/difference caches and
    /// negates the `2dT` term).
    #[inline(always)]
    fn conditional_negate(&self, choice: u64) -> Self {
        ProjectiveNielsPoint {
            y_plus_x: F::select(&self.y_plus_x, &self.y_minus_x, choice),
            y_minus_x: F::select(&self.y_minus_x, &self.y_plus_x, choice),
            z: self.z,
            t2d: self.t2d.conditional_negate(choice),
        }
    }

    /// All limbs ANDed with `0 - choice` (scan seed).
    #[inline(always)]
    fn masked(&self, choice: u64) -> Self {
        let m = choice.wrapping_neg();
        ProjectiveNielsPoint {
            y_plus_x: self.y_plus_x.and_mask(m),
            y_minus_x: self.y_minus_x.and_mask(m),
            z: self.z.and_mask(m),
            t2d: self.t2d.and_mask(m),
        }
    }

    /// OR in `entry`'s limbs under the mask `0 - choice`.
    #[inline(always)]
    fn accumulate(&mut self, entry: &Self, choice: u64) {
        let m = choice.wrapping_neg();
        self.y_plus_x.or_assign_masked(&entry.y_plus_x, m);
        self.y_minus_x.or_assign_masked(&entry.y_minus_x, m);
        self.z.or_assign_masked(&entry.z, m);
        self.t2d.or_assign_masked(&entry.t2d, m);
    }
}

impl<F: FieldBackend> AffineNielsPoint<F> {
    /// The cached form of the identity.
    const IDENTITY: AffineNielsPoint<F> = AffineNielsPoint {
        y_plus_x: F::ONE,
        y_minus_x: F::ONE,
        xy2d: F::ZERO,
    };

    /// Negate iff `choice` is 1.
    #[inline(always)]
    fn conditional_negate(&self, choice: u64) -> Self {
        AffineNielsPoint {
            y_plus_x: F::select(&self.y_plus_x, &self.y_minus_x, choice),
            y_minus_x: F::select(&self.y_minus_x, &self.y_plus_x, choice),
            xy2d: self.xy2d.conditional_negate(choice),
        }
    }

    /// All limbs ANDed with `0 - choice` (scan seed).
    #[inline(always)]
    fn masked(&self, choice: u64) -> Self {
        let m = choice.wrapping_neg();
        AffineNielsPoint {
            y_plus_x: self.y_plus_x.and_mask(m),
            y_minus_x: self.y_minus_x.and_mask(m),
            xy2d: self.xy2d.and_mask(m),
        }
    }

    /// OR in `entry`'s limbs under the mask `0 - choice`.
    #[inline(always)]
    fn accumulate(&mut self, entry: &Self, choice: u64) {
        let m = choice.wrapping_neg();
        self.y_plus_x.or_assign_masked(&entry.y_plus_x, m);
        self.y_minus_x.or_assign_masked(&entry.y_minus_x, m);
        self.xy2d.or_assign_masked(&entry.xy2d, m);
    }
}

impl<F: FieldBackend> ProjectivePoint<F> {
    /// Doubling: 4 squarings, no general multiplications.  Inputs are
    /// reduced (they come out of multiplications); the additive steps
    /// are lazy where the backend supports it.  The bounds noted inline
    /// are the 5×51 backend's (the 4×64 backend reduces eagerly and
    /// satisfies them trivially; see `field/mod.rs`).
    #[inline(always)]
    fn double(&self) -> CompletedPoint<F> {
        let xx = self.x.square();
        let yy = self.y.square();
        // 2Z^2 in one carry pass (reduced output, so also a valid
        // `lazy_sub_wide` lhs below).
        let zz2 = self.z.square2();
        let x_plus_y_sq = self.x.lazy_add(&self.y).square();
        let yy_plus_xx = yy.lazy_add(&xx); // < 2^53
        let yy_minus_xx = yy.lazy_sub(&xx); // < 2^55.4
        CompletedPoint {
            x: x_plus_y_sq.lazy_sub(&yy_plus_xx), // 2XY, < 2^55.4
            y: yy_plus_xx,
            z: yy_minus_xx,
            t: zz2.lazy_sub_wide(&yy_minus_xx), // < 2^56.5
        }
    }
}

impl<F: FieldBackend> CompletedPoint<F> {
    /// Renormalize to "P2" (3 multiplications): enough to keep doubling.
    #[inline(always)]
    fn to_projective(self) -> ProjectivePoint<F> {
        ProjectivePoint {
            x: self.x.mul(&self.t),
            y: self.y.mul(&self.z),
            z: self.z.mul(&self.t),
        }
    }

    /// Renormalize to extended coordinates (4 multiplications): needed
    /// before the next cached-Niels addition.
    #[inline(always)]
    fn to_extended(self) -> EdwardsPoint<F> {
        EdwardsPoint {
            x: self.x.mul(&self.t),
            y: self.y.mul(&self.z),
            z: self.z.mul(&self.t),
            t: self.x.mul(&self.y),
        }
    }
}

/// Two independent doublings with their field operations interleaved
/// in program order, so each chain's multiplies fill the other's
/// pipeline bubbles (the out-of-order window cannot bridge two fully
/// sequential doublings — a whole doubling is several hundred uops).
/// Used by the two-scalar hop kernel; see
/// [`PointTable::scalar_mul_pair`].
#[inline(always)]
fn double_pair<F: FieldBackend>(
    pa: &ProjectivePoint<F>,
    pb: &ProjectivePoint<F>,
) -> (CompletedPoint<F>, CompletedPoint<F>) {
    let xx_a = pa.x.square();
    let xx_b = pb.x.square();
    let yy_a = pa.y.square();
    let yy_b = pb.y.square();
    let zz2_a = pa.z.square2();
    let zz2_b = pb.z.square2();
    let xy_sq_a = pa.x.lazy_add(&pa.y).square();
    let xy_sq_b = pb.x.lazy_add(&pb.y).square();
    let yy_plus_xx_a = yy_a.lazy_add(&xx_a);
    let yy_plus_xx_b = yy_b.lazy_add(&xx_b);
    let yy_minus_xx_a = yy_a.lazy_sub(&xx_a);
    let yy_minus_xx_b = yy_b.lazy_sub(&xx_b);
    (
        CompletedPoint {
            x: xy_sq_a.lazy_sub(&yy_plus_xx_a),
            y: yy_plus_xx_a,
            z: yy_minus_xx_a,
            t: zz2_a.lazy_sub_wide(&yy_minus_xx_a),
        },
        CompletedPoint {
            x: xy_sq_b.lazy_sub(&yy_plus_xx_b),
            y: yy_plus_xx_b,
            z: yy_minus_xx_b,
            t: zz2_b.lazy_sub_wide(&yy_minus_xx_b),
        },
    )
}

/// Two independent "P2" renormalizations, interleaved like
/// [`double_pair`] (6 independent multiplies back to back).
#[inline(always)]
fn to_projective_pair<F: FieldBackend>(
    ca: &CompletedPoint<F>,
    cb: &CompletedPoint<F>,
) -> (ProjectivePoint<F>, ProjectivePoint<F>) {
    let xa = ca.x.mul(&ca.t);
    let xb = cb.x.mul(&cb.t);
    let ya = ca.y.mul(&ca.z);
    let yb = cb.y.mul(&cb.z);
    let za = ca.z.mul(&ca.t);
    let zb = cb.z.mul(&cb.t);
    (
        ProjectivePoint {
            x: xa,
            y: ya,
            z: za,
        },
        ProjectivePoint {
            x: xb,
            y: yb,
            z: zb,
        },
    )
}

/// Two independent affine-Niels mixed additions, interleaved like
/// [`double_pair`].
#[inline(always)]
fn add_affine_niels_pair<F: FieldBackend>(
    ea: &EdwardsPoint<F>,
    na: &AffineNielsPoint<F>,
    eb: &EdwardsPoint<F>,
    nb: &AffineNielsPoint<F>,
) -> (CompletedPoint<F>, CompletedPoint<F>) {
    let pp_a = ea.y.lazy_add(&ea.x).mul(&na.y_plus_x);
    let pp_b = eb.y.lazy_add(&eb.x).mul(&nb.y_plus_x);
    let mm_a = ea.y.lazy_sub(&ea.x).mul(&na.y_minus_x);
    let mm_b = eb.y.lazy_sub(&eb.x).mul(&nb.y_minus_x);
    let txy2d_a = ea.t.mul(&na.xy2d);
    let txy2d_b = eb.t.mul(&nb.xy2d);
    let z2_a = ea.z.lazy_add(&ea.z);
    let z2_b = eb.z.lazy_add(&eb.z);
    (
        CompletedPoint {
            x: pp_a.lazy_sub(&mm_a),
            y: pp_a.lazy_add(&mm_a),
            z: z2_a.lazy_add(&txy2d_a),
            t: z2_a.lazy_sub(&txy2d_a),
        },
        CompletedPoint {
            x: pp_b.lazy_sub(&mm_b),
            y: pp_b.lazy_add(&mm_b),
            z: z2_b.lazy_add(&txy2d_b),
            t: z2_b.lazy_sub(&txy2d_b),
        },
    )
}

/// Constant-time-style `a == b` for small table indices: returns 1 iff
/// equal, without a data-dependent branch.
#[inline(always)]
fn ct_eq_index(a: u64, b: u64) -> u64 {
    // a ^ b is zero iff equal; (x - 1) underflows to all-ones iff x == 0.
    ((a ^ b).wrapping_sub(1) >> 63) & 1
}

/// Split a signed radix-16 digit into `(sign, |digit|)` without a
/// secret-dependent branch.
#[inline(always)]
fn digit_sign_abs(d: i8) -> (u64, u64) {
    let x = d as i16; // in [-8, 8)
    let xmask = x >> 15; // 0 if non-negative, -1 if negative
    let abs = ((x + xmask) ^ xmask) as u64;
    debug_assert!(abs <= 8);
    ((xmask & 1) as u64, abs)
}

/// The shared signed radix-16 window ladder: 63 windows of (4 cheap
/// doublings + one masked-scan addition) after seeding with the top
/// digit.  The window state is carried in completed form — the
/// doubling chain only needs P2 (3-mul renormalization) and only the
/// final pre-addition double pays for extended coordinates.  `$add`
/// maps `(EdwardsPoint<F>, digit)` to a `CompletedPoint<F>` via the
/// caller's table-scan-and-add (affine or projective Niels).
macro_rules! radix16_ladder {
    ($scalar:expr, $add:expr) => {{
        let add = $add;
        let digits = $scalar.to_radix_16();
        let mut c = add(EdwardsPoint::identity(), digits[63]);
        for i in (0..63).rev() {
            let mut p = c.to_projective();
            for _ in 0..3 {
                p = p.double().to_projective();
            }
            c = add(p.double().to_extended(), digits[i]);
        }
        c.to_extended()
    }};
}

/// One-shot signed radix-16 lookup table in projective Niels form,
/// used by [`EdwardsPoint::scalar_mul`].  Built without any inversion.
struct LookupTable<F: FieldBackend>([ProjectiveNielsPoint<F>; 8]);

impl<F: FieldBackend> LookupTable<F> {
    fn new(p: &EdwardsPoint<F>) -> LookupTable<F> {
        let mut multiples = [*p; 8];
        for i in 1..8 {
            multiples[i] = multiples[i - 1]
                .add_projective_niels(&p.to_projective_niels())
                .to_extended();
        }
        LookupTable(multiples.map(|m| m.to_projective_niels()))
    }

    /// Masked scan for digit `d` in `[-8, 8)`: uniform access pattern,
    /// accumulating `mask AND limb` over every entry (plus the identity)
    /// so exactly one all-ones mask contributes.
    #[inline(always)]
    fn select(&self, d: i8) -> ProjectiveNielsPoint<F> {
        let (sign, abs) = digit_sign_abs(d);
        let mut chosen = ProjectiveNielsPoint::IDENTITY.masked(ct_eq_index(0, abs));
        for (j, entry) in self.0.iter().enumerate() {
            chosen.accumulate(entry, ct_eq_index(j as u64 + 1, abs));
        }
        chosen.conditional_negate(sign)
    }
}

/// A reusable signed radix-16 table of multiples `[1P, ..., 8P]` of a
/// fixed point, normalized to affine Niels form.
///
/// Building the table costs a handful of additions plus (a share of)
/// one field inversion — [`PointTable::batch_new`] normalizes the
/// tables of a whole batch of points with a *single* inversion via
/// [`FieldElement::batch_invert`].  Once built, every scalar
/// multiplication off the table skips the per-call table construction
/// and uses the cheaper 3-mul affine additions; this is the §6.3 hop
/// kernel's shape, where each entry's DH key is raised to both `msk`
/// and `bsk`.
///
/// Scans are masked (uniform access pattern), so the table is safe to
/// drive with secret scalars.
pub struct PointTable<F: FieldBackend = FieldElement> {
    entries: [AffineNielsPoint<F>; 8],
}

impl<F: FieldBackend> PointTable<F> {
    /// Build the table for one point (costs one field inversion; prefer
    /// [`PointTable::batch_new`] for more than one point).
    pub fn new(point: &EdwardsPoint<F>) -> PointTable<F> {
        PointTable::batch_new(std::slice::from_ref(point))
            .pop()
            .expect("one table per point")
    }

    /// Build tables for a batch of points, sharing a single field
    /// inversion across every table's affine normalization.
    pub fn batch_new(points: &[EdwardsPoint<F>]) -> Vec<PointTable<F>> {
        // Multiples in extended coordinates; even multiples come from
        // the cheaper doubling pipeline.
        let mut multiples: Vec<[EdwardsPoint<F>; 8]> = Vec::with_capacity(points.len());
        for p in points {
            let cached = p.to_projective_niels();
            let mut row = [*p; 8];
            row[1] = p.double(); // 2P
            row[2] = row[1].add_projective_niels(&cached).to_extended(); // 3P
            row[3] = row[1].double(); // 4P
            row[4] = row[3].add_projective_niels(&cached).to_extended(); // 5P
            row[5] = row[2].double(); // 6P
            row[6] = row[5].add_projective_niels(&cached).to_extended(); // 7P
            row[7] = row[3].double(); // 8P
            multiples.push(row);
        }
        // One inversion for all 8n Z coordinates.
        rows_to_affine_niels(&multiples)
            .into_iter()
            .map(|entries| PointTable { entries })
            .collect()
    }

    /// Masked scan for digit `d` in `[-8, 8)`: uniform access pattern,
    /// accumulating `mask AND limb` over every entry (plus the identity).
    #[inline(always)]
    fn select(&self, d: i8) -> AffineNielsPoint<F> {
        let (sign, abs) = digit_sign_abs(d);
        let mut chosen = AffineNielsPoint::IDENTITY.masked(ct_eq_index(0, abs));
        for (j, entry) in self.entries.iter().enumerate() {
            chosen.accumulate(entry, ct_eq_index(j as u64 + 1, abs));
        }
        chosen.conditional_negate(sign)
    }

    /// `scalar * P` off the precomputed table (constant-time-style).
    pub fn scalar_mul(&self, scalar: &Scalar) -> EdwardsPoint<F> {
        radix16_ladder!(scalar, |acc: EdwardsPoint<F>, d: i8| acc
            .add_affine_niels(&self.select(d)))
    }

    /// `(a * P, b * P)`: two ladders off the same table — the §6.3
    /// per-entry hop kernel: `X^msk` (decrypt) and `X^bsk` (blind) from
    /// one table build.
    ///
    /// The two ladders are *interleaved* window by window: the `a` and
    /// `b` accumulators are independent dependency chains, so each
    /// window's doublings and additions for one ladder fill the
    /// pipeline bubbles of the other.  This matters most for the 4×64
    /// backend, whose `adcx`/`adox` carry chains are latency-bound
    /// when run alone (the 5×51 backend's wide-accumulator code has
    /// more intrinsic instruction-level parallelism and gains less —
    /// which is why the pre-backend PR measured sequential ≈
    /// interleaved and kept sequential).
    pub fn scalar_mul_pair(&self, a: &Scalar, b: &Scalar) -> (EdwardsPoint<F>, EdwardsPoint<F>) {
        let da = a.to_radix_16();
        let db = b.to_radix_16();
        let mut ca = EdwardsPoint::identity().add_affine_niels(&self.select(da[63]));
        let mut cb = EdwardsPoint::identity().add_affine_niels(&self.select(db[63]));
        for i in (0..63).rev() {
            let (mut pa, mut pb) = to_projective_pair(&ca, &cb);
            for _ in 0..3 {
                let (da_, db_) = double_pair(&pa, &pb);
                (pa, pb) = to_projective_pair(&da_, &db_);
            }
            let (ea, eb) = double_pair(&pa, &pb);
            (ca, cb) = add_affine_niels_pair(
                &ea.to_extended(),
                &self.select(da[i]),
                &eb.to_extended(),
                &self.select(db[i]),
            );
        }
        (ca.to_extended(), cb.to_extended())
    }
}

impl<F: FieldBackend> EdwardsPoint<F> {
    /// The identity element `(0, 1)`.
    pub fn identity() -> EdwardsPoint<F> {
        EdwardsPoint {
            x: F::ZERO,
            y: F::ONE,
            z: F::ONE,
            t: F::ZERO,
        }
    }

    /// View the extended point as "P2" (drop `T`) for doubling chains.
    #[inline(always)]
    fn to_projective_view(self) -> ProjectivePoint<F> {
        ProjectivePoint {
            x: self.x,
            y: self.y,
            z: self.z,
        }
    }

    /// Cache this point for repeated additions (1 multiplication).
    #[inline(always)]
    pub(crate) fn to_projective_niels(self) -> ProjectiveNielsPoint<F> {
        ProjectiveNielsPoint {
            y_plus_x: self.y.add(&self.x),
            y_minus_x: self.y.sub(&self.x),
            z: self.z,
            t2d: self.t.mul(F::edwards_d2()),
        }
    }

    /// Mixed addition against a projective Niels cache (4 muls).
    #[inline(always)]
    fn add_projective_niels(&self, other: &ProjectiveNielsPoint<F>) -> CompletedPoint<F> {
        let pp = self.y.lazy_add(&self.x).mul(&other.y_plus_x);
        let mm = self.y.lazy_sub(&self.x).mul(&other.y_minus_x);
        let tt2d = self.t.mul(&other.t2d);
        let zz = self.z.mul(&other.z);
        let zz2 = zz.lazy_add(&zz);
        CompletedPoint {
            x: pp.lazy_sub(&mm),
            y: pp.lazy_add(&mm),
            z: zz2.lazy_add(&tt2d),
            t: zz2.lazy_sub(&tt2d),
        }
    }

    /// Mixed subtraction against a projective Niels cache (4 muls).
    #[inline(always)]
    fn sub_projective_niels(&self, other: &ProjectiveNielsPoint<F>) -> CompletedPoint<F> {
        let pp = self.y.lazy_add(&self.x).mul(&other.y_minus_x);
        let mm = self.y.lazy_sub(&self.x).mul(&other.y_plus_x);
        let tt2d = self.t.mul(&other.t2d);
        let zz = self.z.mul(&other.z);
        let zz2 = zz.lazy_add(&zz);
        CompletedPoint {
            x: pp.lazy_sub(&mm),
            y: pp.lazy_add(&mm),
            z: zz2.lazy_sub(&tt2d),
            t: zz2.lazy_add(&tt2d),
        }
    }

    /// Mixed addition against an affine Niels cache (3 muls).
    #[inline(always)]
    fn add_affine_niels(&self, other: &AffineNielsPoint<F>) -> CompletedPoint<F> {
        let pp = self.y.lazy_add(&self.x).mul(&other.y_plus_x);
        let mm = self.y.lazy_sub(&self.x).mul(&other.y_minus_x);
        let txy2d = self.t.mul(&other.xy2d);
        let z2 = self.z.lazy_add(&self.z);
        CompletedPoint {
            x: pp.lazy_sub(&mm),
            y: pp.lazy_add(&mm),
            z: z2.lazy_add(&txy2d),
            t: z2.lazy_sub(&txy2d),
        }
    }

    /// Mixed subtraction against an affine Niels cache (3 muls).
    #[inline(always)]
    fn sub_affine_niels(&self, other: &AffineNielsPoint<F>) -> CompletedPoint<F> {
        let pp = self.y.lazy_add(&self.x).mul(&other.y_minus_x);
        let mm = self.y.lazy_sub(&self.x).mul(&other.y_plus_x);
        let txy2d = self.t.mul(&other.xy2d);
        let z2 = self.z.lazy_add(&self.z);
        CompletedPoint {
            x: pp.lazy_sub(&mm),
            y: pp.lazy_add(&mm),
            z: z2.lazy_sub(&txy2d),
            t: z2.lazy_add(&txy2d),
        }
    }

    /// `2^k * self` via the cheap projective doubling chain.
    #[inline(always)]
    fn mul_by_pow_2(&self, k: u32) -> EdwardsPoint<F> {
        debug_assert!(k > 0);
        let mut p = self.to_projective_view();
        for _ in 0..k - 1 {
            p = p.double().to_projective();
        }
        p.double().to_extended()
    }

    /// Point addition (unified: also correct for doubling and identity).
    pub fn add(&self, other: &EdwardsPoint<F>) -> EdwardsPoint<F> {
        let y1_plus_x1 = self.y.add(&self.x);
        let y1_minus_x1 = self.y.sub(&self.x);
        let y2_plus_x2 = other.y.add(&other.x);
        let y2_minus_x2 = other.y.sub(&other.x);
        let pp = y1_plus_x1.mul(&y2_plus_x2);
        let mm = y1_minus_x1.mul(&y2_minus_x2);
        let tt2d = self.t.mul(&other.t).mul(F::edwards_d2());
        let zz = self.z.mul(&other.z);
        let zz2 = zz.add(&zz);

        let e = pp.sub(&mm);
        let f = zz2.sub(&tt2d);
        let g = zz2.add(&tt2d);
        let h = pp.add(&mm);

        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Point doubling.
    pub fn double(&self) -> EdwardsPoint<F> {
        self.to_projective_view().double().to_extended()
    }

    /// Point negation.
    pub fn neg(&self) -> EdwardsPoint<F> {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Subtraction.
    pub fn sub(&self, other: &EdwardsPoint<F>) -> EdwardsPoint<F> {
        self.add(&other.neg())
    }

    /// Scalar multiplication with a signed radix-16 fixed window and a
    /// masked table scan (uniform memory access pattern per window).
    pub fn scalar_mul(&self, scalar: &Scalar) -> EdwardsPoint<F> {
        let table = LookupTable::new(self);
        radix16_ladder!(scalar, |acc: EdwardsPoint<F>, d: i8| acc
            .add_projective_niels(&table.select(d)))
    }

    /// The pre-optimization scalar multiplication (fresh table of full
    /// extended points, unified additions throughout).  Kept as a
    /// differential-testing reference and as the bench baseline for the
    /// optimized ladders; never called on a hot path.
    #[doc(hidden)]
    pub fn scalar_mul_reference(&self, scalar: &Scalar) -> EdwardsPoint<F> {
        let mut table = [*self; 8];
        for i in 1..8 {
            table[i] = table[i - 1].add(self);
        }
        let digits = scalar.to_radix_16();
        let mut acc = EdwardsPoint::identity();
        for i in (0..64).rev() {
            acc = acc.double().double().double().double();
            let d = digits[i];
            if d == 0 {
                continue;
            }
            let abs = d.unsigned_abs() as usize;
            let mut chosen = table[0];
            for (j, entry) in table.iter().enumerate() {
                let hit = ((j + 1) == abs) as u64;
                chosen = EdwardsPoint {
                    x: F::select(&chosen.x, &entry.x, hit),
                    y: F::select(&chosen.y, &entry.y, hit),
                    z: F::select(&chosen.z, &entry.z, hit),
                    t: F::select(&chosen.t, &entry.t, hit),
                };
            }
            if d < 0 {
                chosen = chosen.neg();
            }
            acc = acc.add(&chosen);
        }
        acc
    }

    /// Multiply by the cofactor 8.
    pub fn mul_by_cofactor(&self) -> EdwardsPoint<F> {
        self.mul_by_pow_2(3)
    }

    /// Compress to the 32-byte "y plus sign of x" encoding.
    pub fn compress(&self) -> [u8; 32] {
        EdwardsPoint::batch_compress(std::slice::from_ref(self))[0]
    }

    /// Compress a batch of points, sharing one field inversion across
    /// all the `Z` denominators ([`FieldElement::batch_invert`]): `n`
    /// inversions become 1 inversion plus `3n` multiplications.
    pub fn batch_compress(points: &[EdwardsPoint<F>]) -> Vec<[u8; 32]> {
        let mut zs: Vec<F> = points.iter().map(|p| p.z).collect();
        F::batch_invert(&mut zs);
        points
            .iter()
            .zip(&zs)
            .map(|(p, zinv)| {
                let x = p.x.mul(zinv);
                let y = p.y.mul(zinv);
                let mut bytes = y.to_bytes();
                bytes[31] |= (x.is_negative() as u8) << 7;
                bytes
            })
            .collect()
    }

    /// Decompress a 32-byte encoding; `None` if not a curve point.
    pub fn decompress(bytes: &[u8; 32]) -> Option<EdwardsPoint<F>> {
        let y = F::from_bytes(bytes);
        let sign = (bytes[31] >> 7) & 1;

        // x^2 = (y^2 - 1) / (d y^2 + 1)
        let yy = y.square();
        let u = yy.sub(&F::ONE);
        let v = yy.mul(F::edwards_d()).add(&F::ONE);
        let (is_valid, mut x) = F::sqrt_ratio_i(&u, &v);
        if !is_valid {
            return None;
        }
        if x.is_zero() && sign == 1 {
            return None; // "-0" is not a valid encoding
        }
        if (x.is_negative() as u8) != sign {
            x = x.neg();
        }
        Some(EdwardsPoint {
            x,
            y,
            z: F::ONE,
            t: x.mul(&y),
        })
    }

    /// Variable-time multi-scalar multiplication `sum_i scalars[i] *
    /// points[i]`.
    ///
    /// **Variable time**: the memory access pattern and instruction
    /// count depend on the scalars.  Only ever call this with *public*
    /// data — batched proof verification, where scalars are
    /// verifier-generated random coefficients and proof responses, all
    /// of which travel in cleartext anyway.  Secret exponents
    /// (`msk`/`bsk`/`isk`, sealing randomness) must use the masked-scan
    /// ladders above.
    ///
    /// Strategy: Straus with width-5 NAF tables below
    /// `PIPPENGER_THRESHOLD` points, Pippenger bucketing above it.
    pub fn vartime_multiscalar_mul(
        scalars: &[Scalar],
        points: &[EdwardsPoint<F>],
    ) -> EdwardsPoint<F> {
        assert_eq!(scalars.len(), points.len(), "one scalar per point");
        if points.is_empty() {
            return EdwardsPoint::identity();
        }
        if points.len() < PIPPENGER_THRESHOLD {
            vartime_straus(scalars, points)
        } else {
            vartime_pippenger(scalars, points)
        }
    }

    /// Variable-time single-scalar multiplication (width-5 NAF).
    ///
    /// **Variable time** — public data only (see
    /// [`EdwardsPoint::vartime_multiscalar_mul`]); the §6.3 batch-open
    /// path uses it with the *revealed* inner keys.
    pub fn vartime_scalar_mul(&self, scalar: &Scalar) -> EdwardsPoint<F> {
        vartime_straus(std::slice::from_ref(scalar), std::slice::from_ref(self))
    }

    /// Projective equality: `X1 Z2 == X2 Z1 && Y1 Z2 == Y2 Z1`.
    pub fn ct_eq(&self, other: &EdwardsPoint<F>) -> bool {
        let lhs_x = self.x.mul(&other.z);
        let rhs_x = other.x.mul(&self.z);
        let lhs_y = self.y.mul(&other.z);
        let rhs_y = other.y.mul(&self.z);
        lhs_x.ct_eq(&rhs_x) && lhs_y.ct_eq(&rhs_y)
    }

    /// True iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.ct_eq(&EdwardsPoint::identity())
    }

    /// Debug check: the point satisfies the curve equation and the
    /// extended-coordinate invariant `XY = ZT`.
    pub fn is_on_curve(&self) -> bool {
        let xx = self.x.square();
        let yy = self.y.square();
        let zz = self.z.square();
        let zzzz = zz.square();
        // (-X^2 + Y^2) Z^2 == Z^4 + d X^2 Y^2
        let lhs = yy.sub(&xx).mul(&zz);
        let rhs = zzzz.add(&F::edwards_d().mul(&xx).mul(&yy));
        let ok_curve = lhs.ct_eq(&rhs);
        let ok_t = self.x.mul(&self.y).ct_eq(&self.z.mul(&self.t));
        ok_curve && ok_t
    }
}

impl EdwardsPoint {
    /// The Ed25519 basepoint (build-selected backend only: the cached
    /// static and the precomputed `base_mul` table below are per-build).
    pub fn basepoint() -> &'static EdwardsPoint {
        static B: OnceLock<EdwardsPoint> = OnceLock::new();
        B.get_or_init(|| {
            EdwardsPoint::decompress(&BASEPOINT_COMPRESSED)
                .expect("basepoint constant decompresses")
        })
    }

    /// `scalar * basepoint`, using a precomputed radix-16 table (no
    /// doublings: 64 table lookups + affine Niels additions).  This is
    /// the hot operation of client sealing (`g^x`, `g^y`, proof
    /// commitments).
    pub fn base_mul(scalar: &Scalar) -> EdwardsPoint {
        let table = basepoint_table();
        let digits = scalar.to_radix_16();
        let mut acc = EdwardsPoint::identity();
        for (window, &d) in digits.iter().enumerate() {
            let (sign, abs) = digit_sign_abs(d);
            let row = &table.windows[window];
            let mut chosen = AffineNielsPoint::IDENTITY.masked(ct_eq_index(0, abs));
            for (j, entry) in row.iter().enumerate() {
                chosen.accumulate(entry, ct_eq_index(j as u64 + 1, abs));
            }
            acc = acc
                .add_affine_niels(&chosen.conditional_negate(sign))
                .to_extended();
        }
        acc
    }
}

impl<F: FieldBackend> PartialEq for EdwardsPoint<F> {
    fn eq(&self, other: &Self) -> bool {
        self.ct_eq(other)
    }
}
impl<F: FieldBackend> Eq for EdwardsPoint<F> {}

// ---------------------------------------------------------------------
// Variable-time multi-scalar multiplication (public data only)
// ---------------------------------------------------------------------

/// Below this point count Straus beats Pippenger (per-point NAF tables
/// amortize); above it the bucket method wins.  Matches the crossover
/// measured in `xrd-bench`'s `batch_crypto` bench on 64..512 points.
const PIPPENGER_THRESHOLD: usize = 190;

/// Per-point table of odd multiples `[1P, 3P, 5P, ..., 15P]` for
/// width-5 NAF (variable-time lookups: plain indexing, no masked scan).
struct NafLookupTable5<F: FieldBackend>([ProjectiveNielsPoint<F>; 8]);

impl<F: FieldBackend> NafLookupTable5<F> {
    fn new(p: &EdwardsPoint<F>) -> NafLookupTable5<F> {
        let p2 = p.double().to_projective_niels();
        let mut odd = [p.to_projective_niels(); 8];
        let mut current = *p;
        for i in 1..8 {
            current = current.add_projective_niels(&p2).to_extended();
            odd[i] = current.to_projective_niels();
        }
        NafLookupTable5(odd)
    }

    /// Entry for odd positive `d` (variable time).
    #[inline(always)]
    fn select(&self, d: i8) -> &ProjectiveNielsPoint<F> {
        debug_assert!(d > 0 && d % 2 == 1);
        &self.0[(d as usize) / 2]
    }
}

/// Straus' interleaved method over width-5 NAFs.
fn vartime_straus<F: FieldBackend>(
    scalars: &[Scalar],
    points: &[EdwardsPoint<F>],
) -> EdwardsPoint<F> {
    let nafs: Vec<[i8; 256]> = scalars.iter().map(|s| s.non_adjacent_form(5)).collect();
    let tables: Vec<NafLookupTable5<F>> = points.iter().map(NafLookupTable5::new).collect();

    let mut acc = EdwardsPoint::identity();
    let mut started = false;
    for i in (0..256).rev() {
        if started {
            acc = acc.double();
        }
        for (naf, table) in nafs.iter().zip(&tables) {
            let d = naf[i];
            if d > 0 {
                acc = acc.add_projective_niels(table.select(d)).to_extended();
                started = true;
            } else if d < 0 {
                acc = acc.sub_projective_niels(table.select(-d)).to_extended();
                started = true;
            }
        }
    }
    acc
}

/// Normalize a slice of extended points to affine Niels caches with a
/// single shared field inversion.
fn batch_to_affine_niels<F: FieldBackend>(points: &[EdwardsPoint<F>]) -> Vec<AffineNielsPoint<F>> {
    let mut zs: Vec<F> = points.iter().map(|p| p.z).collect();
    F::batch_invert(&mut zs);
    let d2 = F::edwards_d2();
    points
        .iter()
        .zip(&zs)
        .map(|(p, zinv)| {
            let x = p.x.mul(zinv);
            let y = p.y.mul(zinv);
            AffineNielsPoint {
                y_plus_x: y.lazy_add(&x),
                y_minus_x: y.lazy_sub(&x),
                xy2d: x.mul(&y).mul(d2),
            }
        })
        .collect()
}

/// Normalize 8-wide rows of window multiples to affine Niels form,
/// sharing a single field inversion across the whole table.
fn rows_to_affine_niels<F: FieldBackend>(
    rows: &[[EdwardsPoint<F>; 8]],
) -> Vec<[AffineNielsPoint<F>; 8]> {
    let flat: Vec<EdwardsPoint<F>> = rows.iter().flatten().copied().collect();
    batch_to_affine_niels(&flat)
        .chunks_exact(8)
        .map(|row| {
            let mut out = [AffineNielsPoint::IDENTITY; 8];
            out.copy_from_slice(row);
            out
        })
        .collect()
}

/// Pippenger's bucket method with signed radix-2^c digits.
fn vartime_pippenger<F: FieldBackend>(
    scalars: &[Scalar],
    points: &[EdwardsPoint<F>],
) -> EdwardsPoint<F> {
    // Window size tuned by problem size (standard heuristic).
    let c: usize = if points.len() < 500 { 7 } else { 8 };
    let digits_count = 256usize.div_ceil(c);
    let buckets_count = 1usize << (c - 1);

    let digits: Vec<Vec<i64>> = scalars.iter().map(|s| s.to_signed_radix_2w(c)).collect();
    // Affine caches (one shared inversion) make every digit placement a
    // 3-mul mixed addition instead of 4.
    let cached: Vec<AffineNielsPoint<F>> = batch_to_affine_niels(points);

    let mut total = EdwardsPoint::identity();
    let mut started = false;
    for w in (0..digits_count).rev() {
        if started {
            for _ in 0..c {
                total = total.double();
            }
        }
        // Fill buckets for this window.
        let mut buckets = vec![EdwardsPoint::identity(); buckets_count];
        for (digit_row, point) in digits.iter().zip(&cached) {
            let d = digit_row[w];
            match d.cmp(&0) {
                std::cmp::Ordering::Greater => {
                    let b = (d - 1) as usize;
                    buckets[b] = buckets[b].add_affine_niels(point).to_extended();
                }
                std::cmp::Ordering::Less => {
                    let b = (-d - 1) as usize;
                    buckets[b] = buckets[b].sub_affine_niels(point).to_extended();
                }
                std::cmp::Ordering::Equal => {}
            }
        }
        // sum_j (j+1) * buckets[j] via running suffix sums.
        let mut running = EdwardsPoint::identity();
        let mut window_sum = EdwardsPoint::identity();
        let mut any = false;
        for bucket in buckets.iter().rev() {
            running = running.add(bucket);
            window_sum = window_sum.add(&running);
        }
        for digit_row in &digits {
            if digit_row[w] != 0 {
                any = true;
                break;
            }
        }
        total = total.add(&window_sum);
        started = started || any;
    }
    total
}

/// Precomputed multiples of the basepoint in affine Niels form:
/// `windows[i][j] = (j+1) * 16^i * B` for the 64 radix-16 digit
/// positions, normalized with a single shared inversion.
struct BasepointTable {
    windows: Vec<[AffineNielsPoint; 8]>,
}

fn basepoint_table() -> &'static BasepointTable {
    static TABLE: OnceLock<BasepointTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        // All 64*8 multiples in extended coordinates first...
        let mut rows: Vec<[EdwardsPoint; 8]> = Vec::with_capacity(64);
        let mut base = *EdwardsPoint::basepoint();
        for _ in 0..64 {
            let cached = base.to_projective_niels();
            let mut row = [base; 8];
            for j in 1..8 {
                row[j] = row[j - 1].add_projective_niels(&cached).to_extended();
            }
            rows.push(row);
            // base = 16 * base for the next digit position.
            base = base.mul_by_pow_2(4);
        }
        // ...then one batched normalization for the whole table.
        BasepointTable {
            windows: rows_to_affine_niels(&rows),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::to_hex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basepoint_is_on_curve() {
        assert!(EdwardsPoint::basepoint().is_on_curve());
    }

    #[test]
    fn basepoint_compress_roundtrip() {
        assert_eq!(EdwardsPoint::basepoint().compress(), BASEPOINT_COMPRESSED);
    }

    #[test]
    fn known_multiples_of_basepoint() {
        // Vectors generated from an independent (Python) implementation.
        let b = EdwardsPoint::basepoint();
        assert_eq!(
            to_hex(&b.double().compress()),
            "c9a3f86aae465f0e56513864510f3997561fa2c9e85ea21dc2292309f3cd6022"
        );
        assert_eq!(
            to_hex(&b.double().add(b).compress()),
            "d4b4f5784868c3020403246717ec169ff79e26608ea126a1ab69ee77d1b16712"
        );
        assert_eq!(
            to_hex(&b.scalar_mul(&Scalar::from_u64(9)).compress()),
            "c0f1225584444ec730446e231390781ffdd2f256e9fcbeb2f40dddc2c2233d7f"
        );
    }

    /// Both field backends must produce byte-identical curve behavior:
    /// decompress → ladder → compress agrees limb-for-limb after
    /// canonical encoding (the cross-backend proptests go further; this
    /// is the smoke check that lives next to the formulas).
    #[test]
    fn backends_agree_on_scalar_mul() {
        use crate::field::{fiat51, sat64};
        let mut rng = StdRng::seed_from_u64(4242);
        for _ in 0..4 {
            let s = Scalar::random(&mut rng);
            let enc = EdwardsPoint::basepoint()
                .scalar_mul(&Scalar::random(&mut rng))
                .compress();
            let p51: EdwardsPoint<fiat51::FieldElement> =
                EdwardsPoint::decompress(&enc).expect("valid point");
            let p64: EdwardsPoint<sat64::FieldElement> =
                EdwardsPoint::decompress(&enc).expect("valid point");
            assert_eq!(p51.scalar_mul(&s).compress(), p64.scalar_mul(&s).compress());
        }
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let b = EdwardsPoint::basepoint();
        let mut acc = EdwardsPoint::identity();
        for k in 0..20u64 {
            assert!(acc.ct_eq(&b.scalar_mul(&Scalar::from_u64(k))));
            assert!(acc.is_on_curve());
            acc = acc.add(b);
        }
    }

    #[test]
    fn scalar_mul_matches_reference() {
        // The optimized mixed-coordinate ladder must agree with the
        // retained reference implementation on random and edge scalars.
        let mut rng = StdRng::seed_from_u64(70);
        let p = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
        for _ in 0..10 {
            let s = Scalar::random(&mut rng);
            assert!(p.scalar_mul(&s).ct_eq(&p.scalar_mul_reference(&s)));
        }
        for k in [0u64, 1, 2, 7, 8, 9, 15, 16, 17, 255, 256] {
            let s = Scalar::from_u64(k);
            assert!(p.scalar_mul(&s).ct_eq(&p.scalar_mul_reference(&s)), "k={k}");
        }
        let l_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
        assert!(p
            .scalar_mul(&l_minus_1)
            .ct_eq(&p.scalar_mul_reference(&l_minus_1)));
    }

    #[test]
    fn point_table_matches_scalar_mul() {
        let mut rng = StdRng::seed_from_u64(71);
        let points: Vec<EdwardsPoint> = (0..5)
            .map(|_| EdwardsPoint::base_mul(&Scalar::random(&mut rng)))
            .collect();
        let tables = PointTable::batch_new(&points);
        for (p, table) in points.iter().zip(&tables) {
            for _ in 0..4 {
                let s = Scalar::random(&mut rng);
                assert!(table.scalar_mul(&s).ct_eq(&p.scalar_mul(&s)));
            }
            for k in [0u64, 1, 8, 16] {
                let s = Scalar::from_u64(k);
                assert!(table.scalar_mul(&s).ct_eq(&p.scalar_mul(&s)), "k={k}");
            }
        }
        // Single-point constructor agrees with the batch one.
        let single = PointTable::new(&points[0]);
        let s = Scalar::random(&mut rng);
        assert!(single.scalar_mul(&s).ct_eq(&points[0].scalar_mul(&s)));
    }

    #[test]
    fn point_table_pair_matches_two_muls() {
        let mut rng = StdRng::seed_from_u64(72);
        let p = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
        let table = PointTable::new(&p);
        for _ in 0..5 {
            let a = Scalar::random(&mut rng);
            let b = Scalar::random(&mut rng);
            let (pa, pb) = table.scalar_mul_pair(&a, &b);
            assert!(pa.ct_eq(&p.scalar_mul(&a)));
            assert!(pb.ct_eq(&p.scalar_mul(&b)));
        }
        let (z, o) = table.scalar_mul_pair(&Scalar::ZERO, &Scalar::ONE);
        assert!(z.is_identity());
        assert!(o.ct_eq(&p));
    }

    #[test]
    fn base_mul_matches_generic_scalar_mul() {
        // The table-driven base_mul must agree with the generic ladder
        // for random scalars and all small/edge scalars.
        let mut rng = StdRng::seed_from_u64(77);
        let b = EdwardsPoint::basepoint();
        for _ in 0..10 {
            let s = Scalar::random(&mut rng);
            assert!(EdwardsPoint::base_mul(&s).ct_eq(&b.scalar_mul(&s)));
        }
        for k in [0u64, 1, 2, 7, 8, 9, 15, 16, 17, 255, 256] {
            let s = Scalar::from_u64(k);
            assert!(EdwardsPoint::base_mul(&s).ct_eq(&b.scalar_mul(&s)), "k={k}");
        }
        let l_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
        assert!(EdwardsPoint::base_mul(&l_minus_1).ct_eq(&b.scalar_mul(&l_minus_1)));
    }

    #[test]
    fn group_order_annihilates_basepoint() {
        // l * B == identity, (l-1) * B == -B
        let l_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
        let p = EdwardsPoint::base_mul(&l_minus_1);
        assert!(p.ct_eq(&EdwardsPoint::basepoint().neg()));
        assert!(p.add(EdwardsPoint::basepoint()).is_identity());
    }

    #[test]
    fn add_is_commutative_and_associative() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
        let q = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
        let r = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
        assert!(p.add(&q).ct_eq(&q.add(&p)));
        assert!(p.add(&q).add(&r).ct_eq(&p.add(&q.add(&r))));
    }

    #[test]
    fn double_matches_add_self() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
        assert!(p.double().ct_eq(&p.add(&p)));
    }

    #[test]
    fn scalar_mul_homomorphism() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Scalar::random(&mut rng);
        let b = Scalar::random(&mut rng);
        let lhs = EdwardsPoint::base_mul(&a.add(&b));
        let rhs = EdwardsPoint::base_mul(&a).add(&EdwardsPoint::base_mul(&b));
        assert!(lhs.ct_eq(&rhs));
    }

    #[test]
    fn vartime_scalar_mul_matches_ct() {
        let mut rng = StdRng::seed_from_u64(78);
        let p = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
        for _ in 0..8 {
            let s = Scalar::random(&mut rng);
            assert!(p.vartime_scalar_mul(&s).ct_eq(&p.scalar_mul(&s)));
        }
        for k in [0u64, 1, 2, 16, 31, 32] {
            let s = Scalar::from_u64(k);
            assert!(p.vartime_scalar_mul(&s).ct_eq(&p.scalar_mul(&s)), "k={k}");
        }
    }

    #[test]
    fn multiscalar_small_matches_naive() {
        let mut rng = StdRng::seed_from_u64(79);
        for n in [0usize, 1, 2, 3, 8, 20] {
            let scalars: Vec<Scalar> = (0..n).map(|_| Scalar::random(&mut rng)).collect();
            let points: Vec<EdwardsPoint> = (0..n)
                .map(|_| EdwardsPoint::base_mul(&Scalar::random(&mut rng)))
                .collect();
            let naive = scalars
                .iter()
                .zip(&points)
                .fold(EdwardsPoint::identity(), |acc, (s, p)| {
                    acc.add(&p.scalar_mul(s))
                });
            let fast = EdwardsPoint::vartime_multiscalar_mul(&scalars, &points);
            assert!(fast.ct_eq(&naive), "n={n}");
        }
    }

    #[test]
    fn multiscalar_pippenger_matches_straus() {
        // Force both code paths over the same input.
        let mut rng = StdRng::seed_from_u64(80);
        let n = PIPPENGER_THRESHOLD + 5;
        let scalars: Vec<Scalar> = (0..n).map(|_| Scalar::random(&mut rng)).collect();
        let points: Vec<EdwardsPoint> = (0..n)
            .map(|_| EdwardsPoint::base_mul(&Scalar::random(&mut rng)))
            .collect();
        let a = vartime_straus(&scalars, &points);
        let b = vartime_pippenger(&scalars, &points);
        assert!(a.ct_eq(&b));
        assert!(EdwardsPoint::vartime_multiscalar_mul(&scalars, &points).ct_eq(&a));
    }

    #[test]
    fn batch_compress_matches_compress() {
        let mut rng = StdRng::seed_from_u64(81);
        let mut points: Vec<EdwardsPoint> = (0..9)
            .map(|_| EdwardsPoint::base_mul(&Scalar::random(&mut rng)))
            .collect();
        points.push(EdwardsPoint::identity());
        let batch = EdwardsPoint::batch_compress(&points);
        for (p, enc) in points.iter().zip(&batch) {
            assert_eq!(*enc, p.compress());
        }
        assert!(EdwardsPoint::<FieldElement>::batch_compress(&[]).is_empty());
    }

    #[test]
    fn decompress_rejects_non_points() {
        // y = 2 gives x^2 non-square on this curve.
        let mut bytes = [0u8; 32];
        bytes[0] = 2;
        assert!(EdwardsPoint::<FieldElement>::decompress(&bytes).is_none());
    }

    #[test]
    fn decompress_rejects_negative_zero() {
        // y = 1 (identity) with sign bit set: x = -0 is invalid.
        let mut bytes = [0u8; 32];
        bytes[0] = 1;
        bytes[31] = 0x80;
        assert!(EdwardsPoint::<FieldElement>::decompress(&bytes).is_none());
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..8 {
            let p = EdwardsPoint::base_mul(&Scalar::random(&mut rng));
            let c = p.compress();
            let q = EdwardsPoint::<FieldElement>::decompress(&c).unwrap();
            assert!(p.ct_eq(&q));
            assert_eq!(q.compress(), c);
        }
    }

    #[test]
    fn identity_behaves() {
        let id = EdwardsPoint::identity();
        let b = EdwardsPoint::basepoint();
        assert!(id.add(b).ct_eq(b));
        assert!(b.add(&id).ct_eq(b));
        assert!(b.sub(b).is_identity());
        assert!(id.is_on_curve());
        assert!(id.double().is_identity());
        assert!(b.scalar_mul(&Scalar::ZERO).is_identity());
    }
}
