//! Small shared helpers: little-endian load/store and hex (for tests and
//! debugging output).

/// Load 8 little-endian bytes as a `u64`.
#[inline(always)]
pub fn load_u64_le(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(b)
}

/// Load 4 little-endian bytes as a `u32`.
#[inline(always)]
pub fn load_u32_le(bytes: &[u8]) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(b)
}

/// Encode bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decode a lowercase/uppercase hex string; panics on malformed input
/// (intended for test vectors and fixed constants only).
pub fn from_hex(s: &str) -> Vec<u8> {
    assert!(
        s.len().is_multiple_of(2),
        "hex string must have even length"
    );
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("invalid hex"))
        .collect()
}

/// Constant-time byte-slice equality (same length required).
pub fn ct_bytes_eq(a: &[u8], b: &[u8]) -> bool {
    assert_eq!(a.len(), b.len());
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data = [0x00u8, 0x01, 0xab, 0xff, 0x7f];
        assert_eq!(from_hex(&to_hex(&data)), data);
    }

    #[test]
    fn load_le() {
        let bytes = [1u8, 0, 0, 0, 0, 0, 0, 0x80];
        assert_eq!(load_u64_le(&bytes), 0x8000_0000_0000_0001);
        assert_eq!(load_u32_le(&bytes[..4]), 1);
    }

    #[test]
    fn ct_eq_works() {
        assert!(ct_bytes_eq(b"abc", b"abc"));
        assert!(!ct_bytes_eq(b"abc", b"abd"));
    }
}
