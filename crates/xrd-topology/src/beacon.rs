//! Public randomness beacon.
//!
//! The paper (§5.2.1) uses unbiased public randomness sources (Bitcoin
//! beacons, scalable bias-resistant randomness \[7, 43\]) to sample the mix
//! chains.  The property the protocol needs is that the randomness is
//! *public, unbiased, and agreed upon*; for the reproduction we derive it
//! deterministically from a seed per epoch, which is the standard test
//! substitute (every participant computes the same value, nobody can
//! bias it after the seed is fixed).

use xrd_crypto::blake2b::Blake2b;
use xrd_crypto::ChaChaRng;

/// A deterministic public randomness beacon.
#[derive(Clone, Debug)]
pub struct Beacon {
    seed: [u8; 32],
}

impl Beacon {
    /// Create a beacon from a 32-byte seed (in deployment: the genesis
    /// randomness from drand/Bitcoin).
    pub fn new(seed: [u8; 32]) -> Beacon {
        Beacon { seed }
    }

    /// Convenience constructor from a u64 (tests and experiments).
    pub fn from_u64(seed: u64) -> Beacon {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        Beacon::new(bytes)
    }

    /// The beacon output for an epoch: 32 public random bytes.
    pub fn randomness(&self, epoch: u64) -> [u8; 32] {
        let mut h = Blake2b::new(32);
        h.update(b"xrd-beacon-v1");
        h.update(&self.seed);
        h.update(&epoch.to_le_bytes());
        h.finalize_32()
    }

    /// A deterministic RNG seeded from the epoch's beacon output; all
    /// participants derive the identical stream.
    pub fn rng(&self, epoch: u64) -> ChaChaRng {
        ChaChaRng::new(self.randomness(epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn deterministic_across_instances() {
        let b1 = Beacon::from_u64(7);
        let b2 = Beacon::from_u64(7);
        assert_eq!(b1.randomness(0), b2.randomness(0));
        assert_eq!(b1.rng(3).next_u64(), b2.rng(3).next_u64());
    }

    #[test]
    fn epochs_differ() {
        let b = Beacon::from_u64(7);
        assert_ne!(b.randomness(0), b.randomness(1));
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(
            Beacon::from_u64(1).randomness(0),
            Beacon::from_u64(2).randomness(0)
        );
    }
}
