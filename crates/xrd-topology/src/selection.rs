//! The chain-selection algorithm (§5.3.1): users are partitioned into
//! `ℓ+1` groups, each connected to `ℓ ≈ √(2n)` chains, such that **every
//! pair of groups shares at least one chain** — the property that makes
//! any pair of users equally plausible conversation partners.
//!
//! Construction (1-based, as in the paper): `C_1 = {1, …, ℓ}` and
//! `C_{i+1} = {C_1[i], C_2[i], …, C_i[i], C_i[ℓ]+1, …, C_i[ℓ]+(ℓ−i)}`.
//! Group `a` and group `b > a` then share chain `C_a[b−1]`.
//!
//! The construction uses `(ℓ²+ℓ)/2` *virtual* chains; when this exceeds
//! the number of real chains `n`, virtual ids wrap modulo `n` (merging
//! chains only adds intersections, so the pairwise property survives —
//! see DESIGN.md §7).

use xrd_crypto::blake2b::Blake2b;

use crate::chains::ChainId;

/// `ℓ = ⌈√(2n + 0.25) − 0.5⌉`: the number of chains each user connects
/// to, a √2-approximation of the optimal √n (§5.3.1).
pub fn ell_for_chains(n_chains: usize) -> usize {
    assert!(n_chains > 0);
    let ell = ((2.0 * n_chains as f64 + 0.25).sqrt() - 0.5).ceil() as usize;
    ell.max(1)
}

/// The per-group chain sets.  `groups[g]` is the ordered list of `ℓ` real
/// chain ids that users in group `g` send to each round (possibly with
/// repeats after modular wrapping).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectionTable {
    /// Number of real chains `n`.
    pub n_chains: usize,
    /// `ℓ`.
    pub ell: usize,
    /// `ℓ+1` groups, each an ordered list of `ℓ` chain ids.
    pub groups: Vec<Vec<ChainId>>,
}

impl SelectionTable {
    /// Build the table for `n` real chains.
    #[allow(clippy::needless_range_loop)] // mirrors the paper's C_x[y] indexing
    pub fn build(n_chains: usize) -> SelectionTable {
        let ell = ell_for_chains(n_chains);
        // Virtual chain ids are 1-based to match the paper's arithmetic.
        let mut virt: Vec<Vec<u64>> = Vec::with_capacity(ell + 1);
        virt.push((1..=ell as u64).collect());
        for i in 1..=ell {
            // C_{i+1} = {C_1[i], ..., C_i[i]} ∪ {C_i[ℓ]+1, ..., C_i[ℓ]+(ℓ-i)}
            // (paper's 1-based C_x[y]; here y = i means index i-1... note
            // the paper's C_x[i] at construction step i is the i-th entry,
            // 0-based index i-1).
            let mut set = Vec::with_capacity(ell);
            for a in 0..i {
                set.push(virt[a][i - 1]);
            }
            let base = virt[i - 1][ell - 1];
            for j in 1..=(ell - i) as u64 {
                set.push(base + j);
            }
            debug_assert_eq!(set.len(), ell);
            virt.push(set);
        }
        let groups = virt
            .into_iter()
            .map(|set| {
                set.into_iter()
                    .map(|v| ChainId(((v - 1) % n_chains as u64) as u32))
                    .collect()
            })
            .collect();
        SelectionTable {
            n_chains,
            ell,
            groups,
        }
    }

    /// Number of groups (`ℓ+1`).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Publicly computable group assignment: hash of the user's public
    /// key modulo the group count (§5.3.1 "assigning each user to a
    /// pseudo-random group based on the hash of the user's public key").
    pub fn group_of(&self, user_pk: &[u8; 32]) -> usize {
        let mut h = Blake2b::new(32);
        h.update(b"xrd-group-assignment-v1");
        h.update(user_pk);
        let digest = h.finalize_32();
        let x = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes"));
        (x % self.num_groups() as u64) as usize
    }

    /// The chains a user in group `g` sends to.
    pub fn chains_of_group(&self, g: usize) -> &[ChainId] {
        &self.groups[g]
    }

    /// The meeting chain for two groups: the smallest-id chain in the
    /// intersection (the paper's deterministic tie-break, §5.3.2).
    /// `None` only if the construction were broken (checked by tests).
    pub fn meeting_chain(&self, group_a: usize, group_b: usize) -> Option<ChainId> {
        let set_a: std::collections::BTreeSet<ChainId> =
            self.groups[group_a].iter().copied().collect();
        self.groups[group_b]
            .iter()
            .filter(|c| set_a.contains(c))
            .copied()
            .min()
    }

    /// Expected number of messages arriving at each chain per round if
    /// `m_users` users each send `ℓ` messages (load-balance diagnostics).
    pub fn chain_loads(&self, m_users: u64) -> Vec<f64> {
        let per_group = m_users as f64 / self.num_groups() as f64;
        let mut load = vec![0.0f64; self.n_chains];
        for group in &self.groups {
            for c in group {
                load[c.0 as usize] += per_group;
            }
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ell_values() {
        // (ℓ²+ℓ)/2 should be the smallest triangular number >= n.
        for n in [1usize, 2, 3, 6, 10, 50, 100, 1000, 2000] {
            let ell = ell_for_chains(n);
            let tri = ell * (ell + 1) / 2;
            assert!(tri >= n, "n={n}, ell={ell}");
            if ell > 1 {
                let tri_prev = (ell - 1) * ell / 2;
                assert!(tri_prev < n, "ell too large for n={n}");
            }
        }
        // Spot values: n=100 -> ℓ=14 ((14²+14)/2 = 105 ≥ 100).
        assert_eq!(ell_for_chains(100), 14);
        assert_eq!(ell_for_chains(3), 2);
        assert_eq!(ell_for_chains(6), 3);
    }

    #[test]
    fn every_pair_of_groups_intersects() {
        for n in [1usize, 2, 3, 5, 10, 16, 50, 100, 333, 1000] {
            let table = SelectionTable::build(n);
            for a in 0..table.num_groups() {
                for b in 0..table.num_groups() {
                    assert!(
                        table.meeting_chain(a, b).is_some(),
                        "groups {a},{b} don't intersect (n={n})"
                    );
                }
            }
        }
    }

    #[test]
    fn groups_have_ell_chains() {
        for n in [4usize, 10, 100, 500] {
            let table = SelectionTable::build(n);
            assert_eq!(table.num_groups(), table.ell + 1);
            for g in &table.groups {
                assert_eq!(g.len(), table.ell);
                for c in g {
                    assert!((c.0 as usize) < n);
                }
            }
        }
    }

    #[test]
    fn same_group_meets_on_first_chain() {
        let table = SelectionTable::build(100);
        for g in 0..table.num_groups() {
            let meet = table.meeting_chain(g, g).unwrap();
            let min = table.groups[g].iter().copied().min().unwrap();
            assert_eq!(meet, min);
        }
    }

    #[test]
    fn meeting_chain_is_symmetric() {
        let table = SelectionTable::build(64);
        for a in 0..table.num_groups() {
            for b in 0..table.num_groups() {
                assert_eq!(table.meeting_chain(a, b), table.meeting_chain(b, a));
            }
        }
    }

    #[test]
    fn paper_construction_without_wrapping() {
        // n = 6 = (3²+3)/2: no wrapping, pure paper construction, ℓ = 3.
        // C1 = {1,2,3}, C2 = {C1[1], C1[3]+1, C1[3]+2} = {1,4,5},
        // C3 = {C1[2], C2[2], C2[3]+1} = {2,4,6},
        // C4 = {C1[3], C2[3], C3[3]} = {3,5,6}.   (1-based)
        let table = SelectionTable::build(6);
        assert_eq!(table.ell, 3);
        let expect: Vec<Vec<u32>> =
            vec![vec![0, 1, 2], vec![0, 3, 4], vec![1, 3, 5], vec![2, 4, 5]];
        let got: Vec<Vec<u32>> = table
            .groups
            .iter()
            .map(|g| g.iter().map(|c| c.0).collect())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn group_assignment_is_deterministic_and_spread() {
        let table = SelectionTable::build(100);
        let mut counts = vec![0usize; table.num_groups()];
        for i in 0..3000u32 {
            let mut pk = [0u8; 32];
            pk[..4].copy_from_slice(&i.to_le_bytes());
            let g = table.group_of(&pk);
            assert_eq!(g, table.group_of(&pk));
            counts[g] += 1;
        }
        // Roughly even: each group should get within 3x of fair share.
        let fair = 3000.0 / table.num_groups() as f64;
        for (g, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > fair / 3.0 && (c as f64) < fair * 3.0,
                "group {g} has {c} users (fair {fair})"
            );
        }
    }

    #[test]
    fn load_is_balanced() {
        // §5.3.1 distributes the load evenly: with the triangular-number
        // construction each chain is used by at most a few groups.
        let table = SelectionTable::build(105); // = (14²+14)/2, no wrap
        let loads = table.chain_loads(105_000);
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        // Every virtual chain is used exactly twice across groups in the
        // unwrapped construction (each chain C_a[b-1] connects groups a,b).
        assert!(min > 0.0);
        assert!(max / min <= 2.0 + 1e-9, "max={max} min={min}");
    }

    #[test]
    fn wrapped_construction_still_covers_all_chains() {
        let table = SelectionTable::build(100); // 105 virtual -> 100 real
        let loads = table.chain_loads(1000);
        let unused = loads.iter().filter(|&&l| l == 0.0).count();
        assert_eq!(unused, 0, "all real chains should receive load");
    }
}
