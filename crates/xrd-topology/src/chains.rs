//! Anytrust mix-chain formation (§5.2.1).
//!
//! Chains of length `k` are sampled from the public randomness beacon so
//! that, except with probability < 2^-64, every chain contains at least
//! one honest server.  Positions within chains are then *staggered* so a
//! server sitting in several chains occupies different pipeline stages in
//! each, minimizing idle time (a pure performance optimization with no
//! security impact — the anytrust argument only needs membership).

use rand::Rng;

use crate::beacon::Beacon;

/// Identifies a physical server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

/// Identifies a mix chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainId(pub u32);

/// One mix chain: an ordered list of servers (position = pipeline hop).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// This chain's id (index into the topology's chain list).
    pub id: ChainId,
    /// Servers in hop order; `members[0]` receives user submissions.
    pub members: Vec<ServerId>,
}

/// Smallest chain length `k` such that `n_chains * f^k < 2^-security_bits`
/// (§5.2.1's union bound).  `f` is the assumed fraction of malicious
/// servers.
pub fn chain_length(f: f64, n_chains: usize, security_bits: u32) -> usize {
    assert!((0.0..1.0).contains(&f), "f must be in [0, 1)");
    assert!(n_chains > 0);
    if f == 0.0 {
        return 1;
    }
    // k > (security_bits + log2(n)) / -log2(f)
    let needed = (security_bits as f64 + (n_chains as f64).log2()) / -f.log2();
    (needed.floor() as usize + 1).max(1)
}

/// Sample `n_chains` chains of length `k` over `n_servers` servers from
/// the beacon's epoch randomness.  Within a chain, members are distinct;
/// across chains sampling is independent, so a server appears in
/// `n_chains * k / n_servers` chains in expectation (k chains when
/// `n_chains == n_servers`, as XRD configures).
pub fn form_chains(
    beacon: &Beacon,
    epoch: u64,
    n_servers: usize,
    n_chains: usize,
    k: usize,
) -> Vec<Chain> {
    assert!(k >= 1, "chains need at least one server");
    assert!(
        n_servers >= k,
        "need at least k distinct servers per chain (n_servers={n_servers}, k={k})"
    );
    let mut rng = beacon.rng(epoch).fork("chain-formation");
    let mut chains = Vec::with_capacity(n_chains);
    for id in 0..n_chains {
        // Partial Fisher-Yates: first k entries of a shuffle.
        let mut pool: Vec<u32> = (0..n_servers as u32).collect();
        for i in 0..k {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        chains.push(Chain {
            id: ChainId(id as u32),
            members: pool[..k].iter().map(|&s| ServerId(s)).collect(),
        });
    }
    stagger(&mut chains, n_servers);
    chains
}

/// Reorder members within each chain so each server's positions are
/// spread across the chains it belongs to.  Greedy: process chains in
/// order; at each position pick the not-yet-placed member who has used
/// that position least.
#[allow(clippy::needless_range_loop)] // hop positions are the subject here
fn stagger(chains: &mut [Chain], n_servers: usize) {
    let k = chains.first().map(|c| c.members.len()).unwrap_or(0);
    // position_load[server][pos] = how many chains already place `server`
    // at hop `pos`.
    let mut position_load = vec![vec![0u32; k]; n_servers];
    for chain in chains.iter_mut() {
        let mut remaining = chain.members.clone();
        let mut ordered = Vec::with_capacity(k);
        for pos in 0..k {
            // Pick the remaining member with the lowest load at `pos`
            // (ties: lowest server id, keeping determinism).
            let (best_idx, _) = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (position_load[s.0 as usize][pos], s.0))
                .expect("chain has k members");
            let server = remaining.swap_remove(best_idx);
            position_load[server.0 as usize][pos] += 1;
            ordered.push(server);
        }
        chain.members = ordered;
    }
}

/// Per-server position spread metric: the average (over servers in 2+
/// chains) of the fraction of *distinct* positions they occupy.  1.0 is
/// perfectly staggered; near `1/min(k, chains)` is fully aligned.  Used
/// by the staggering ablation.
pub fn position_spread(chains: &[Chain], n_servers: usize) -> f64 {
    let mut positions: Vec<Vec<usize>> = vec![Vec::new(); n_servers];
    for chain in chains {
        for (pos, s) in chain.members.iter().enumerate() {
            positions[s.0 as usize].push(pos);
        }
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for pos_list in positions.iter().filter(|p| p.len() >= 2) {
        let distinct: std::collections::HashSet<_> = pos_list.iter().collect();
        let k = chains[0].members.len();
        let possible = pos_list.len().min(k);
        total += distinct.len() as f64 / possible as f64;
        counted += 1;
    }
    if counted == 0 {
        1.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_length_matches_paper_example() {
        // §5.2.1: "if we want this probability to be less than 2^-64 for
        // f = 20%, then we need k = 32 for n < 6000".
        let k = chain_length(0.2, 5999, 64);
        assert!(
            (30..=33).contains(&k),
            "k = {k}, expected ~32 per the paper"
        );
        // And k must be enough: n * f^k < 2^-64.
        let bound = 5999.0 * 0.2f64.powi(k as i32);
        assert!(bound < 2.0f64.powi(-64));
    }

    #[test]
    fn chain_length_grows_with_f() {
        let k1 = chain_length(0.1, 100, 64);
        let k2 = chain_length(0.2, 100, 64);
        let k3 = chain_length(0.4, 100, 64);
        assert!(k1 < k2 && k2 < k3);
    }

    #[test]
    fn chain_length_zero_f() {
        assert_eq!(chain_length(0.0, 100, 64), 1);
    }

    #[test]
    fn chains_have_distinct_members() {
        let beacon = Beacon::from_u64(1);
        let chains = form_chains(&beacon, 0, 50, 50, 8);
        assert_eq!(chains.len(), 50);
        for chain in &chains {
            assert_eq!(chain.members.len(), 8);
            let set: std::collections::HashSet<_> = chain.members.iter().collect();
            assert_eq!(set.len(), 8, "duplicate member in chain {:?}", chain.id);
            for s in &chain.members {
                assert!((s.0 as usize) < 50);
            }
        }
    }

    #[test]
    fn formation_is_deterministic() {
        let beacon = Beacon::from_u64(9);
        let a = form_chains(&beacon, 5, 30, 30, 4);
        let b = form_chains(&beacon, 5, 30, 30, 4);
        assert_eq!(a, b);
        let c = form_chains(&beacon, 6, 30, 30, 4);
        assert_ne!(a, c, "different epochs must differ");
    }

    #[test]
    fn server_appears_in_about_k_chains() {
        // With n_chains == n_servers and chain length k, each server is in
        // k chains on average (§5.2.1).
        let beacon = Beacon::from_u64(2);
        let n = 100;
        let k = 8;
        let chains = form_chains(&beacon, 0, n, n, k);
        let mut count = vec![0usize; n];
        for chain in &chains {
            for s in &chain.members {
                count[s.0 as usize] += 1;
            }
        }
        let mean = count.iter().sum::<usize>() as f64 / n as f64;
        assert!((mean - k as f64).abs() < 1e-9);
    }

    #[test]
    fn staggering_spreads_positions() {
        let beacon = Beacon::from_u64(3);
        let n = 64;
        let k = 8;
        let chains = form_chains(&beacon, 0, n, n, k);
        let spread = position_spread(&chains, n);
        // Greedy staggering should give most servers distinct positions.
        assert!(spread > 0.8, "spread = {spread}");
    }

    #[test]
    fn staggering_preserves_membership() {
        // Stagger must only reorder, never change the member set.
        let beacon = Beacon::from_u64(4);
        let n = 40;
        let k = 6;
        let chains = form_chains(&beacon, 0, n, n, k);
        for chain in &chains {
            let set: std::collections::HashSet<_> = chain.members.iter().collect();
            assert_eq!(set.len(), k);
        }
    }

    #[test]
    #[should_panic(expected = "need at least k distinct servers")]
    fn too_few_servers_panics() {
        form_chains(&Beacon::from_u64(0), 0, 3, 10, 4);
    }
}
