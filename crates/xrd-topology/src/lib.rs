//! # xrd-topology
//!
//! Network-shape substrate for XRD: the public randomness [`Beacon`],
//! anytrust mix-chain formation with position staggering (§5.2.1), and
//! the pairwise-intersecting chain-selection algorithm (§5.3.1).
//!
//! A [`Topology`] bundles the sampled chains with the selection table so
//! higher layers (users, coordinators, experiments) get a single, fully
//! deterministic description of "who mixes what, and where users meet".

#![warn(missing_docs)]

pub mod beacon;
pub mod chains;
pub mod selection;

pub use beacon::Beacon;
pub use chains::{chain_length, form_chains, position_spread, Chain, ChainId, ServerId};
pub use selection::{ell_for_chains, SelectionTable};

/// A complete XRD network shape for one epoch.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Number of physical servers `N`.
    pub n_servers: usize,
    /// Assumed malicious fraction `f`.
    pub f: f64,
    /// The sampled mix chains (length `n_chains`, each of length `k`).
    pub chains: Vec<Chain>,
    /// The group → chain-set table.
    pub selection: SelectionTable,
}

impl Topology {
    /// Build the topology XRD uses: `n_chains = n_servers` (§5.2.1) and
    /// chain length `k` from the 2^-64 anytrust union bound.
    pub fn build(beacon: &Beacon, epoch: u64, n_servers: usize, f: f64) -> Topology {
        let k = chain_length(f, n_servers, 64);
        Self::build_with(beacon, epoch, n_servers, n_servers, k, f)
    }

    /// Build with explicit chain count and length (for tests/experiments
    /// that scale k down).
    pub fn build_with(
        beacon: &Beacon,
        epoch: u64,
        n_servers: usize,
        n_chains: usize,
        k: usize,
        f: f64,
    ) -> Topology {
        let chains = form_chains(beacon, epoch, n_servers, n_chains, k);
        let selection = SelectionTable::build(n_chains);
        Topology {
            n_servers,
            f,
            chains,
            selection,
        }
    }

    /// Chain length `k`.
    pub fn chain_len(&self) -> usize {
        self.chains.first().map(|c| c.members.len()).unwrap_or(0)
    }

    /// Number of chains `n`.
    pub fn n_chains(&self) -> usize {
        self.chains.len()
    }

    /// Messages per user per round (`ℓ`).
    pub fn ell(&self) -> usize {
        self.selection.ell
    }

    /// The chains that a user with the given public key sends to.
    pub fn chains_of_user(&self, pk: &[u8; 32]) -> &[ChainId] {
        let g = self.selection.group_of(pk);
        self.selection.chains_of_group(g)
    }

    /// Where two users meet: the deterministic meeting chain of their
    /// groups.
    pub fn meeting_chain_of_users(&self, pk_a: &[u8; 32], pk_b: &[u8; 32]) -> ChainId {
        let ga = self.selection.group_of(pk_a);
        let gb = self.selection.group_of(pk_b);
        self.selection
            .meeting_chain(ga, gb)
            .expect("selection table guarantees pairwise intersection")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_paper_parameters() {
        let beacon = Beacon::from_u64(1);
        // Scaled-down: 50 servers, f=0.2.
        let topo = Topology::build(&beacon, 0, 50, 0.2);
        assert_eq!(topo.n_chains(), 50);
        // k ~ 31-32 for n=50, f=0.2, 64-bit security.
        assert!(
            (28..=33).contains(&topo.chain_len()),
            "k={}",
            topo.chain_len()
        );
        assert_eq!(topo.ell(), ell_for_chains(50));
    }

    #[test]
    fn users_meet_at_consistent_chain() {
        let beacon = Beacon::from_u64(2);
        let topo = Topology::build_with(&beacon, 0, 20, 20, 3, 0.2);
        let pk_a = [1u8; 32];
        let pk_b = [2u8; 32];
        let m1 = topo.meeting_chain_of_users(&pk_a, &pk_b);
        let m2 = topo.meeting_chain_of_users(&pk_b, &pk_a);
        assert_eq!(m1, m2);
        // The meeting chain is in both users' chain sets.
        assert!(topo.chains_of_user(&pk_a).contains(&m1));
        assert!(topo.chains_of_user(&pk_b).contains(&m1));
    }

    #[test]
    fn all_user_pairs_meet() {
        let beacon = Beacon::from_u64(3);
        let topo = Topology::build_with(&beacon, 0, 30, 30, 3, 0.2);
        let pks: Vec<[u8; 32]> = (0..40u8).map(|i| [i; 32]).collect();
        for a in &pks {
            for b in &pks {
                let _ = topo.meeting_chain_of_users(a, b); // must not panic
            }
        }
    }
}
