//! Property tests for the §5.3.1 selection algorithm and §5.2.1 chain
//! formation over randomized configurations.

use proptest::prelude::*;
use xrd_topology::{chain_length, form_chains, position_spread, Beacon, SelectionTable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The anytrust bound is actually met by the computed chain length.
    #[test]
    fn chain_length_satisfies_union_bound(
        f in 0.01f64..0.5,
        n in 1usize..6000,
    ) {
        let k = chain_length(f, n, 64);
        let bound = (n as f64) * f.powi(k as i32);
        prop_assert!(bound < 2.0f64.powi(-64), "n={n} f={f} k={k}: bound={bound:e}");
        // And k-1 would not suffice (minimality), modulo the f=tiny case
        // where k=1 is forced.
        if k > 1 {
            let loose = (n as f64) * f.powi(k as i32 - 1);
            prop_assert!(loose >= 2.0f64.powi(-64), "k not minimal: n={n} f={f} k={k}");
        }
    }

    /// Chain formation: right shape, distinct members, deterministic.
    #[test]
    fn formation_invariants(
        seed in any::<u64>(),
        n_servers in 8usize..60,
        k in 2usize..8,
    ) {
        prop_assume!(n_servers >= k);
        let beacon = Beacon::from_u64(seed);
        let chains = form_chains(&beacon, 0, n_servers, n_servers, k);
        prop_assert_eq!(chains.len(), n_servers);
        for chain in &chains {
            prop_assert_eq!(chain.members.len(), k);
            let distinct: std::collections::HashSet<_> = chain.members.iter().collect();
            prop_assert_eq!(distinct.len(), k);
        }
        // Deterministic under the same beacon.
        let again = form_chains(&beacon, 0, n_servers, n_servers, k);
        prop_assert_eq!(chains.clone(), again);
        // Staggering achieves meaningful spread whenever there is room.
        if n_servers >= 4 * k {
            prop_assert!(position_spread(&chains, n_servers) > 0.5);
        }
    }

    /// The wrapped construction assigns every real chain to at least one
    /// group, and meeting chains are consistent with group membership.
    #[test]
    fn selection_covers_and_meets(n in 2usize..300) {
        let table = SelectionTable::build(n);
        let mut used = vec![false; n];
        for g in &table.groups {
            for c in g {
                used[c.0 as usize] = true;
            }
        }
        prop_assert!(used.iter().all(|u| *u), "some chain receives no load (n={n})");
        for a in 0..table.num_groups() {
            for b in 0..table.num_groups() {
                let m = table.meeting_chain(a, b).expect("pairwise intersection");
                prop_assert!(table.groups[a].contains(&m));
                prop_assert!(table.groups[b].contains(&m));
            }
        }
    }
}
