//! Crash-recovery and pagination-invariant tests for the mailbox tier:
//! a byte-for-byte truncation sweep over a segment's tail (the
//! kill-mid-append simulation), ack durability across reopen, and
//! property tests pinning the cursor contract — any page size
//! partitions a mailbox exactly once, and a cursor stays stable while
//! deliveries keep landing.

use std::path::PathBuf;

use proptest::prelude::*;

use xrd_core::mailbox::{LogMailboxStore, LogStoreConfig, MailboxHub, MailboxStore, Page};
use xrd_mixnet::MailboxMessage;

fn msg(mailbox: u8, body: &[u8]) -> MailboxMessage {
    MailboxMessage {
        mailbox: [mailbox; 32],
        sealed: body.to_vec(),
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xrd-mbox-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The kill-mid-append simulation: flush three records, then truncate
/// the segment at *every byte offset* inside the third record's range
/// and reopen.  Whatever the torn tail looks like, recovery must keep
/// every fully-written record and drop only the torn one — no error,
/// no phantom entry, no lost prefix.
#[test]
fn truncation_sweep_recovers_every_flushed_prefix() {
    let golden = tmp("sweep-golden");
    let boundaries: Vec<u64>;
    {
        let mut s = LogMailboxStore::open(&golden, 0, 1, LogStoreConfig::default()).unwrap();
        let mut b = vec![s.active_segment().1];
        for round in 0..3u64 {
            s.put(round, msg(7, format!("record-{round}").as_bytes()))
                .unwrap();
            s.flush().unwrap();
            b.push(s.active_segment().1);
        }
        boundaries = b;
    }
    let seg = std::fs::read_dir(&golden)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "log"))
        .expect("one segment file");
    let bytes = std::fs::read(&seg).unwrap();
    assert_eq!(bytes.len() as u64, boundaries[3]);

    let work = tmp("sweep-work");
    for cut in boundaries[2]..boundaries[3] {
        let _ = std::fs::remove_dir_all(&work);
        std::fs::create_dir_all(&work).unwrap();
        std::fs::write(work.join(seg.file_name().unwrap()), &bytes[..cut as usize]).unwrap();

        let mut s = LogMailboxStore::open(&work, 0, 1, LogStoreConfig::default()).unwrap();
        assert_eq!(
            s.pending(&[7u8; 32]).unwrap(),
            2,
            "cut at byte {cut}: the two flushed records must survive"
        );
        let page = s.fetch_page(&[7u8; 32], 0, 16).unwrap();
        let got: Vec<(u64, Vec<u8>)> = page
            .entries
            .iter()
            .map(|e| (e.round, e.sealed.clone()))
            .collect();
        assert_eq!(
            got,
            vec![(0, b"record-0".to_vec()), (1, b"record-1".to_vec())],
            "cut at byte {cut}"
        );
        // The recovered store keeps working: the torn tail was
        // truncated away, so new appends land on a clean end.
        let seq = s.put(9, msg(7, b"post-crash")).unwrap();
        assert_eq!(seq, 2, "cut at byte {cut}: torn record's seq is reused");
    }
    let _ = std::fs::remove_dir_all(&golden);
    let _ = std::fs::remove_dir_all(&work);
}

/// Acks are as durable as puts: retire a prefix, crash (drop without
/// deleting anything), reopen — the retired entries stay retired and
/// the cursor picks up exactly where the ack left it.
#[test]
fn ack_watermark_survives_reopen() {
    let dir = tmp("ack-reopen");
    {
        let mut s = LogMailboxStore::open(&dir, 0, 1, LogStoreConfig::default()).unwrap();
        for round in 0..5u64 {
            s.put(round, msg(3, format!("m{round}").as_bytes()))
                .unwrap();
        }
        s.ack(&[3u8; 32], 3).unwrap();
        s.flush().unwrap();
    }
    let mut s = LogMailboxStore::open(&dir, 0, 1, LogStoreConfig::default()).unwrap();
    assert_eq!(s.pending(&[3u8; 32]).unwrap(), 2);
    let page = s.fetch_page(&[3u8; 32], 0, 16).unwrap();
    assert_eq!(
        page.entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
        vec![3, 4],
        "cursor 0 must start at the first un-acked entry after reopen"
    );
    // Re-acking the already-retired prefix is still a no-op.
    assert_eq!(s.ack(&[3u8; 32], 3).unwrap(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Page through `mailbox` from cursor 0 until `remaining == 0`,
/// collecting the sequence numbers seen.
fn walk(store: &mut dyn MailboxStore, mailbox: &[u8; 32], page: usize) -> Vec<u64> {
    let mut cursor = 0;
    let mut seqs = Vec::new();
    loop {
        let Page {
            entries,
            next_cursor,
            remaining,
        } = store.fetch_page(mailbox, cursor, page).unwrap();
        seqs.extend(entries.iter().map(|e| e.seq));
        cursor = next_cursor;
        if remaining == 0 {
            break;
        }
    }
    seqs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any page size partitions a mailbox exactly once: walking the
    /// cursor chain yields every sequence number in order with no gap
    /// and no repeat, on both backends.
    #[test]
    fn any_page_size_partitions_exactly_once(n in 1usize..40, page in 1usize..50) {
        let expected: Vec<u64> = (0..n as u64).collect();

        let mut hub = MailboxHub::new(1);
        for round in 0..n as u64 {
            hub.put(round, msg(5, b"x")).unwrap();
        }
        prop_assert_eq!(walk(&mut hub, &[5u8; 32], page), expected.clone());

        let dir = tmp(&format!("partition-{n}-{page}"));
        let mut log = LogMailboxStore::open(&dir, 0, 1, LogStoreConfig::default()).unwrap();
        for round in 0..n as u64 {
            log.put(round, msg(5, b"x")).unwrap();
        }
        prop_assert_eq!(walk(&mut log, &[5u8; 32], page), expected);
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Cursor stability under concurrent puts: deliveries landing
    /// between page fetches never shift, hide or repeat entries the
    /// cursor has already passed — the final walk still sees every
    /// sequence number exactly once.
    #[test]
    fn cursor_stable_under_interleaved_puts(
        bursts in prop::collection::vec(1usize..8, 1..8),
        page in 1usize..6,
    ) {
        let mut hub = MailboxHub::new(1);
        let mut delivered = 0u64;
        let mut cursor = 0u64;
        let mut seqs: Vec<u64> = Vec::new();

        for burst in bursts {
            // A burst of deliveries lands…
            for _ in 0..burst {
                hub.put(delivered, msg(9, b"x")).unwrap();
                delivered += 1;
            }
            // …then the reader takes one page from where it stood.
            let got = hub.fetch_page(&[9u8; 32], cursor, page).unwrap();
            seqs.extend(got.entries.iter().map(|e| e.seq));
            cursor = got.next_cursor;
        }
        // Drain whatever the interleaving left behind.
        loop {
            let got = hub.fetch_page(&[9u8; 32], cursor, page).unwrap();
            seqs.extend(got.entries.iter().map(|e| e.seq));
            cursor = got.next_cursor;
            if got.remaining == 0 {
                break;
            }
        }
        let expected: Vec<u64> = (0..delivered).collect();
        prop_assert_eq!(seqs, expected);
    }

    /// Acking mid-walk is safe: retiring everything the cursor already
    /// passed never disturbs the entries still ahead of it.
    #[test]
    fn ack_behind_cursor_does_not_disturb_the_walk(n in 2usize..30, page in 1usize..5) {
        let mut hub = MailboxHub::new(1);
        for round in 0..n as u64 {
            hub.put(round, msg(2, b"x")).unwrap();
        }
        let mut cursor = 0u64;
        let mut seqs = Vec::new();
        loop {
            let got = hub.fetch_page(&[2u8; 32], cursor, page).unwrap();
            seqs.extend(got.entries.iter().map(|e| e.seq));
            cursor = got.next_cursor;
            // At-least-once consumers ack what they have safely read.
            hub.ack(&[2u8; 32], cursor).unwrap();
            if got.remaining == 0 {
                break;
            }
        }
        let expected: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(seqs, expected);
        prop_assert_eq!(hub.pending(&[2u8; 32]).unwrap(), 0);
    }
}
