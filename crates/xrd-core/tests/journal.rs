//! Durability contract of the daemon state [`Journal`]: records
//! survive reopen byte-for-byte, a torn tail (the crash landing
//! mid-write) is truncated away without losing the intact prefix, a
//! corrupted checksum drops exactly the damaged record, and
//! [`Journal::rewrite`] compacts atomically.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;

use xrd_core::Journal;

fn tmp(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("xrd-journal-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn records_round_trip_across_reopen() {
    let path = tmp("roundtrip");
    {
        let (mut j, records) = Journal::open(&path).expect("fresh journal opens");
        assert!(records.is_empty(), "fresh journal has no records");
        j.append_sync(b"alpha").expect("append");
        j.append_sync(b"").expect("empty payloads are records too");
        j.append_sync(&[0xFFu8; 300]).expect("append");
    }
    let (_, records) = Journal::open(&path).expect("reopen");
    assert_eq!(records.len(), 3);
    assert_eq!(records[0], b"alpha");
    assert_eq!(records[1], b"");
    assert_eq!(records[2], vec![0xFFu8; 300]);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_tail_is_truncated_and_journal_stays_appendable() {
    let path = tmp("torn");
    let intact_len = {
        let (mut j, _) = Journal::open(&path).expect("open");
        j.append_sync(b"one").expect("append");
        j.append_sync(b"two").expect("append");
        j.len_bytes()
    };
    // A crash mid-append: a length header promising more bytes than
    // ever hit the disk.
    let mut f = OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("raw open");
    f.write_all(&[64, 0, 0, 0, b'x', b'y']).expect("torn write");
    drop(f);

    let (mut j, records) = Journal::open(&path).expect("reopen tolerates torn tail");
    assert_eq!(records, vec![b"one".to_vec(), b"two".to_vec()]);
    assert_eq!(
        j.len_bytes(),
        intact_len,
        "file truncated back to the intact prefix"
    );

    // The journal is immediately usable: the next append lands where
    // the torn record was cut away.
    j.append_sync(b"three").expect("append after truncation");
    drop(j);
    let (_, records) = Journal::open(&path).expect("reopen");
    assert_eq!(
        records,
        vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_checksum_drops_the_damaged_suffix() {
    let path = tmp("corrupt");
    {
        let (mut j, _) = Journal::open(&path).expect("open");
        j.append_sync(b"keep-a").expect("append");
        j.append_sync(b"keep-b").expect("append");
        j.append_sync(b"damaged").expect("append");
    }
    // Flip one byte inside the last record's checksum.
    let mut bytes = std::fs::read(&path).expect("read raw");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xA5;
    std::fs::write(&path, &bytes).expect("write raw");

    let (_, records) = Journal::open(&path).expect("reopen tolerates corruption");
    assert_eq!(records, vec![b"keep-a".to_vec(), b"keep-b".to_vec()]);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rewrite_compacts_to_exactly_the_given_records() {
    let path = tmp("rewrite");
    {
        let (mut j, _) = Journal::open(&path).expect("open");
        for i in 0..20u8 {
            j.append(&[i; 100]).expect("append");
        }
        j.sync().expect("sync");
        let before = j.len_bytes();
        j.rewrite(&[b"active-config", b"open-round"])
            .expect("rewrite");
        assert!(j.len_bytes() < before, "compaction must shrink the journal");
        // Post-rewrite appends extend the compacted file.
        j.append_sync(b"later").expect("append after rewrite");
    }
    let (_, records) = Journal::open(&path).expect("reopen");
    assert_eq!(
        records,
        vec![
            b"active-config".to_vec(),
            b"open-round".to_vec(),
            b"later".to_vec()
        ]
    );
    let _ = std::fs::remove_file(&path);
}
