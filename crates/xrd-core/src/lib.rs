//! # xrd-core
//!
//! The complete XRD system (NSDI 2020): users, mailbox servers, and the
//! round protocol of Figure 1, assembled from the `xrd-topology` and
//! `xrd-mixnet` substrates — plus the calibrated performance models that
//! stand in for the paper's EC2 testbed.
//!
//! * [`user::User`] — chain selection, loopback/conversation/cover
//!   messages (§5.3), mailbox decryption;
//! * [`mailbox::MailboxStore`] — the sharded mailbox tier (§5.1): a
//!   paginated, ack-driven store API with an in-memory backend
//!   ([`mailbox::MailboxHub`]) and a crash-recoverable log-structured
//!   one ([`mailbox::LogMailboxStore`]);
//! * [`deployment::Deployment`] — a faithful in-process deployment that
//!   runs real rounds end to end (used by tests, examples, and scaled
//!   experiments);
//! * [`backend::RoundBackend`] — the backend abstraction shared with
//!   the networked deployment in `xrd-net`, plus the user-side round
//!   logic common to every backend;
//! * [`churn`] — the §8.3 availability Monte-Carlo (Figure 8);
//! * [`cost`] — user-cost accounting and the discrete-event round model
//!   (Figures 2-6), priced with per-op costs measured on the real
//!   crypto implementation.

#![warn(missing_docs)]

pub mod backend;
pub mod churn;
pub mod cost;
pub mod deployment;
pub mod dialing;
pub mod journal;
pub mod mailbox;
pub mod payload;
pub mod secgame;
pub mod user;

pub use backend::{RoundBackend, RoundError};
pub use deployment::{Deployment, DeploymentConfig, FetchResults, RoundReport};
pub use journal::Journal;
pub use mailbox::{
    drain, LogMailboxStore, LogStoreConfig, MailboxError, MailboxHub, MailboxStore, Page, PageEntry,
};
pub use payload::{Payload, MAX_CHAT_LEN};
pub use user::{Received, User};
