//! The XRD user (§5.3): chain selection, loopback/conversation message
//! construction, cover messages for churn tolerance (§5.3.3), and
//! mailbox decryption — including the §9 extension to **multiple
//! simultaneous conversations** (the building block for group chats),
//! which works whenever the partners' meeting chains are distinct.
//!
//! The invariant the whole design rests on: **every round, every user
//! sends exactly `ℓ` messages and receives exactly `ℓ` messages**,
//! regardless of whether (or with how many people) she is conversing.
//! Tests in `deployment.rs` verify it end to end.

use std::collections::HashMap;

use rand::RngCore;

use xrd_crypto::aead::{adec, aenc, round_nonce};
use xrd_crypto::kdf;
use xrd_crypto::keys::KeyPair;
use xrd_crypto::ristretto::GroupElement;
use xrd_mixnet::client::{seal_ahs, Submission};
use xrd_mixnet::message::{MailboxMessage, DOMAIN_MAILBOX};
use xrd_mixnet::ChainPublicKeys;
use xrd_topology::{ChainId, Topology};

use crate::payload::Payload;

/// What a user found in her mailbox after decryption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Received {
    /// One of her own loopback messages came back.
    Loopback,
    /// Conversation content from a partner.
    Chat {
        /// The partner's mailbox id (public key encoding).
        from: [u8; 32],
        /// Chat bytes.
        data: Vec<u8>,
    },
    /// A partner signalled (via a cover message) that they went
    /// offline; stop conversing with them (§5.3.3).
    PartnerOffline {
        /// The offline partner's mailbox id.
        partner: [u8; 32],
    },
    /// Undecryptable (not addressed to us / corrupted) — never happens
    /// in an honest run.
    Opaque,
}

/// Why a conversation could not be added (§9: "XRD currently cannot
/// support multiple conversations for one user if she intersects with
/// different partners at the same chain").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConversationError {
    /// The new partner meets us on a chain already carrying another
    /// conversation.
    MeetingChainConflict {
        /// The contested chain.
        chain: ChainId,
        /// The existing partner on that chain.
        existing_partner: [u8; 32],
    },
    /// Already conversing with this partner.
    AlreadyConversing,
}

/// A user endpoint.
#[derive(Clone)]
pub struct User {
    keypair: KeyPair,
    pk_bytes: [u8; 32],
    /// Current conversation partners (public keys), in add order.
    partners: Vec<GroupElement>,
    /// Outgoing chat queues, keyed by partner mailbox id.
    outbox: HashMap<[u8; 32], Vec<Vec<u8>>>,
    /// Whether the user is reachable this round (churn modeling).
    pub online: bool,
}

impl User {
    /// Create a user with a fresh key pair.
    pub fn new<R: RngCore + ?Sized>(rng: &mut R) -> User {
        let keypair = KeyPair::generate(rng);
        let pk_bytes = keypair.pk.encode();
        User {
            keypair,
            pk_bytes,
            partners: Vec::new(),
            outbox: HashMap::new(),
            online: true,
        }
    }

    /// The user's public key (also her mailbox id).
    pub fn pk(&self) -> GroupElement {
        self.keypair.pk
    }

    /// The mailbox identifier (public key encoding).
    pub fn mailbox_id(&self) -> [u8; 32] {
        self.pk_bytes
    }

    /// Begin a (single) conversation with `peer`, replacing any existing
    /// conversations (the §5 base protocol; agreed out of band, §3.1).
    pub fn start_conversation(&mut self, peer: GroupElement) {
        self.partners = vec![peer];
        self.outbox.clear();
    }

    /// Add a simultaneous conversation (§9 extension).  Fails if the new
    /// partner's meeting chain collides with an existing conversation's.
    pub fn add_conversation(
        &mut self,
        topo: &Topology,
        peer: GroupElement,
    ) -> Result<(), ConversationError> {
        let peer_id = peer.encode();
        if self.partners.iter().any(|p| p.encode() == peer_id) {
            return Err(ConversationError::AlreadyConversing);
        }
        let new_chain = topo.meeting_chain_of_users(&self.pk_bytes, &peer_id);
        for existing in &self.partners {
            let existing_id = existing.encode();
            let chain = topo.meeting_chain_of_users(&self.pk_bytes, &existing_id);
            if chain == new_chain {
                return Err(ConversationError::MeetingChainConflict {
                    chain,
                    existing_partner: existing_id,
                });
            }
        }
        self.partners.push(peer);
        Ok(())
    }

    /// End every conversation (reverts to all-loopback).
    pub fn end_conversation(&mut self) {
        self.partners.clear();
        self.outbox.clear();
    }

    /// End the conversation with one partner.
    pub fn end_conversation_with(&mut self, partner_id: &[u8; 32]) {
        self.partners.retain(|p| p.encode() != *partner_id);
        self.outbox.remove(partner_id);
    }

    /// Current partners.
    pub fn partners(&self) -> &[GroupElement] {
        &self.partners
    }

    /// Convenience: the first partner, if any (base-protocol style).
    pub fn partner(&self) -> Option<&GroupElement> {
        self.partners.first()
    }

    /// Queue chat content for the first partner.
    pub fn queue_chat(&mut self, data: impl Into<Vec<u8>>) {
        if let Some(first) = self.partners.first() {
            let id = first.encode();
            self.outbox.entry(id).or_default().push(data.into());
        }
    }

    /// Queue chat content for a specific partner.
    pub fn queue_chat_for(&mut self, partner_id: &[u8; 32], data: impl Into<Vec<u8>>) {
        self.outbox
            .entry(*partner_id)
            .or_default()
            .push(data.into());
    }

    /// Chain-specific loopback key (`s_xA`, "known only to Alice").
    fn loopback_key(&self, chain: ChainId, round: u64) -> [u8; 32] {
        kdf::derive_key(
            "xrd/loopback",
            &[
                &self.keypair.sk.to_bytes(),
                &chain.0.to_le_bytes(),
                &round.to_le_bytes(),
            ],
        )
    }

    /// Directional conversation key for messages **to** `dest_pk`
    /// (`s_B = KDF(s_AB, pk_B)` in Algorithm 2).
    fn conversation_key(&self, peer: &GroupElement, dest_pk: &GroupElement) -> [u8; 32] {
        let shared = self.keypair.dh(peer);
        kdf::derive_from_dh("xrd/conversation", &shared, &dest_pk.encode())
    }

    /// Map each of this user's chains to the partner (if any) whose
    /// conversation rides on it.  Partners with colliding meeting chains
    /// were rejected at `add_conversation`, so the map is well defined.
    fn conversation_slots(&self, topo: &Topology) -> HashMap<ChainId, GroupElement> {
        let mut slots = HashMap::new();
        for peer in &self.partners {
            let chain = topo.meeting_chain_of_users(&self.pk_bytes, &peer.encode());
            slots.entry(chain).or_insert(*peer);
        }
        slots
    }

    /// Build the `ℓ` mailbox-level messages for `round`.
    ///
    /// `offline_cover` selects §5.3.3 cover-message semantics: each
    /// conversation slot carries [`Payload::Offline`] instead of chat
    /// content (these are the messages servers replay if we vanish).
    pub fn build_round_messages(
        &self,
        topo: &Topology,
        round: u64,
        offline_cover: bool,
    ) -> Vec<(ChainId, MailboxMessage)> {
        let my_chains = topo.chains_of_user(&self.pk_bytes);
        let slots = self.conversation_slots(topo);

        let mut out = Vec::with_capacity(my_chains.len());
        let mut used: std::collections::HashSet<ChainId> = std::collections::HashSet::new();
        for &chain in my_chains {
            // The first occurrence of a meeting chain carries the
            // conversation (a group's chain list may repeat a chain
            // after modular wrapping).
            let peer = if used.insert(chain) {
                slots.get(&chain).copied()
            } else {
                None
            };
            if let Some(peer) = peer {
                let peer_id = peer.encode();
                let payload = if offline_cover {
                    Payload::Offline
                } else if let Some(chat) = self.outbox.get(&peer_id).and_then(|q| q.first()) {
                    Payload::Chat(chat.clone())
                } else {
                    Payload::Chat(Vec::new())
                };
                let key = self.conversation_key(&peer, &peer);
                let sealed = aenc(
                    &key,
                    &round_nonce(round, DOMAIN_MAILBOX),
                    b"",
                    &payload.encode(),
                );
                out.push((
                    chain,
                    MailboxMessage {
                        mailbox: peer_id,
                        sealed,
                    },
                ));
            } else {
                let key = self.loopback_key(chain, round);
                let sealed = aenc(
                    &key,
                    &round_nonce(round, DOMAIN_MAILBOX),
                    b"",
                    &Payload::Dummy.encode(),
                );
                out.push((
                    chain,
                    MailboxMessage {
                        mailbox: self.pk_bytes,
                        sealed,
                    },
                ));
            }
        }
        out
    }

    /// Onion-encrypt a round's messages into per-chain submissions.
    /// `chain_keys[c]` must be the public bundle of chain `c`.
    pub fn seal_round<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        topo: &Topology,
        chain_keys: &[ChainPublicKeys],
        round: u64,
        offline_cover: bool,
    ) -> Vec<(ChainId, Submission)> {
        self.build_round_messages(topo, round, offline_cover)
            .into_iter()
            .map(|(chain, msg)| {
                let keys = &chain_keys[chain.0 as usize];
                (chain, seal_ahs(rng, keys, round, &msg))
            })
            .collect()
    }

    /// Advance the outboxes after a round in which conversation messages
    /// went out: pop one queued chat per partner.
    pub fn mark_round_sent(&mut self) {
        for peer in &self.partners {
            if let Some(queue) = self.outbox.get_mut(&peer.encode()) {
                if !queue.is_empty() {
                    queue.remove(0);
                }
            }
        }
    }

    /// Decrypt everything fetched from the mailbox.
    pub fn open_mailbox(
        &self,
        topo: &Topology,
        round: u64,
        sealed_messages: &[Vec<u8>],
    ) -> Vec<Received> {
        let my_chains = topo.chains_of_user(&self.pk_bytes);
        sealed_messages
            .iter()
            .map(|sealed| {
                // Each partner's incoming conversation key.
                for peer in &self.partners {
                    let key = self.conversation_key(peer, &self.keypair.pk);
                    if let Some(pt) = adec(&key, &round_nonce(round, DOMAIN_MAILBOX), b"", sealed) {
                        return match Payload::decode(&pt) {
                            Some(Payload::Chat(data)) => Received::Chat {
                                from: peer.encode(),
                                data,
                            },
                            Some(Payload::Offline) => Received::PartnerOffline {
                                partner: peer.encode(),
                            },
                            _ => Received::Opaque,
                        };
                    }
                }
                // Then each chain's loopback key.
                for &chain in my_chains {
                    let key = self.loopback_key(chain, round);
                    if let Some(pt) = adec(&key, &round_nonce(round, DOMAIN_MAILBOX), b"", sealed) {
                        return match Payload::decode(&pt) {
                            Some(Payload::Dummy) => Received::Loopback,
                            _ => Received::Opaque,
                        };
                    }
                }
                Received::Opaque
            })
            .collect()
    }
}

impl std::fmt::Debug for User {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("User")
            .field("mailbox", &xrd_crypto::util::to_hex(&self.pk_bytes[..4]))
            .field("conversations", &self.partners.len())
            .field("online", &self.online)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xrd_topology::Beacon;

    fn small_topo() -> Topology {
        Topology::build_with(&Beacon::from_u64(1), 0, 10, 10, 2, 0.0)
    }

    fn chat(from: &User, data: &[u8]) -> Received {
        Received::Chat {
            from: from.mailbox_id(),
            data: data.to_vec(),
        }
    }

    #[test]
    fn idle_user_sends_ell_loopbacks() {
        let mut rng = StdRng::seed_from_u64(1);
        let topo = small_topo();
        let user = User::new(&mut rng);
        let msgs = user.build_round_messages(&topo, 0, false);
        assert_eq!(msgs.len(), topo.ell());
        for (_, m) in &msgs {
            assert_eq!(m.mailbox, user.mailbox_id());
        }
    }

    #[test]
    fn conversing_user_sends_one_conversation_message() {
        let mut rng = StdRng::seed_from_u64(2);
        let topo = small_topo();
        let mut alice = User::new(&mut rng);
        let bob = User::new(&mut rng);
        alice.start_conversation(bob.pk());
        let msgs = alice.build_round_messages(&topo, 1, false);
        assert_eq!(msgs.len(), topo.ell());
        let to_bob: Vec<_> = msgs
            .iter()
            .filter(|(_, m)| m.mailbox == bob.mailbox_id())
            .collect();
        assert_eq!(to_bob.len(), 1);
        let meeting = topo.meeting_chain_of_users(&alice.mailbox_id(), &bob.mailbox_id());
        assert_eq!(to_bob[0].0, meeting);
    }

    #[test]
    fn chat_roundtrip_between_users() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = small_topo();
        let mut alice = User::new(&mut rng);
        let mut bob = User::new(&mut rng);
        alice.start_conversation(bob.pk());
        bob.start_conversation(alice.pk());
        alice.queue_chat(b"hi bob".to_vec());

        let msgs = alice.build_round_messages(&topo, 3, false);
        let for_bob: Vec<Vec<u8>> = msgs
            .iter()
            .filter(|(_, m)| m.mailbox == bob.mailbox_id())
            .map(|(_, m)| m.sealed.clone())
            .collect();
        let got = bob.open_mailbox(&topo, 3, &for_bob);
        assert_eq!(got, vec![chat(&alice, b"hi bob")]);
    }

    #[test]
    fn loopbacks_decrypt_only_for_owner() {
        let mut rng = StdRng::seed_from_u64(4);
        let topo = small_topo();
        let alice = User::new(&mut rng);
        let eve = User::new(&mut rng);
        let msgs = alice.build_round_messages(&topo, 5, false);
        let sealed: Vec<Vec<u8>> = msgs.iter().map(|(_, m)| m.sealed.clone()).collect();
        let alice_view = alice.open_mailbox(&topo, 5, &sealed);
        assert!(alice_view.iter().all(|r| *r == Received::Loopback));
        let eve_view = eve.open_mailbox(&topo, 5, &sealed);
        assert!(eve_view.iter().all(|r| *r == Received::Opaque));
    }

    #[test]
    fn offline_cover_notifies_partner() {
        let mut rng = StdRng::seed_from_u64(5);
        let topo = small_topo();
        let mut alice = User::new(&mut rng);
        let mut bob = User::new(&mut rng);
        alice.start_conversation(bob.pk());
        bob.start_conversation(alice.pk());
        let covers = alice.build_round_messages(&topo, 7, true);
        let for_bob: Vec<Vec<u8>> = covers
            .iter()
            .filter(|(_, m)| m.mailbox == bob.mailbox_id())
            .map(|(_, m)| m.sealed.clone())
            .collect();
        assert_eq!(for_bob.len(), 1);
        let got = bob.open_mailbox(&topo, 7, &for_bob);
        assert_eq!(
            got,
            vec![Received::PartnerOffline {
                partner: alice.mailbox_id()
            }]
        );
    }

    #[test]
    fn loopback_keys_are_round_and_chain_specific() {
        let mut rng = StdRng::seed_from_u64(6);
        let user = User::new(&mut rng);
        let k1 = user.loopback_key(ChainId(0), 1);
        let k2 = user.loopback_key(ChainId(1), 1);
        let k3 = user.loopback_key(ChainId(0), 2);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
    }

    #[test]
    fn wrong_round_messages_do_not_decrypt() {
        let mut rng = StdRng::seed_from_u64(7);
        let topo = small_topo();
        let user = User::new(&mut rng);
        let msgs = user.build_round_messages(&topo, 1, false);
        let sealed: Vec<Vec<u8>> = msgs.iter().map(|(_, m)| m.sealed.clone()).collect();
        let wrong_round = user.open_mailbox(&topo, 2, &sealed);
        assert!(wrong_round.iter().all(|r| *r == Received::Opaque));
    }

    // ---- §9 multi-conversation extension ----

    /// Find a set of users whose pairwise meeting chains with `host` are
    /// all distinct.
    fn partners_with_distinct_chains(
        rng: &mut StdRng,
        topo: &Topology,
        host: &User,
        want: usize,
    ) -> Vec<User> {
        let mut found: Vec<User> = Vec::new();
        let mut chains = std::collections::HashSet::new();
        while found.len() < want {
            let candidate = User::new(rng);
            let chain = topo.meeting_chain_of_users(&host.mailbox_id(), &candidate.mailbox_id());
            if chains.insert(chain) {
                found.push(candidate);
            }
        }
        found
    }

    #[test]
    fn multiple_conversations_still_send_ell_messages() {
        let mut rng = StdRng::seed_from_u64(8);
        let topo = small_topo();
        let mut alice = User::new(&mut rng);
        let partners = partners_with_distinct_chains(&mut rng, &topo, &alice, 2);
        for p in &partners {
            alice.add_conversation(&topo, p.pk()).unwrap();
        }
        assert_eq!(alice.partners().len(), 2);
        let msgs = alice.build_round_messages(&topo, 0, false);
        assert_eq!(msgs.len(), topo.ell(), "uniformity holds with 2 partners");
        let conv_count = msgs
            .iter()
            .filter(|(_, m)| m.mailbox != alice.mailbox_id())
            .count();
        assert_eq!(conv_count, 2);
    }

    #[test]
    fn per_partner_chat_routing() {
        let mut rng = StdRng::seed_from_u64(9);
        let topo = small_topo();
        let mut alice = User::new(&mut rng);
        let mut partners = partners_with_distinct_chains(&mut rng, &topo, &alice, 2);
        for p in &partners {
            alice.add_conversation(&topo, p.pk()).unwrap();
        }
        for p in partners.iter_mut() {
            p.add_conversation(&topo, alice.pk()).unwrap();
        }
        alice.queue_chat_for(&partners[0].mailbox_id(), b"to p0");
        alice.queue_chat_for(&partners[1].mailbox_id(), b"to p1");

        let msgs = alice.build_round_messages(&topo, 0, false);
        for (i, p) in partners.iter().enumerate() {
            let sealed: Vec<Vec<u8>> = msgs
                .iter()
                .filter(|(_, m)| m.mailbox == p.mailbox_id())
                .map(|(_, m)| m.sealed.clone())
                .collect();
            assert_eq!(sealed.len(), 1);
            let got = p.open_mailbox(&topo, 0, &sealed);
            assert_eq!(got, vec![chat(&alice, format!("to p{i}").as_bytes())]);
        }
    }

    #[test]
    fn meeting_chain_conflict_is_rejected() {
        let mut rng = StdRng::seed_from_u64(10);
        let topo = small_topo();
        let mut alice = User::new(&mut rng);
        let first = User::new(&mut rng);
        alice.add_conversation(&topo, first.pk()).unwrap();
        let first_chain = topo.meeting_chain_of_users(&alice.mailbox_id(), &first.mailbox_id());
        // Find a user colliding on the same meeting chain.
        let collider = loop {
            let c = User::new(&mut rng);
            if topo.meeting_chain_of_users(&alice.mailbox_id(), &c.mailbox_id()) == first_chain {
                break c;
            }
        };
        let err = alice.add_conversation(&topo, collider.pk()).unwrap_err();
        assert_eq!(
            err,
            ConversationError::MeetingChainConflict {
                chain: first_chain,
                existing_partner: first.mailbox_id()
            }
        );
        // And duplicates are rejected too.
        assert_eq!(
            alice.add_conversation(&topo, first.pk()),
            Err(ConversationError::AlreadyConversing)
        );
    }

    #[test]
    fn end_conversation_with_keeps_others() {
        let mut rng = StdRng::seed_from_u64(11);
        let topo = small_topo();
        let mut alice = User::new(&mut rng);
        let partners = partners_with_distinct_chains(&mut rng, &topo, &alice, 2);
        for p in &partners {
            alice.add_conversation(&topo, p.pk()).unwrap();
        }
        alice.end_conversation_with(&partners[0].mailbox_id());
        assert_eq!(alice.partners().len(), 1);
        assert_eq!(alice.partners()[0].encode(), partners[1].mailbox_id());
    }
}
