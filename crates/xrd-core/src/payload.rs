//! Application payload framing inside the fixed 256-byte message body.
//!
//! Every sealed mailbox message carries exactly [`PAYLOAD_LEN`] bytes, so
//! loopback dummies, chat messages, and the §5.3.3 "I have gone offline"
//! cover notification are indistinguishable on the wire.

pub use xrd_mixnet::PAYLOAD_LEN;

/// Maximum chat bytes per message (framing: 1 tag byte + 2 length bytes).
pub const MAX_CHAT_LEN: usize = PAYLOAD_LEN - 3;

/// What a decrypted payload means.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// A loopback dummy ("messages with all zeroes", §5.3.2).
    Dummy,
    /// Conversation content.
    Chat(Vec<u8>),
    /// Cover-message notification: the sender has gone offline (§5.3.3).
    Offline,
}

const TAG_DUMMY: u8 = 0;
const TAG_CHAT: u8 = 1;
const TAG_OFFLINE: u8 = 2;

impl Payload {
    /// Encode into the fixed-size body.
    pub fn encode(&self) -> [u8; PAYLOAD_LEN] {
        let mut out = [0u8; PAYLOAD_LEN];
        match self {
            Payload::Dummy => {
                out[0] = TAG_DUMMY;
            }
            Payload::Chat(data) => {
                assert!(
                    data.len() <= MAX_CHAT_LEN,
                    "chat messages over {MAX_CHAT_LEN} bytes must be split by the caller"
                );
                out[0] = TAG_CHAT;
                out[1..3].copy_from_slice(&(data.len() as u16).to_le_bytes());
                out[3..3 + data.len()].copy_from_slice(data);
            }
            Payload::Offline => {
                out[0] = TAG_OFFLINE;
            }
        }
        out
    }

    /// Decode from a fixed-size body.
    pub fn decode(bytes: &[u8]) -> Option<Payload> {
        if bytes.len() != PAYLOAD_LEN {
            return None;
        }
        match bytes[0] {
            TAG_DUMMY => Some(Payload::Dummy),
            TAG_CHAT => {
                let len = u16::from_le_bytes([bytes[1], bytes[2]]) as usize;
                if len > MAX_CHAT_LEN {
                    return None;
                }
                Some(Payload::Chat(bytes[3..3 + len].to_vec()))
            }
            TAG_OFFLINE => Some(Payload::Offline),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        for p in [
            Payload::Dummy,
            Payload::Offline,
            Payload::Chat(b"hello Bob".to_vec()),
            Payload::Chat(vec![]),
            Payload::Chat(vec![7u8; MAX_CHAT_LEN]),
        ] {
            let enc = p.encode();
            assert_eq!(enc.len(), PAYLOAD_LEN);
            assert_eq!(Payload::decode(&enc).unwrap(), p);
        }
    }

    #[test]
    fn all_encodings_same_size() {
        let a = Payload::Dummy.encode();
        let b = Payload::Chat(b"x".to_vec()).encode();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Payload::decode(&[0u8; 10]).is_none());
        let mut bad_tag = [0u8; PAYLOAD_LEN];
        bad_tag[0] = 99;
        assert!(Payload::decode(&bad_tag).is_none());
        // Length field exceeding capacity
        let mut bad_len = [0u8; PAYLOAD_LEN];
        bad_len[0] = TAG_CHAT;
        bad_len[1..3].copy_from_slice(&(MAX_CHAT_LEN as u16 + 1).to_le_bytes());
        assert!(Payload::decode(&bad_len).is_none());
    }

    #[test]
    #[should_panic(expected = "must be split")]
    fn oversized_chat_panics() {
        let _ = Payload::Chat(vec![0u8; MAX_CHAT_LEN + 1]).encode();
    }
}
