//! Mailbox servers (§5.1): the [`MailboxStore`] tier.
//!
//! Mailboxes are keyed by the owner's public key; different users'
//! mailboxes live on different shards ("similar to e-mail servers,
//! different users' mailboxes can be maintained by different servers").
//! Mailbox servers are trusted for availability only — everything they
//! hold is sealed for its owner.
//!
//! The tier is one trait with two backends:
//!
//! * [`MailboxHub`] — the in-memory backend (tests, in-process
//!   deployments, throwaway daemons);
//! * [`LogMailboxStore`] — the log-structured persistent backend
//!   (fsync'd append-only segment files + an in-memory index, segment
//!   rotation, compaction of acked records, crash recovery by index
//!   rebuild on reopen; see [`log`]).
//!
//! ## Delivery semantics: at-least-once, ack-driven retention
//!
//! Every message a mailbox receives is assigned a monotonically
//! increasing per-mailbox sequence number and *retained until the owner
//! acknowledges it* — a fetch is a read, not a drain.  Readers walk a
//! mailbox in pages ([`MailboxStore::fetch_page`], cursor = sequence
//! number) and then retire what they have safely stored with
//! [`MailboxStore::ack`].  A crash between fetch and ack re-reads the
//! same messages (at-least-once); an ack is idempotent, so retrying it
//! after a lost reply is harmless.  Messages delivered while the owner
//! is offline simply accumulate: retention is driven by acks, never by
//! round windows.
//!
//! Each entry also records the **round it was delivered in**, because
//! mailbox sealing is round-scoped (the AEAD nonce commits to the round
//! number): a user reconnecting at round ρ+3 must open a round-ρ entry
//! with ρ, not ρ+3.

use std::collections::HashMap;

use xrd_crypto::blake2b::Blake2b;
use xrd_mixnet::MailboxMessage;

pub mod log;

pub use log::{LogMailboxStore, LogStoreConfig};

/// Which of `n_shards` mailbox servers owns `mailbox`.
///
/// A free function (rather than a method on [`MailboxHub`]) because the
/// assignment is public protocol state: users, chains and networked
/// deployments all derive it locally from the mailbox id alone.
pub fn shard_of(mailbox: &[u8; 32], n_shards: usize) -> usize {
    assert!(n_shards >= 1);
    let mut h = Blake2b::new(32);
    h.update(b"xrd-mailbox-shard");
    h.update(mailbox);
    let d = h.finalize_32();
    (u64::from_le_bytes(d[..8].try_into().expect("8 bytes")) % n_shards as u64) as usize
}

/// What can go wrong in the mailbox tier.
///
/// The old API could not tell "empty mailbox" from "mailbox that never
/// existed", and `put` had no way to report an overfull shard; every
/// condition is now explicit.  Backends that cannot produce a given
/// variant simply never return it (the in-memory hub has no
/// [`MailboxError::Storage`] failures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MailboxError {
    /// The mailbox has never received a message (distinct from a known
    /// mailbox that is currently empty, which yields an empty page).
    UnknownMailbox {
        /// The mailbox id that was asked for.
        mailbox: [u8; 32],
    },
    /// The shard's capacity cap would be exceeded by this `put`.
    ShardFull {
        /// The shard that is full.
        shard: usize,
        /// Its configured capacity (pending messages).
        cap: usize,
    },
    /// A message was routed to a store that does not own its shard.
    WrongShard {
        /// The shard the message belongs to.
        shard: usize,
        /// The shard this store serves.
        expected: usize,
    },
    /// A cursor beyond the mailbox's assigned sequence range (a reader
    /// can only learn cursors from pages, so this is a client bug or a
    /// corrupted request).
    BadCursor {
        /// The offending cursor.
        cursor: u64,
        /// The first not-yet-assigned sequence number.
        next: u64,
    },
    /// The persistent backend failed at the I/O layer (or found
    /// corruption it could not repair).
    Storage {
        /// What broke, in human terms.
        message: String,
    },
}

impl std::fmt::Display for MailboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MailboxError::UnknownMailbox { mailbox } => {
                write!(f, "unknown mailbox {:02x}{:02x}…", mailbox[0], mailbox[1])
            }
            MailboxError::ShardFull { shard, cap } => {
                write!(f, "mailbox shard {shard} full (cap {cap})")
            }
            MailboxError::WrongShard { shard, expected } => {
                write!(f, "message for shard {shard} routed to shard {expected}")
            }
            MailboxError::BadCursor { cursor, next } => {
                write!(
                    f,
                    "cursor {cursor} beyond mailbox sequence range (next {next})"
                )
            }
            MailboxError::Storage { message } => write!(f, "mailbox storage: {message}"),
        }
    }
}

impl std::error::Error for MailboxError {}

/// One stored mailbox entry as returned by [`MailboxStore::fetch_page`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageEntry {
    /// The entry's per-mailbox sequence number (the ack cursor space).
    pub seq: u64,
    /// The round the entry was delivered in — what the owner must pass
    /// to `User::open_mailbox`, since sealing nonces are round-scoped.
    pub round: u64,
    /// The sealed payload.
    pub sealed: Vec<u8>,
}

/// One page of a mailbox walk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Page {
    /// Entries in sequence order, starting at the requested cursor
    /// (clamped to the first un-acked entry).
    pub entries: Vec<PageEntry>,
    /// Cursor for the next page: one past the last returned sequence
    /// number (equal to the effective start cursor when the page is
    /// empty).  Passing it to [`MailboxStore::ack`] retires exactly the
    /// entries returned so far.
    pub next_cursor: u64,
    /// Entries still waiting past `next_cursor` at the time of the
    /// read.  `0` means the walk is complete (until new deliveries).
    pub remaining: u64,
}

/// The storage API of one mailbox tier: sharded delivery, paginated
/// non-destructive reads, ack-driven retention.
///
/// See the [module docs](self) for the delivery semantics.  All methods
/// are synchronous; callers that need shard parallelism run one store
/// (or one connection per remote store) per thread.
pub trait MailboxStore {
    /// Deliver one message (Algorithm 1, step 2b) in `round`.  Returns
    /// the sequence number the entry was assigned.
    fn put(&mut self, round: u64, msg: MailboxMessage) -> Result<u64, MailboxError>;

    /// Read up to `max` entries of `mailbox` starting at `cursor`
    /// (sequence number; `0` starts at the first un-acked entry).
    /// Non-destructive: re-reading the same cursor returns the same
    /// entries until they are acked.
    fn fetch_page(
        &mut self,
        mailbox: &[u8; 32],
        cursor: u64,
        max: usize,
    ) -> Result<Page, MailboxError>;

    /// Retire every entry of `mailbox` with sequence number `< upto`,
    /// returning how many were retired.  Idempotent: re-acking an
    /// already-acked prefix is a no-op returning `0`.
    fn ack(&mut self, mailbox: &[u8; 32], upto: u64) -> Result<u64, MailboxError>;

    /// Number of un-acked entries waiting in `mailbox` (the quantity an
    /// adversary observing the mailbox server sees; tests use it to
    /// check the uniformity invariant).
    fn pending(&self, mailbox: &[u8; 32]) -> Result<u64, MailboxError>;

    /// Make everything accepted so far durable (fsync for the
    /// persistent backend; a no-op in memory).
    fn flush(&mut self) -> Result<(), MailboxError>;

    /// Open a delivery batch identified by `(round, batch)`.  Returns
    /// `Ok(false)` if that batch id has already been durably committed
    /// — a retried delivery the caller must ack without re-storing.
    /// Backends without durable batch tracking accept every batch.
    fn begin_batch(&mut self, _round: u64, _batch: u64) -> Result<bool, MailboxError> {
        Ok(true)
    }

    /// Close the delivery batch opened by [`MailboxStore::begin_batch`].
    /// Durable once the following [`MailboxStore::flush`] returns: a
    /// crash before then rolls the whole batch back on recovery.
    fn commit_batch(&mut self, _round: u64, _batch: u64) -> Result<(), MailboxError> {
        Ok(())
    }

    /// Abandon a delivery batch after a mid-batch failure, so recovery
    /// rolls back whatever parts of it reached disk.
    fn abort_batch(&mut self, _round: u64, _batch: u64) -> Result<(), MailboxError> {
        Ok(())
    }
}

/// Walk a whole mailbox in pages of `page` entries and ack what was
/// read: the convenience "fetch everything" built on the paginated API,
/// used by in-process deployments and tests.  An unknown mailbox is
/// treated as empty (the caller asked on the owner's behalf; a user who
/// was never delivered to simply has nothing).  Returns
/// `(delivery round, sealed payload)` pairs in sequence order.
pub fn drain(
    store: &mut dyn MailboxStore,
    mailbox: &[u8; 32],
    page: usize,
) -> Result<Vec<(u64, Vec<u8>)>, MailboxError> {
    let mut out = Vec::new();
    let mut cursor = 0u64;
    loop {
        let p = match store.fetch_page(mailbox, cursor, page) {
            Ok(p) => p,
            Err(MailboxError::UnknownMailbox { .. }) => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let done = p.remaining == 0;
        cursor = p.next_cursor;
        out.extend(p.entries.into_iter().map(|e| (e.round, e.sealed)));
        if done {
            break;
        }
    }
    if !out.is_empty() {
        store.ack(mailbox, cursor)?;
    }
    Ok(out)
}

/// Store-wide metric handles, resolved once per process.
pub(crate) fn store_metrics() -> &'static StoreMetrics {
    static METRICS: std::sync::OnceLock<StoreMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| StoreMetrics {
        puts: xrd_obs::counter("mailbox.puts"),
        pages: xrd_obs::counter("mailbox.pages"),
        acks: xrd_obs::counter("mailbox.acks"),
    })
}

pub(crate) struct StoreMetrics {
    /// Messages delivered into mailboxes (both backends).
    pub puts: &'static xrd_obs::Counter,
    /// Pages served by `fetch_page`.
    pub pages: &'static xrd_obs::Counter,
    /// Entries retired by `ack`.
    pub acks: &'static xrd_obs::Counter,
}

/// One mailbox's in-memory state: the un-acked tail of its sequence
/// space.  `entries` is sorted by `seq` (append-only puts keep it so).
#[derive(Clone, Debug, Default)]
struct MemBox {
    /// Everything below this sequence number has been acked.
    acked: u64,
    /// Next sequence number to assign.
    next: u64,
    entries: std::collections::VecDeque<(u64, u64, Vec<u8>)>,
}

/// Shared cursor arithmetic for one mailbox page over any sorted
/// entry sequence: effective start, slice bounds, next cursor and
/// remainder.  `seqs` must be ascending.
fn page_bounds(
    mut seqs: impl Iterator<Item = u64> + Clone,
    total: usize,
    acked: u64,
    next: u64,
    cursor: u64,
    max: usize,
) -> Result<(usize, usize, u64, u64), MailboxError> {
    if cursor > next {
        return Err(MailboxError::BadCursor { cursor, next });
    }
    let start_seq = cursor.max(acked);
    let start = seqs.clone().take_while(|&s| s < start_seq).count();
    let take = max.min(total - start);
    let end = start + take;
    let next_cursor = if take == 0 {
        start_seq
    } else {
        seqs.nth(end - 1).expect("end-1 < total") + 1
    };
    Ok((start, end, next_cursor, (total - end) as u64))
}

/// A set of mailbox servers sharded by mailbox id — the in-memory
/// [`MailboxStore`] backend.
///
/// Routing is internal: `put`/`fetch_page` derive the owning shard with
/// [`shard_of`], so a hub with `n` shards is `n` mailbox servers in one
/// value.  An optional per-shard capacity cap makes `put` report
/// [`MailboxError::ShardFull`] instead of growing without bound.
#[derive(Clone, Debug)]
pub struct MailboxHub {
    shards: Vec<HashMap<[u8; 32], MemBox>>,
    /// Un-acked entries per shard (maintained so capacity checks and
    /// [`MailboxHub::total_pending`] are O(1)).
    load: Vec<usize>,
    cap: Option<usize>,
}

impl MailboxHub {
    /// Create a hub with `n_shards` mailbox servers and no capacity cap.
    pub fn new(n_shards: usize) -> MailboxHub {
        assert!(n_shards >= 1);
        MailboxHub {
            shards: vec![HashMap::new(); n_shards],
            load: vec![0; n_shards],
            cap: None,
        }
    }

    /// Like [`MailboxHub::new`], but each shard holds at most `cap`
    /// un-acked messages; a `put` past that fails with
    /// [`MailboxError::ShardFull`].
    pub fn with_capacity(n_shards: usize, cap: usize) -> MailboxHub {
        let mut hub = MailboxHub::new(n_shards);
        hub.cap = Some(cap);
        hub
    }

    /// Which shard (mailbox server) owns a mailbox.
    pub fn shard_of(&self, mailbox: &[u8; 32]) -> usize {
        shard_of(mailbox, self.shards.len())
    }

    /// Total un-acked messages currently held across all shards.
    pub fn total_pending(&self) -> usize {
        self.load.iter().sum()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }
}

impl MailboxStore for MailboxHub {
    fn put(&mut self, round: u64, msg: MailboxMessage) -> Result<u64, MailboxError> {
        let shard = self.shard_of(&msg.mailbox);
        if let Some(cap) = self.cap {
            if self.load[shard] >= cap {
                return Err(MailboxError::ShardFull { shard, cap });
            }
        }
        let mbox = self.shards[shard].entry(msg.mailbox).or_default();
        let seq = mbox.next;
        mbox.next += 1;
        mbox.entries.push_back((seq, round, msg.sealed));
        self.load[shard] += 1;
        store_metrics().puts.incr();
        Ok(seq)
    }

    fn fetch_page(
        &mut self,
        mailbox: &[u8; 32],
        cursor: u64,
        max: usize,
    ) -> Result<Page, MailboxError> {
        let shard = self.shard_of(mailbox);
        let mbox = self.shards[shard]
            .get(mailbox)
            .ok_or(MailboxError::UnknownMailbox { mailbox: *mailbox })?;
        let (start, end, next_cursor, remaining) = page_bounds(
            mbox.entries.iter().map(|(s, _, _)| *s),
            mbox.entries.len(),
            mbox.acked,
            mbox.next,
            cursor,
            max,
        )?;
        let entries = mbox
            .entries
            .iter()
            .skip(start)
            .take(end - start)
            .map(|(seq, round, sealed)| PageEntry {
                seq: *seq,
                round: *round,
                sealed: sealed.clone(),
            })
            .collect();
        store_metrics().pages.incr();
        Ok(Page {
            entries,
            next_cursor,
            remaining,
        })
    }

    fn ack(&mut self, mailbox: &[u8; 32], upto: u64) -> Result<u64, MailboxError> {
        let shard = self.shard_of(mailbox);
        let mbox = self.shards[shard]
            .get_mut(mailbox)
            .ok_or(MailboxError::UnknownMailbox { mailbox: *mailbox })?;
        if upto > mbox.next {
            return Err(MailboxError::BadCursor {
                cursor: upto,
                next: mbox.next,
            });
        }
        let mut retired = 0u64;
        while mbox.entries.front().is_some_and(|(s, _, _)| *s < upto) {
            mbox.entries.pop_front();
            retired += 1;
        }
        mbox.acked = mbox.acked.max(upto);
        self.load[shard] -= retired as usize;
        store_metrics().acks.add(retired);
        Ok(retired)
    }

    fn pending(&self, mailbox: &[u8; 32]) -> Result<u64, MailboxError> {
        let shard = self.shard_of(mailbox);
        let mbox = self.shards[shard]
            .get(mailbox)
            .ok_or(MailboxError::UnknownMailbox { mailbox: *mailbox })?;
        Ok(mbox.entries.len() as u64)
    }

    fn flush(&mut self) -> Result<(), MailboxError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(mailbox: u8, body: u8) -> MailboxMessage {
        MailboxMessage {
            mailbox: [mailbox; 32],
            sealed: vec![body; 4],
        }
    }

    #[test]
    fn put_page_ack_lifecycle() {
        let mut hub = MailboxHub::new(4);
        hub.put(7, msg(1, 10)).unwrap();
        hub.put(7, msg(1, 11)).unwrap();
        hub.put(7, msg(2, 20)).unwrap();
        assert_eq!(hub.pending(&[1u8; 32]), Ok(2));

        // Non-destructive paged read, in order, with rounds.
        let p = hub.fetch_page(&[1u8; 32], 0, 10).unwrap();
        assert_eq!(p.entries.len(), 2);
        assert_eq!(
            p.entries[0],
            PageEntry {
                seq: 0,
                round: 7,
                sealed: vec![10u8; 4]
            }
        );
        assert_eq!((p.next_cursor, p.remaining), (2, 0));
        // Re-read: same entries (a fetch is a read, not a drain).
        assert_eq!(hub.fetch_page(&[1u8; 32], 0, 10).unwrap(), p);

        // Ack retires, and is idempotent.
        assert_eq!(hub.ack(&[1u8; 32], 2).unwrap(), 2);
        assert_eq!(hub.ack(&[1u8; 32], 2).unwrap(), 0);
        assert_eq!(hub.pending(&[1u8; 32]), Ok(0));
        // Acked mailbox stays *known* — empty page, not UnknownMailbox.
        let p2 = hub.fetch_page(&[1u8; 32], 0, 10).unwrap();
        assert!(p2.entries.is_empty());
        assert_eq!(p2.next_cursor, 2);
        assert_eq!(hub.total_pending(), 1);
    }

    #[test]
    fn unknown_mailbox_is_distinguishable_from_empty() {
        let mut hub = MailboxHub::new(2);
        assert!(matches!(
            hub.fetch_page(&[9u8; 32], 0, 4),
            Err(MailboxError::UnknownMailbox { .. })
        ));
        assert!(matches!(
            hub.pending(&[9u8; 32]),
            Err(MailboxError::UnknownMailbox { .. })
        ));
        hub.put(0, msg(9, 1)).unwrap();
        hub.ack(&[9u8; 32], 1).unwrap();
        assert_eq!(hub.pending(&[9u8; 32]), Ok(0)); // known and empty
    }

    #[test]
    fn pagination_partitions_exactly() {
        let mut hub = MailboxHub::new(1);
        for i in 0..23u8 {
            hub.put(3, msg(5, i)).unwrap();
        }
        for page in [1usize, 2, 3, 7, 23, 50] {
            let mut seen = Vec::new();
            let mut cursor = 0;
            loop {
                let p = hub.fetch_page(&[5u8; 32], cursor, page).unwrap();
                assert!(p.entries.len() <= page);
                seen.extend(p.entries.iter().map(|e| e.seq));
                cursor = p.next_cursor;
                if p.remaining == 0 {
                    break;
                }
            }
            assert_eq!(seen, (0..23u64).collect::<Vec<_>>(), "page size {page}");
        }
    }

    #[test]
    fn cursor_is_stable_under_concurrent_puts() {
        // Entries delivered *during* a walk appear after the cursor,
        // never inside already-read territory.
        let mut hub = MailboxHub::new(1);
        for i in 0..4u8 {
            hub.put(0, msg(5, i)).unwrap();
        }
        let p1 = hub.fetch_page(&[5u8; 32], 0, 2).unwrap();
        hub.put(1, msg(5, 99)).unwrap(); // concurrent put mid-walk
        let p2 = hub.fetch_page(&[5u8; 32], p1.next_cursor, 10).unwrap();
        let seqs: Vec<u64> = p2.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        // The first page is unchanged by the interleaved put.
        assert_eq!(
            hub.fetch_page(&[5u8; 32], 0, 2).unwrap().entries,
            p1.entries
        );
    }

    #[test]
    fn shard_capacity_reports_overflow() {
        let mut hub = MailboxHub::with_capacity(1, 2);
        hub.put(0, msg(1, 0)).unwrap();
        hub.put(0, msg(1, 1)).unwrap();
        assert!(matches!(
            hub.put(0, msg(1, 2)),
            Err(MailboxError::ShardFull { shard: 0, cap: 2 })
        ));
        // Acking frees room.
        hub.ack(&[1u8; 32], 1).unwrap();
        hub.put(0, msg(1, 2)).unwrap();
    }

    #[test]
    fn bad_cursor_is_rejected() {
        let mut hub = MailboxHub::new(1);
        hub.put(0, msg(1, 0)).unwrap();
        assert!(matches!(
            hub.fetch_page(&[1u8; 32], 5, 1),
            Err(MailboxError::BadCursor { cursor: 5, next: 1 })
        ));
        assert!(matches!(
            hub.ack(&[1u8; 32], 5),
            Err(MailboxError::BadCursor { .. })
        ));
    }

    #[test]
    fn drain_reads_everything_and_acks() {
        let mut hub = MailboxHub::new(2);
        for r in 0..3u64 {
            for i in 0..5u8 {
                hub.put(r, msg(7, i)).unwrap();
            }
        }
        let got = drain(&mut hub, &[7u8; 32], 4).unwrap();
        assert_eq!(got.len(), 15);
        assert_eq!(got[0].0, 0); // rounds preserved in order
        assert_eq!(got[14].0, 2);
        assert_eq!(hub.pending(&[7u8; 32]), Ok(0));
        // Unknown mailbox drains to empty rather than erroring: the
        // round path fetches on behalf of users who may never have
        // been delivered to.
        assert_eq!(drain(&mut hub, &[8u8; 32], 4).unwrap(), Vec::new());
    }

    #[test]
    fn sharding_is_stable_and_spread() {
        let hub = MailboxHub::new(10);
        let mut used = std::collections::HashSet::new();
        for i in 0..100u8 {
            let s = hub.shard_of(&[i; 32]);
            assert_eq!(s, hub.shard_of(&[i; 32]));
            assert!(s < 10);
            used.insert(s);
        }
        assert!(used.len() >= 7, "shard spread too poor: {used:?}");
    }

    #[test]
    fn single_shard_works() {
        let mut hub = MailboxHub::new(1);
        hub.put(0, msg(9, 1)).unwrap();
        assert_eq!(drain(&mut hub, &[9u8; 32], 8).unwrap().len(), 1);
    }
}
