//! The log-structured persistent [`MailboxStore`] backend.
//!
//! ## On-disk layout
//!
//! A store is one directory holding append-only **segment files**
//! `seg-<id:016x>.log`, each starting with an 8-byte magic and followed
//! by checksummed records:
//!
//! ```text
//! PUT    = [0x01][mailbox:32][seq:u64][round:u64][len:u32][sealed:len][fnv64]
//! ACK    = [0x02][mailbox:32][upto:u64][fnv64]
//! BEGIN  = [0x03][round:u64][batch:u64][fnv64]
//! COMMIT = [0x04][round:u64][batch:u64][fnv64]
//! ABORT  = [0x05][round:u64][batch:u64][fnv64]
//! ```
//!
//! All integers little-endian; `fnv64` is FNV-1a over every preceding
//! byte of the record (torn-write detection, not adversarial
//! integrity — the payloads are already AEAD-sealed for their owners).
//! BEGIN/COMMIT/ABORT bracket one wire `Deliver` batch
//! ([`MailboxStore::begin_batch`]): PUTs between a BEGIN and its COMMIT
//! belong to that delivery and are only applied on recovery if the
//! COMMIT landed — a crash mid-batch rolls the partial batch back (an
//! ABORT is appended on reopen), so the sender's retry stores it
//! exactly once.  Committed `(round, batch)` ids double as the durable
//! delivery-dedup window: `begin_batch` answers `false` for an id whose
//! COMMIT is already on disk.  Bare PUTs outside any bracket
//! (compaction copies, direct store users) are committed by
//! construction.
//! Exactly one segment (the highest id) is *active* and appended to;
//! when it exceeds [`LogStoreConfig::segment_bytes`] it is sealed and a
//! fresh one started (**rotation**).
//!
//! ## Index, compaction, recovery
//!
//! The in-memory index maps each mailbox to its un-acked entry
//! locations `(seq, round, segment, offset, len)` plus its ack
//! watermark; reads are `pread`s straight out of segment files.  An ack
//! appends an ACK record (so retention survives restarts) and drops the
//! retired locations.  A sealed segment whose live share falls to half
//! or below — or to zero — is **compacted**: the current ack watermark
//! of every mailbox it touched and copies of its still-live entries
//! (original `seq`/`round` preserved) are appended to the active
//! segment, then the file is deleted.  Replay is idempotent (duplicate
//! sequence numbers and stale acks are skipped), so a crash anywhere in
//! compaction or delivery recovers cleanly.
//!
//! **Recovery** on [`LogMailboxStore::open`] replays every segment in
//! id order, rebuilding the index; a torn record at a segment tail
//! (the crash-mid-append case) truncates the tail and keeps everything
//! before it.  `mailbox.recovery_us` records how long the rebuild took.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use xrd_mixnet::MailboxMessage;

use super::{page_bounds, shard_of, store_metrics, MailboxError, MailboxStore, Page, PageEntry};
use crate::journal::fnv64;

const MAGIC: &[u8; 8] = b"XRDMBOX1";
const KIND_PUT: u8 = 1;
const KIND_ACK: u8 = 2;
const KIND_TXN_BEGIN: u8 = 3;
const KIND_TXN_COMMIT: u8 = 4;
const KIND_TXN_ABORT: u8 = 5;
/// Committed delivery-batch ids retained for dedup (matches the wire
/// layer's in-memory window; a sender retries a batch within a few
/// connection lifetimes, never thousands of batches later).
const BATCH_DEDUP_WINDOW: usize = 4096;
/// Sanity cap on a record's sealed payload during replay: anything
/// larger than this is a torn length field, not a real message.
const MAX_SEALED: usize = 1 << 20;

/// Tuning knobs for a [`LogMailboxStore`].
#[derive(Clone, Copy, Debug)]
pub struct LogStoreConfig {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Fsync on [`MailboxStore::flush`] (and on rotation/compaction).
    /// Benchmarks measuring pure indexing cost may turn it off; daemons
    /// leave it on.
    pub sync: bool,
}

impl Default for LogStoreConfig {
    fn default() -> LogStoreConfig {
        LogStoreConfig {
            segment_bytes: 8 * 1024 * 1024,
            sync: true,
        }
    }
}

/// Where one live entry's sealed bytes sit on disk.
#[derive(Clone, Copy, Debug)]
struct EntryLoc {
    seq: u64,
    round: u64,
    seg: u64,
    /// Byte offset of the sealed payload within the segment file.
    offset: u64,
    len: u32,
}

#[derive(Debug, Default)]
struct BoxIndex {
    /// Everything below this sequence number has been acked.
    acked: u64,
    /// Next sequence number to assign.
    next: u64,
    /// Live entries, ascending by `seq`.
    entries: VecDeque<EntryLoc>,
}

struct Segment {
    file: File,
    path: PathBuf,
    len: u64,
    /// Live (indexed, un-acked) PUT records still pointing here.
    live: u64,
    /// Bytes of those live records' payloads.
    live_bytes: u64,
    /// Total payload bytes ever PUT into this segment (compaction
    /// denominator).
    put_bytes: u64,
    /// Every mailbox with any record in this segment — compaction
    /// re-appends their ack watermarks before deleting the file.
    touched: HashSet<[u8; 32]>,
}

/// The log-structured persistent mailbox backend; see the [module
/// docs](self) for format and semantics.  One store serves one shard
/// of a deployment (`shard`/`n_shards` reject wrongly-routed puts).
pub struct LogMailboxStore {
    dir: PathBuf,
    shard: usize,
    n_shards: usize,
    cfg: LogStoreConfig,
    active_id: u64,
    segments: BTreeMap<u64, Segment>,
    index: HashMap<[u8; 32], BoxIndex>,
    /// Appends since the last fsync.
    dirty: bool,
    /// Recently committed delivery-batch ids (the durable dedup
    /// window), plus their order for eviction.
    committed: HashSet<(u64, u64)>,
    committed_order: VecDeque<(u64, u64)>,
    /// Replay-only: the delivery transaction currently open, with the
    /// PUTs staged since its BEGIN.
    replay_txn: Option<ReplayTxn>,
}

/// One open delivery transaction during recovery replay.
struct ReplayTxn {
    round: u64,
    batch: u64,
    staged: Vec<StagedPut>,
}

/// A PUT held back during replay until its transaction commits.
struct StagedPut {
    mailbox: [u8; 32],
    seq: u64,
    round: u64,
    seg: u64,
    offset: u64,
    len: u32,
}

/// Persistence metric handles, resolved once per process.
fn log_metrics() -> &'static LogMetrics {
    static METRICS: std::sync::OnceLock<LogMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| LogMetrics {
        rotations: xrd_obs::counter("mailbox.segment_rotations"),
        compactions: xrd_obs::counter("mailbox.compactions"),
        recovery_us: xrd_obs::hist("mailbox.recovery_us"),
        torn_tails: xrd_obs::counter("mailbox.recovery.torn_tails"),
        aborted_batches: xrd_obs::counter("mailbox.recovery.aborted_batches"),
    })
}

struct LogMetrics {
    /// Active-segment rotations.
    rotations: &'static xrd_obs::Counter,
    /// Sealed segments compacted away.
    compactions: &'static xrd_obs::Counter,
    /// Index-rebuild time on open, µs.
    recovery_us: &'static xrd_obs::Histogram,
    /// Torn record tails truncated during recovery.
    torn_tails: &'static xrd_obs::Counter,
    /// Delivery batches rolled back during recovery (crash before
    /// their COMMIT landed; the sender's retry re-stores them).
    aborted_batches: &'static xrd_obs::Counter,
}

fn io_err(what: &str, e: std::io::Error) -> MailboxError {
    MailboxError::Storage {
        message: format!("{what}: {e}"),
    }
}

fn seg_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:016x}.log"))
}

impl LogMailboxStore {
    /// Open (or create) the store in `dir`, rebuilding the index from
    /// the segment files found there.
    pub fn open(
        dir: impl Into<PathBuf>,
        shard: usize,
        n_shards: usize,
        cfg: LogStoreConfig,
    ) -> Result<LogMailboxStore, MailboxError> {
        assert!(shard < n_shards);
        let start = std::time::Instant::now();
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create store dir", e))?;

        let mut ids: Vec<u64> = std::fs::read_dir(&dir)
            .map_err(|e| io_err("list store dir", e))?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                let hex = name.strip_prefix("seg-")?.strip_suffix(".log")?;
                u64::from_str_radix(hex, 16).ok()
            })
            .collect();
        ids.sort_unstable();

        let mut store = LogMailboxStore {
            dir,
            shard,
            n_shards,
            cfg,
            active_id: 0,
            segments: BTreeMap::new(),
            index: HashMap::new(),
            dirty: false,
            committed: HashSet::new(),
            committed_order: VecDeque::new(),
            replay_txn: None,
        };
        for id in ids {
            store.replay_segment(id)?;
        }
        match store.segments.keys().next_back() {
            Some(&last) => store.active_id = last,
            None => {
                store.create_segment(0)?;
                store.active_id = 0;
            }
        }
        // A transaction still open at the end of replay is the
        // crash-mid-batch case: its staged PUTs are dropped (the
        // sender never got an ack, so it retries the whole batch) and
        // an ABORT record is appended so the dangling BEGIN can never
        // resurrect them on a later recovery.
        if let Some(txn) = store.replay_txn.take() {
            log_metrics().aborted_batches.incr();
            store.append(
                &Self::encode_txn(KIND_TXN_ABORT, txn.round, txn.batch),
                false,
            )?;
            store.flush()?;
        }
        log_metrics().recovery_us.record_duration(start.elapsed());
        Ok(store)
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of segment files currently on disk (tests).
    #[doc(hidden)]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// `(id, byte length)` of the active segment (tests use this to
    /// compute truncation points for crash simulation).
    #[doc(hidden)]
    pub fn active_segment(&self) -> (u64, u64) {
        let seg = &self.segments[&self.active_id];
        (self.active_id, seg.len)
    }

    fn create_segment(&mut self, id: u64) -> Result<(), MailboxError> {
        let path = seg_path(&self.dir, id);
        let mut file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("create segment", e))?;
        file.write_all(MAGIC)
            .map_err(|e| io_err("write segment header", e))?;
        self.segments.insert(
            id,
            Segment {
                file,
                path,
                len: MAGIC.len() as u64,
                live: 0,
                live_bytes: 0,
                put_bytes: 0,
                touched: HashSet::new(),
            },
        );
        self.sync_dir()?;
        Ok(())
    }

    fn sync_dir(&self) -> Result<(), MailboxError> {
        if !self.cfg.sync {
            return Ok(());
        }
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io_err("fsync store dir", e))
    }

    /// Replay one segment file into the index, truncating a torn tail.
    fn replay_segment(&mut self, id: u64) -> Result<(), MailboxError> {
        let path = seg_path(&self.dir, id);
        let bytes = std::fs::read(&path).map_err(|e| io_err("read segment", e))?;
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open segment", e))?;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            // Crash before the header landed: an empty segment.
            file.set_len(0).map_err(|e| io_err("truncate segment", e))?;
            let mut f = file;
            f.write_all(MAGIC)
                .map_err(|e| io_err("rewrite segment header", e))?;
            log_metrics().torn_tails.incr();
            self.segments.insert(
                id,
                Segment {
                    file: f,
                    path,
                    len: MAGIC.len() as u64,
                    live: 0,
                    live_bytes: 0,
                    put_bytes: 0,
                    touched: HashSet::new(),
                },
            );
            return Ok(());
        }

        let mut seg = Segment {
            file,
            path,
            len: 0, // set below
            live: 0,
            live_bytes: 0,
            put_bytes: 0,
            touched: HashSet::new(),
        };
        let mut o = MAGIC.len();
        let good = loop {
            let Some(rec) = parse_record(&bytes, o) else {
                break o;
            };
            match rec {
                Record::Put {
                    end,
                    mailbox,
                    seq,
                    round,
                    payload_offset,
                    payload_len,
                } => {
                    seg.touched.insert(mailbox);
                    seg.put_bytes += payload_len as u64;
                    let staged = StagedPut {
                        mailbox,
                        seq,
                        round,
                        seg: id,
                        offset: payload_offset as u64,
                        len: payload_len,
                    };
                    match &mut self.replay_txn {
                        // Inside a delivery bracket: held back until its
                        // COMMIT proves the batch landed.
                        Some(txn) => txn.staged.push(staged),
                        // Bare PUT (compaction copy, direct store user):
                        // committed by construction.
                        None => apply_staged(
                            &mut self.index,
                            &mut self.segments,
                            &mut seg,
                            id,
                            vec![staged],
                        ),
                    }
                    o = end;
                }
                Record::Txn {
                    end,
                    kind,
                    round,
                    batch,
                } => {
                    match kind {
                        KIND_TXN_BEGIN => {
                            // A BEGIN while a bracket is open cannot be
                            // produced by the runtime (every batch ends
                            // in COMMIT or ABORT, and open() closes a
                            // dangling one); if it ever appears, apply
                            // the staged PUTs rather than lose data.
                            if let Some(prev) = self.replay_txn.take() {
                                apply_staged(
                                    &mut self.index,
                                    &mut self.segments,
                                    &mut seg,
                                    id,
                                    prev.staged,
                                );
                            }
                            self.replay_txn = Some(ReplayTxn {
                                round,
                                batch,
                                staged: Vec::new(),
                            });
                        }
                        KIND_TXN_COMMIT => {
                            if let Some(txn) = self.replay_txn.take() {
                                apply_staged(
                                    &mut self.index,
                                    &mut self.segments,
                                    &mut seg,
                                    id,
                                    txn.staged,
                                );
                            }
                            self.record_committed(round, batch);
                        }
                        // ABORT: the batch never completed; its staged
                        // PUTs are rolled back (the sender retries).
                        _ => {
                            self.replay_txn = None;
                        }
                    }
                    o = end;
                }
                Record::Ack { end, mailbox, upto } => {
                    seg.touched.insert(mailbox);
                    let b = self.index.entry(mailbox).or_default();
                    b.acked = b.acked.max(upto);
                    b.next = b.next.max(upto);
                    let mut retired: Vec<EntryLoc> = Vec::new();
                    while b.entries.front().is_some_and(|e| e.seq < upto) {
                        retired.push(b.entries.pop_front().expect("front checked"));
                    }
                    for loc in retired {
                        let owner = if loc.seg == id {
                            &mut seg
                        } else {
                            self.segments.get_mut(&loc.seg).expect("segment replayed")
                        };
                        owner.live -= 1;
                        owner.live_bytes -= loc.len as u64;
                    }
                    o = end;
                }
            }
        };
        if good < bytes.len() {
            // Torn tail: a crash mid-append.  Everything before it is
            // intact; drop the partial record.
            seg.file
                .set_len(good as u64)
                .map_err(|e| io_err("truncate torn tail", e))?;
            log_metrics().torn_tails.incr();
        }
        seg.len = good as u64;
        self.segments.insert(id, seg);
        Ok(())
    }

    /// Append a raw record to the active segment, rotating first if the
    /// active segment is over its size budget.
    fn append(&mut self, record: &[u8], allow_rotate: bool) -> Result<u64, MailboxError> {
        if allow_rotate && self.segments[&self.active_id].len >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        let seg = self.segments.get_mut(&self.active_id).expect("active");
        let at = seg.len;
        seg.file
            .write_all(record)
            .map_err(|e| io_err("append record", e))?;
        seg.len += record.len() as u64;
        self.dirty = true;
        Ok(at)
    }

    /// Seal the active segment and start a fresh one.
    fn rotate(&mut self) -> Result<(), MailboxError> {
        if self.cfg.sync {
            let seg = &self.segments[&self.active_id];
            seg.file
                .sync_data()
                .map_err(|e| io_err("fsync sealed segment", e))?;
        }
        let next = self.active_id + 1;
        self.create_segment(next)?;
        self.active_id = next;
        log_metrics().rotations.incr();
        Ok(())
    }

    fn encode_put(mailbox: &[u8; 32], seq: u64, round: u64, sealed: &[u8]) -> Vec<u8> {
        let mut rec = Vec::with_capacity(1 + 32 + 8 + 8 + 4 + sealed.len() + 8);
        rec.push(KIND_PUT);
        rec.extend_from_slice(mailbox);
        rec.extend_from_slice(&seq.to_le_bytes());
        rec.extend_from_slice(&round.to_le_bytes());
        rec.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
        rec.extend_from_slice(sealed);
        rec.extend_from_slice(&fnv64(&rec).to_le_bytes());
        rec
    }

    fn encode_txn(kind: u8, round: u64, batch: u64) -> Vec<u8> {
        let mut rec = Vec::with_capacity(1 + 8 + 8 + 8);
        rec.push(kind);
        rec.extend_from_slice(&round.to_le_bytes());
        rec.extend_from_slice(&batch.to_le_bytes());
        rec.extend_from_slice(&fnv64(&rec).to_le_bytes());
        rec
    }

    /// Remember a committed delivery-batch id for dedup, evicting the
    /// oldest beyond [`BATCH_DEDUP_WINDOW`].
    fn record_committed(&mut self, round: u64, batch: u64) {
        if self.committed.insert((round, batch)) {
            self.committed_order.push_back((round, batch));
            while self.committed_order.len() > BATCH_DEDUP_WINDOW {
                if let Some(old) = self.committed_order.pop_front() {
                    self.committed.remove(&old);
                }
            }
        }
    }

    fn encode_ack(mailbox: &[u8; 32], upto: u64) -> Vec<u8> {
        let mut rec = Vec::with_capacity(1 + 32 + 8 + 8);
        rec.push(KIND_ACK);
        rec.extend_from_slice(mailbox);
        rec.extend_from_slice(&upto.to_le_bytes());
        rec.extend_from_slice(&fnv64(&rec).to_le_bytes());
        rec
    }

    fn read_sealed(&self, loc: &EntryLoc) -> Result<Vec<u8>, MailboxError> {
        let seg = self.segments.get(&loc.seg).expect("live entry's segment");
        let mut buf = vec![0u8; loc.len as usize];
        seg.file
            .read_exact_at(&mut buf, loc.offset)
            .map_err(|e| io_err("read entry", e))?;
        Ok(buf)
    }

    /// Compact every sealed segment whose live share has dropped to
    /// zero or to half or below: re-append ack watermarks and live
    /// entries to the active segment, then delete the file.
    fn compact_eligible(&mut self) -> Result<(), MailboxError> {
        let candidates: Vec<u64> = self
            .segments
            .iter()
            .filter(|(id, seg)| {
                **id != self.active_id && (seg.live == 0 || seg.live_bytes * 2 <= seg.put_bytes)
            })
            .map(|(id, _)| *id)
            .collect();
        for id in candidates {
            self.compact(id)?;
        }
        Ok(())
    }

    fn compact(&mut self, id: u64) -> Result<(), MailboxError> {
        debug_assert_ne!(id, self.active_id);
        let touched: Vec<[u8; 32]> = self.segments[&id].touched.iter().copied().collect();
        for mailbox in touched {
            // Re-record the ack watermark so deleting this segment's ACK
            // records cannot regress retention on recovery.
            let acked = self.index.get(&mailbox).map_or(0, |b| b.acked);
            if acked > 0 {
                self.append(&Self::encode_ack(&mailbox, acked), false)?;
            }
            // Copy the mailbox's live entries out of the doomed segment,
            // preserving seq and round (replay skips duplicates, so a
            // crash between copy and delete is safe).
            let locs: Vec<(usize, EntryLoc)> = self
                .index
                .get(&mailbox)
                .map(|b| {
                    b.entries
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.seg == id)
                        .map(|(i, e)| (i, *e))
                        .collect()
                })
                .unwrap_or_default();
            for (i, loc) in locs {
                let sealed = self.read_sealed(&loc)?;
                let rec = Self::encode_put(&mailbox, loc.seq, loc.round, &sealed);
                let at = self.append(&rec, false)?;
                let new_loc = EntryLoc {
                    seg: self.active_id,
                    offset: at + 1 + 32 + 8 + 8 + 4,
                    ..loc
                };
                let active = self.segments.get_mut(&self.active_id).expect("active");
                active.live += 1;
                active.live_bytes += loc.len as u64;
                active.put_bytes += loc.len as u64;
                active.touched.insert(mailbox);
                self.index.get_mut(&mailbox).expect("indexed").entries[i] = new_loc;
            }
        }
        self.flush()?;
        let seg = self.segments.remove(&id).expect("candidate exists");
        std::fs::remove_file(&seg.path).map_err(|e| io_err("delete compacted segment", e))?;
        self.sync_dir()?;
        log_metrics().compactions.incr();
        Ok(())
    }
}

impl MailboxStore for LogMailboxStore {
    fn put(&mut self, round: u64, msg: MailboxMessage) -> Result<u64, MailboxError> {
        let shard = shard_of(&msg.mailbox, self.n_shards);
        if shard != self.shard {
            return Err(MailboxError::WrongShard {
                shard,
                expected: self.shard,
            });
        }
        let seq = self.index.entry(msg.mailbox).or_default().next;
        let rec = Self::encode_put(&msg.mailbox, seq, round, &msg.sealed);
        let at = self.append(&rec, true)?;
        let b = self.index.get_mut(&msg.mailbox).expect("just inserted");
        b.next = seq + 1;
        b.entries.push_back(EntryLoc {
            seq,
            round,
            seg: self.active_id,
            offset: at + 1 + 32 + 8 + 8 + 4,
            len: msg.sealed.len() as u32,
        });
        let seg = self.segments.get_mut(&self.active_id).expect("active");
        seg.live += 1;
        seg.live_bytes += msg.sealed.len() as u64;
        seg.put_bytes += msg.sealed.len() as u64;
        seg.touched.insert(msg.mailbox);
        store_metrics().puts.incr();
        Ok(seq)
    }

    fn fetch_page(
        &mut self,
        mailbox: &[u8; 32],
        cursor: u64,
        max: usize,
    ) -> Result<Page, MailboxError> {
        let b = self
            .index
            .get(mailbox)
            .ok_or(MailboxError::UnknownMailbox { mailbox: *mailbox })?;
        let (start, end, next_cursor, remaining) = page_bounds(
            b.entries.iter().map(|e| e.seq),
            b.entries.len(),
            b.acked,
            b.next,
            cursor,
            max,
        )?;
        let locs: Vec<EntryLoc> = b
            .entries
            .iter()
            .skip(start)
            .take(end - start)
            .copied()
            .collect();
        let mut entries = Vec::with_capacity(locs.len());
        for loc in locs {
            entries.push(PageEntry {
                seq: loc.seq,
                round: loc.round,
                sealed: self.read_sealed(&loc)?,
            });
        }
        store_metrics().pages.incr();
        Ok(Page {
            entries,
            next_cursor,
            remaining,
        })
    }

    fn ack(&mut self, mailbox: &[u8; 32], upto: u64) -> Result<u64, MailboxError> {
        let b = self
            .index
            .get(mailbox)
            .ok_or(MailboxError::UnknownMailbox { mailbox: *mailbox })?;
        if upto > b.next {
            return Err(MailboxError::BadCursor {
                cursor: upto,
                next: b.next,
            });
        }
        if upto <= b.acked {
            return Ok(0); // idempotent replay of an old ack
        }
        self.append(&Self::encode_ack(mailbox, upto), true)?;
        let b = self.index.get_mut(mailbox).expect("checked above");
        b.acked = upto;
        let mut retired = Vec::new();
        while b.entries.front().is_some_and(|e| e.seq < upto) {
            retired.push(b.entries.pop_front().expect("front checked"));
        }
        for loc in &retired {
            let seg = self.segments.get_mut(&loc.seg).expect("live segment");
            seg.live -= 1;
            seg.live_bytes -= loc.len as u64;
        }
        store_metrics().acks.add(retired.len() as u64);
        self.compact_eligible()?;
        Ok(retired.len() as u64)
    }

    fn pending(&self, mailbox: &[u8; 32]) -> Result<u64, MailboxError> {
        let b = self
            .index
            .get(mailbox)
            .ok_or(MailboxError::UnknownMailbox { mailbox: *mailbox })?;
        Ok(b.entries.len() as u64)
    }

    fn flush(&mut self) -> Result<(), MailboxError> {
        if self.dirty && self.cfg.sync {
            self.segments[&self.active_id]
                .file
                .sync_data()
                .map_err(|e| io_err("fsync active segment", e))?;
        }
        self.dirty = false;
        Ok(())
    }

    fn begin_batch(&mut self, round: u64, batch: u64) -> Result<bool, MailboxError> {
        if self.committed.contains(&(round, batch)) {
            return Ok(false); // durably committed: dedup hit
        }
        self.append(&Self::encode_txn(KIND_TXN_BEGIN, round, batch), true)?;
        Ok(true)
    }

    fn commit_batch(&mut self, round: u64, batch: u64) -> Result<(), MailboxError> {
        // Not durable until the caller's flush(); one fsync covers the
        // whole bracket, and recovery rolls back anything uncommitted.
        self.append(&Self::encode_txn(KIND_TXN_COMMIT, round, batch), false)?;
        self.record_committed(round, batch);
        Ok(())
    }

    fn abort_batch(&mut self, round: u64, batch: u64) -> Result<(), MailboxError> {
        self.append(&Self::encode_txn(KIND_TXN_ABORT, round, batch), false)?;
        // Make the rollback durable before the error reply goes out.
        self.flush()
    }
}

enum Record {
    Put {
        end: usize,
        mailbox: [u8; 32],
        seq: u64,
        round: u64,
        payload_offset: usize,
        payload_len: u32,
    },
    Ack {
        end: usize,
        mailbox: [u8; 32],
        upto: u64,
    },
    Txn {
        end: usize,
        kind: u8,
        round: u64,
        batch: u64,
    },
}

/// Parse one record at `o`; `None` means a torn/absent record (replay
/// truncates there).
fn parse_record(bytes: &[u8], o: usize) -> Option<Record> {
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let kind = *bytes.get(o)?;
    match kind {
        KIND_PUT => {
            let header_end = o + 1 + 32 + 8 + 8 + 4;
            if bytes.len() < header_end {
                return None;
            }
            let len = u32::from_le_bytes(
                bytes[header_end - 4..header_end]
                    .try_into()
                    .expect("4 bytes"),
            );
            if len as usize > MAX_SEALED {
                return None;
            }
            let end = header_end + len as usize + 8;
            if bytes.len() < end {
                return None;
            }
            let stored = u64_at(end - 8);
            if fnv64(&bytes[o..end - 8]) != stored {
                return None;
            }
            Some(Record::Put {
                end,
                mailbox: bytes[o + 1..o + 33].try_into().expect("32 bytes"),
                seq: u64_at(o + 33),
                round: u64_at(o + 41),
                payload_offset: header_end,
                payload_len: len,
            })
        }
        KIND_ACK => {
            let end = o + 1 + 32 + 8 + 8;
            if bytes.len() < end {
                return None;
            }
            let stored = u64_at(end - 8);
            if fnv64(&bytes[o..end - 8]) != stored {
                return None;
            }
            Some(Record::Ack {
                end,
                mailbox: bytes[o + 1..o + 33].try_into().expect("32 bytes"),
                upto: u64_at(o + 33),
            })
        }
        KIND_TXN_BEGIN | KIND_TXN_COMMIT | KIND_TXN_ABORT => {
            let end = o + 1 + 8 + 8 + 8;
            if bytes.len() < end {
                return None;
            }
            let stored = u64_at(end - 8);
            if fnv64(&bytes[o..end - 8]) != stored {
                return None;
            }
            Some(Record::Txn {
                end,
                kind,
                round: u64_at(o + 1),
                batch: u64_at(o + 9),
            })
        }
        _ => None,
    }
}

/// Apply replayed (or staged-then-committed) PUTs to the index with the
/// standard idempotence rules: duplicate sequence numbers and already
/// acked entries are skipped, everything else is inserted in seq order
/// and counted live against its segment.  `current` is the segment
/// being replayed (not yet inserted into `segments`).
fn apply_staged(
    index: &mut HashMap<[u8; 32], BoxIndex>,
    segments: &mut BTreeMap<u64, Segment>,
    current: &mut Segment,
    current_id: u64,
    staged: Vec<StagedPut>,
) {
    for p in staged {
        let b = index.entry(p.mailbox).or_default();
        b.next = b.next.max(p.seq + 1);
        let dup = b.entries.iter().any(|e| e.seq == p.seq);
        if p.seq >= b.acked && !dup {
            let loc = EntryLoc {
                seq: p.seq,
                round: p.round,
                seg: p.seg,
                offset: p.offset,
                len: p.len,
            };
            // Replay order is append order, which is seq order per
            // mailbox except for compaction copies; insert sorted.
            let pos = b.entries.partition_point(|e| e.seq < p.seq);
            b.entries.insert(pos, loc);
            let owner = if p.seg == current_id {
                &mut *current
            } else {
                segments.get_mut(&p.seg).expect("segment replayed")
            };
            owner.live += 1;
            owner.live_bytes += p.len as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(mailbox: u8, body: &[u8]) -> MailboxMessage {
        MailboxMessage {
            mailbox: [mailbox; 32],
            sealed: body.to_vec(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xrd-mbox-{name}-{}", std::process::id(),));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_survives_reopen() {
        let dir = tmp("reopen");
        {
            let mut s = LogMailboxStore::open(&dir, 0, 1, LogStoreConfig::default()).unwrap();
            s.put(3, msg(1, b"abcd")).unwrap();
            s.put(3, msg(1, b"efgh")).unwrap();
            s.put(4, msg(2, b"ijkl")).unwrap();
            s.ack(&[1u8; 32], 1).unwrap();
            s.flush().unwrap();
        }
        let mut s = LogMailboxStore::open(&dir, 0, 1, LogStoreConfig::default()).unwrap();
        assert_eq!(s.pending(&[1u8; 32]), Ok(1));
        assert_eq!(s.pending(&[2u8; 32]), Ok(1));
        let p = s.fetch_page(&[1u8; 32], 0, 10).unwrap();
        assert_eq!(p.entries.len(), 1);
        assert_eq!(p.entries[0].seq, 1);
        assert_eq!(p.entries[0].round, 3);
        assert_eq!(p.entries[0].sealed, b"efgh");
        // Ack watermark survived: seq 0 stays gone, new seqs continue.
        assert_eq!(s.put(5, msg(1, b"mnop")).unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_full_ack_deletes_segments() {
        let dir = tmp("rotate");
        let cfg = LogStoreConfig {
            segment_bytes: 256, // tiny: rotate every few records
            sync: false,
        };
        let mut s = LogMailboxStore::open(&dir, 0, 1, cfg).unwrap();
        for i in 0..40u64 {
            s.put(i, msg(1, &[i as u8; 64])).unwrap();
        }
        assert!(s.segment_count() > 2, "expected rotations");
        // Ack everything: sealed segments become fully dead and are
        // compacted away; only the active one remains.
        s.ack(&[1u8; 32], 40).unwrap();
        assert_eq!(s.segment_count(), 1);
        assert_eq!(s.pending(&[1u8; 32]), Ok(0));
        // And the watermark survives reopen even though the segments
        // holding the PUTs (and their ACK records) are gone.
        drop(s);
        let mut s = LogMailboxStore::open(&dir, 0, 1, cfg).unwrap();
        assert_eq!(s.pending(&[1u8; 32]), Ok(0));
        assert_eq!(s.put(99, msg(1, b"next")).unwrap(), 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_compaction_preserves_live_entries() {
        let dir = tmp("compact");
        let cfg = LogStoreConfig {
            segment_bytes: 512,
            sync: false,
        };
        let mut s = LogMailboxStore::open(&dir, 0, 1, cfg).unwrap();
        // Interleave two mailboxes so early segments hold both.
        for i in 0..30u64 {
            s.put(i, msg(1, &[1u8; 64])).unwrap();
            s.put(i, msg(2, &[2u8; 64])).unwrap();
        }
        let before = s.segment_count();
        // Retire mailbox 1 entirely: old segments drop below the live
        // threshold and mailbox 2's entries get rewritten forward.
        s.ack(&[1u8; 32], 30).unwrap();
        assert!(
            s.segment_count() < before,
            "compaction should shrink the log"
        );
        let p = s.fetch_page(&[2u8; 32], 0, 64).unwrap();
        assert_eq!(p.entries.len(), 30);
        assert!(p.entries.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        assert!(p.entries.iter().all(|e| e.sealed == vec![2u8; 64]));
        // Everything still there after reopen.
        drop(s);
        let mut s = LogMailboxStore::open(&dir, 0, 1, cfg).unwrap();
        assert_eq!(s.pending(&[2u8; 32]), Ok(30));
        assert_eq!(s.fetch_page(&[2u8; 32], 0, 64).unwrap().entries.len(), 30);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_shard_put_is_rejected() {
        let dir = tmp("shard");
        let n = 4;
        let mut s = LogMailboxStore::open(&dir, 0, n, LogStoreConfig::default()).unwrap();
        let other = (0u8..255)
            .find(|&i| shard_of(&[i; 32], n) != 0)
            .expect("some mailbox on another shard");
        assert!(matches!(
            s.put(0, msg(other, b"x")),
            Err(MailboxError::WrongShard { expected: 0, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The crash the delivery-transaction bracket exists for: a batch
    /// whose BEGIN and PUTs hit the log but whose COMMIT never did is
    /// rolled back on reopen, and the redelivered batch stores exactly
    /// once with the same sequence numbers.
    #[test]
    fn uncommitted_batch_rolls_back_on_reopen() {
        let dir = tmp("txn-rollback");
        {
            let mut s = LogMailboxStore::open(&dir, 0, 1, LogStoreConfig::default()).unwrap();
            assert!(s.begin_batch(7, 1).unwrap(), "fresh batch id is accepted");
            s.put(7, msg(1, b"aaaa")).unwrap();
            s.put(7, msg(1, b"bbbb")).unwrap();
            // No commit: the daemon died between Deliver and its ack.
        }
        let mut s = LogMailboxStore::open(&dir, 0, 1, LogStoreConfig::default()).unwrap();
        // The batch never committed, so the retry is *not* a duplicate.
        assert!(
            s.begin_batch(7, 1).unwrap(),
            "rolled-back batch must be redeliverable"
        );
        s.put(7, msg(1, b"aaaa")).unwrap();
        s.put(7, msg(1, b"bbbb")).unwrap();
        s.commit_batch(7, 1).unwrap();
        s.flush().unwrap();
        drop(s);
        let mut s = LogMailboxStore::open(&dir, 0, 1, LogStoreConfig::default()).unwrap();
        assert_eq!(s.pending(&[1u8; 32]), Ok(2), "exactly one copy stored");
        let p = s.fetch_page(&[1u8; 32], 0, 16).unwrap();
        assert_eq!(p.entries.len(), 2);
        // The rolled-back puts never consumed sequence numbers.
        assert_eq!(p.entries[0].seq, 0);
        assert_eq!(p.entries[1].seq, 1);
        assert!(!s.begin_batch(7, 1).unwrap(), "now it *is* a duplicate");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A committed (round, batch) id is remembered across restart: the
    /// client whose ack was lost retries the identical Deliver and the
    /// shard refuses to double-store it.
    #[test]
    fn committed_batch_dedups_across_reopen() {
        let dir = tmp("txn-dedup");
        {
            let mut s = LogMailboxStore::open(&dir, 0, 1, LogStoreConfig::default()).unwrap();
            assert!(s.begin_batch(5, 9).unwrap());
            s.put(5, msg(1, b"once")).unwrap();
            s.commit_batch(5, 9).unwrap();
            s.flush().unwrap();
        }
        let mut s = LogMailboxStore::open(&dir, 0, 1, LogStoreConfig::default()).unwrap();
        assert!(
            !s.begin_batch(5, 9).unwrap(),
            "committed batch id survives restart"
        );
        // A different batch id in the same round still stores.
        assert!(s.begin_batch(5, 10).unwrap());
        s.put(5, msg(1, b"more")).unwrap();
        s.commit_batch(5, 10).unwrap();
        s.flush().unwrap();
        assert_eq!(s.pending(&[1u8; 32]), Ok(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A delivery batch large enough to straddle a segment rotation
    /// still replays atomically: the staged puts carry their segment
    /// ids and land in the right files.
    #[test]
    fn batch_spanning_rotation_replays_atomically() {
        let dir = tmp("txn-span");
        let cfg = LogStoreConfig {
            segment_bytes: 256,
            sync: false,
        };
        {
            let mut s = LogMailboxStore::open(&dir, 0, 1, cfg).unwrap();
            assert!(s.begin_batch(2, 3).unwrap());
            for i in 0..12u8 {
                s.put(2, msg(1, &[i; 64])).unwrap();
            }
            s.commit_batch(2, 3).unwrap();
            s.flush().unwrap();
            assert!(s.segment_count() > 1, "batch must span a rotation");
        }
        let mut s = LogMailboxStore::open(&dir, 0, 1, cfg).unwrap();
        assert_eq!(s.pending(&[1u8; 32]), Ok(12));
        let p = s.fetch_page(&[1u8; 32], 0, 32).unwrap();
        assert!(p.entries.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        assert!(!s.begin_batch(2, 3).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
