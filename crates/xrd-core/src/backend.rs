//! The round-protocol backend abstraction.
//!
//! A *backend* is anything that can execute one XRD round for a set of
//! users: the in-process [`Deployment`](crate::Deployment) (every hop a
//! function call) or a networked deployment (every hop a TCP exchange,
//! see the `xrd-net` crate).  Tests and experiment harnesses written
//! against [`RoundBackend`] run unchanged on either, which is how the
//! two are held to identical protocol semantics.
//!
//! The *user side* of a round — sealing ℓ submissions per user against
//! the current keys, pre-sealing §5.3.3 covers against the next round's
//! keys, and decrypting fetched mailboxes — is the same regardless of
//! where the servers live, so it is implemented once here
//! ([`collect_submissions`], [`open_fetched`]) and shared by every
//! backend.

use std::collections::HashMap;

use rand::RngCore;

use xrd_mixnet::client::Submission;
use xrd_mixnet::ChainPublicKeys;
use xrd_topology::{ChainId, Topology};

use crate::deployment::{FetchResults, RoundReport};
use crate::mailbox::MailboxError;
use crate::user::{Received, User};

/// Stored §5.3.3 cover submissions, keyed by mailbox id: what the
/// servers replay for a user who went offline after round ρ.
pub type CoverStore = HashMap<[u8; 32], Vec<(ChainId, Submission)>>;

/// A round that could not complete at all.
///
/// Per-chain trouble — a dead daemon, a convicted liar, a timed-out
/// mix pass — does *not* produce a `RoundError`: the backend degrades
/// the round to the surviving chains and reports the casualties in
/// [`RoundReport::failed_chains`].  A `RoundError` means the round's
/// outputs are unusable as a whole: the mailbox layer was unreachable
/// (no user can fetch, so delivery cannot be claimed for anyone), or
/// every chain failed before delivery.
#[derive(Debug)]
pub enum RoundError {
    /// Shared infrastructure (mailbox shards, fetch path) failed at the
    /// transport layer.
    Infrastructure {
        /// The round that failed.
        round: u64,
        /// What broke, in human terms.
        message: String,
    },
    /// The mailbox tier itself refused or failed an operation (typed:
    /// an overfull shard, a storage failure, a client cursor bug) —
    /// see [`MailboxError`].
    Mailbox {
        /// The round that failed.
        round: u64,
        /// The store's typed error.
        error: MailboxError,
    },
    /// Every chain in the deployment failed this round; nothing was
    /// mixed or delivered.
    AllChainsFailed {
        /// The round that failed.
        round: u64,
    },
}

impl std::fmt::Display for RoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundError::Infrastructure { round, message } => {
                write!(f, "round {round} infrastructure failure: {message}")
            }
            RoundError::Mailbox { round, error } => {
                write!(f, "round {round} mailbox failure: {error}")
            }
            RoundError::AllChainsFailed { round } => {
                write!(f, "round {round}: every chain failed")
            }
        }
    }
}

impl std::error::Error for RoundError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RoundError::Mailbox { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Anything that can run XRD rounds for a set of users.
pub trait RoundBackend {
    /// The network shape this backend executes on.
    fn topology(&self) -> &Topology;

    /// The next round number to be executed.
    fn round(&self) -> u64;

    /// The chain key bundles for the current round (what fresh
    /// submissions are sealed against).
    fn chain_keys(&self) -> &[ChainPublicKeys];

    /// Execute one full round (Figure 1) and return the report plus
    /// each online user's decrypted mailbox contents.
    ///
    /// `Err` is reserved for failures that void the whole round (see
    /// [`RoundError`]); chains that fail while others survive degrade
    /// the round instead and are listed in
    /// [`RoundReport::failed_chains`].
    fn run_round(
        &mut self,
        rng: &mut dyn RngCore,
        users: &mut [User],
    ) -> Result<(RoundReport, FetchResults), RoundError>;
}

/// Build the per-chain submission batches for one round: online users
/// seal fresh messages for `round` and store covers for `round + 1`;
/// offline users fall back to their stored covers (§5.3.3).
pub fn collect_submissions<R: RngCore + ?Sized>(
    rng: &mut R,
    topo: &Topology,
    current_keys: &[ChainPublicKeys],
    next_keys: &[ChainPublicKeys],
    round: u64,
    cover_store: &mut CoverStore,
    users: &[User],
) -> Vec<Vec<Submission>> {
    let mut per_chain: Vec<Vec<Submission>> = vec![Vec::new(); topo.n_chains()];
    for user in users.iter() {
        let submissions: Vec<(ChainId, Submission)> = if user.online {
            let current = user.seal_round(rng, topo, current_keys, round, false);
            let cover = user.seal_round(rng, topo, next_keys, round + 1, true);
            cover_store.insert(user.mailbox_id(), cover);
            current
        } else {
            match cover_store.remove(&user.mailbox_id()) {
                Some(cover) => cover,
                None => continue, // offline with no cover: absent
            }
        };
        for (chain, sub) in submissions {
            per_chain[chain.0 as usize].push(sub);
        }
    }
    per_chain
}

/// The fetch-and-decrypt half of a round: every online user opens the
/// sealed blobs `fetch` returns for her mailbox, conversation
/// bookkeeping advances, and partners who signalled offline are dropped
/// (§5.3.3).  `fetch` is the only backend-specific part — a local
/// mailbox drain or a paginated exchange with a mailbox daemon — and is
/// fallible: the first error aborts the fetch phase for the round.
///
/// Each fetched entry carries the **round it was delivered in**
/// (mailbox sealing nonces are round-scoped): a user reconnecting
/// after missing rounds opens each accumulated entry with its own
/// delivery round, not the current one.
pub fn open_fetched(
    topo: &Topology,
    _round: u64,
    users: &mut [User],
    mut fetch: impl FnMut(&[u8; 32]) -> Result<Vec<(u64, Vec<u8>)>, RoundError>,
) -> Result<FetchResults, RoundError> {
    let mut fetched: FetchResults = HashMap::new();
    for user in users.iter_mut() {
        if !user.online {
            continue;
        }
        let sealed = fetch(&user.mailbox_id())?;
        let mut received = Vec::with_capacity(sealed.len());
        for (delivery_round, blob) in &sealed {
            received.extend(user.open_mailbox(topo, *delivery_round, std::slice::from_ref(blob)));
        }
        // Conversation bookkeeping: consume the queued chats that went
        // out this round.
        if !user.partners().is_empty() {
            user.mark_round_sent();
        }
        // Partner-offline handling: stop conversing with exactly the
        // partner who left (§5.3.3).
        let offline: Vec<[u8; 32]> = received
            .iter()
            .filter_map(|r| match r {
                Received::PartnerOffline { partner } => Some(*partner),
                _ => None,
            })
            .collect();
        for partner in offline {
            user.end_conversation_with(&partner);
        }
        fetched.insert(user.mailbox_id(), received);
    }
    Ok(fetched)
}
