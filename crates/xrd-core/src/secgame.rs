//! An executable version of the paper's security game (Appendix B).
//!
//! The challenger samples secret conversation pairs, runs a real chain
//! round over real AHS mixing, and then challenges the adversary to
//! distinguish the true pairing from a freshly sampled one.  The
//! adversary sees everything the paper grants it: all submissions, all
//! inter-hop traffic, and the *internal state (permutations) of the
//! servers it corrupts*.
//!
//! Two facts the paper proves become *measurable* here:
//!
//! * with **every** server corrupted the adversary composes the
//!   permutations, traces each delivery to its sender, and wins with
//!   advantage ≈ 1 (this validates that the harness actually detects
//!   leakage);
//! * with **at least one honest server** the trace breaks at the honest
//!   shuffle and the advantage collapses to ≈ 0 — the anytrust
//!   assumption doing its job.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::RngCore;

use xrd_crypto::aead::{aenc, round_nonce};
use xrd_crypto::keys::KeyPair;
use xrd_mixnet::client::seal_ahs;
use xrd_mixnet::message::DOMAIN_MAILBOX;
use xrd_mixnet::{
    generate_chain_keys, open_batch, MailboxMessage, MixEntry, MixServer, PAYLOAD_LEN,
};

/// Which hop positions the adversary controls.
#[derive(Clone, Debug)]
pub struct Corruption {
    /// Corrupted hop positions (0-based).  The game requires at least
    /// one *honest* server for privacy; pass all positions to measure
    /// the broken case.
    pub corrupt_positions: Vec<usize>,
}

/// Everything the adversary observes in one game run.
pub struct AdversaryView {
    /// Submission order → submitting user index (public: users sign
    /// their submissions in the clear in the game).
    pub n_users: usize,
    /// Mailbox ids of the delivered messages, in final (shuffled) order.
    pub delivered_mailboxes: Vec<[u8; 32]>,
    /// For each hop: `Some(perm)` if that server is corrupted (then
    /// `outputs[o] = inputs[perm[o]]`), else `None`.
    pub hop_perms: Vec<Option<Vec<usize>>>,
    /// Every user's mailbox id (public keys are public).
    pub user_mailboxes: Vec<[u8; 32]>,
}

/// Result of playing the game `trials` times.
#[derive(Clone, Copy, Debug)]
pub struct GameOutcome {
    /// Number of trials played.
    pub trials: usize,
    /// Number of correct guesses.
    pub wins: usize,
}

impl GameOutcome {
    /// `|Pr[b' = b] - 1/2|`.
    pub fn advantage(&self) -> f64 {
        (self.wins as f64 / self.trials as f64 - 0.5).abs()
    }
}

/// Sample a random perfect matching over `n` users (self-pairs allowed,
/// as in the game's step 5 where `X_i = Y_i` means "talking to
/// herself").
fn sample_pairing<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut partner = vec![0usize; n];
    for pair in idx.chunks(2) {
        if pair.len() == 2 {
            partner[pair[0]] = pair[1];
            partner[pair[1]] = pair[0];
        } else {
            partner[pair[0]] = pair[0]; // odd one talks to herself
        }
    }
    partner
}

/// The permutation-composition adversary: traces every delivered slot
/// back through all hops using the permutations it knows, assuming the
/// identity for honest hops (its best effort), then checks the traced
/// sender→mailbox relation against the challenge pairing.
fn trace_and_guess(view: &AdversaryView, candidate: &[usize]) -> bool {
    let n = view.delivered_mailboxes.len();
    let mut consistent = 0usize;
    for out_idx in 0..n {
        // Walk backwards: output slot of the last hop → input slot of
        // the first hop.
        let mut slot = out_idx;
        for perm in view.hop_perms.iter().rev() {
            match perm {
                Some(p) => slot = p[slot],
                None => { /* honest shuffle unknown: assume identity */ }
            }
        }
        let sender = slot; // submission order == user order in the game
        let mailbox = view.delivered_mailboxes[out_idx];
        // Under the candidate pairing, sender's message goes to
        // candidate[sender]'s mailbox.
        if view.user_mailboxes[candidate[sender]] == mailbox {
            consistent += 1;
        }
    }
    // If (almost) all traced slots agree with the candidate pairing,
    // guess "real" (b = 0); the caller compares with the actual b.
    consistent * 2 >= n
}

/// Play the Appendix-B game `trials` times on a chain of length `k` with
/// `n_users` honest users and the given corruption pattern; returns the
/// adversary's score.
pub fn play_game<R: RngCore + ?Sized>(
    rng: &mut R,
    k: usize,
    n_users: usize,
    corruption: &Corruption,
    trials: usize,
) -> GameOutcome {
    let mut wins = 0usize;
    for trial in 0..trials {
        let round = trial as u64;
        // Steps 2-3: chains + keys (fresh per trial).
        let (secrets, public) = generate_chain_keys(rng, k, round);
        let mut servers: Vec<MixServer> = secrets
            .into_iter()
            .map(|s| MixServer::new(s, public.clone()))
            .collect();

        // Step 4-5: users and the secret pairing.
        let users: Vec<KeyPair> = (0..n_users).map(|_| KeyPair::generate(rng)).collect();
        let user_mailboxes: Vec<[u8; 32]> = users.iter().map(|u| u.pk.encode()).collect();
        let pairing = sample_pairing(rng, n_users);

        // Each user sends one message to her partner's mailbox.
        let entries: Vec<MixEntry> = (0..n_users)
            .map(|i| {
                let dest = pairing[i];
                let key = xrd_crypto::kdf::derive_from_dh(
                    "secgame",
                    &users[i].dh(&users[dest].pk),
                    &user_mailboxes[dest],
                );
                let sealed = aenc(
                    &key,
                    &round_nonce(round, DOMAIN_MAILBOX),
                    b"",
                    &vec![0u8; PAYLOAD_LEN],
                );
                let msg = MailboxMessage {
                    mailbox: user_mailboxes[dest],
                    sealed,
                };
                seal_ahs(rng, &public, round, &msg).to_entry()
            })
            .collect();

        // Step 7: mixing (all servers follow the protocol here; active
        // tampering is covered by the AHS tests, and Appendix A shows
        // tampering upstream of the honest server is always caught).
        let mut batch = entries;
        for server in servers.iter_mut() {
            batch = server.process_round(rng, round, batch).unwrap().outputs;
        }
        // Step 8: open.
        let inner: Vec<_> = servers.iter().map(|s| s.reveal_inner_key()).collect();
        let delivered_mailboxes: Vec<[u8; 32]> = open_batch(&inner, round, &batch)
            .into_iter()
            .map(|m| m.expect("honest batch opens").mailbox)
            .collect();

        // The adversary's view.
        let hop_perms: Vec<Option<Vec<usize>>> = servers
            .iter()
            .enumerate()
            .map(|(pos, s)| {
                if corruption.corrupt_positions.contains(&pos) {
                    Some(s.state().expect("ran this round").perm.clone())
                } else {
                    None
                }
            })
            .collect();
        let view = AdversaryView {
            n_users,
            delivered_mailboxes,
            hop_perms,
            user_mailboxes,
        };

        // Step 9: the challenge.
        let b = rng.gen_bool(0.5);
        let candidate = if b {
            sample_pairing(rng, n_users) // fresh pairing
        } else {
            pairing.clone()
        };

        // Step 10: the adversary's guess ("looks real" == guess b=0).
        let guessed_real = trace_and_guess(&view, &candidate);
        let guess_b = !guessed_real;
        if guess_b == b {
            wins += 1;
        }
    }
    GameOutcome { trials, wins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fully_corrupt_chain_loses_privacy() {
        // Control experiment: with no honest server the permutation
        // trace works and the adversary nearly always wins.
        let mut rng = StdRng::seed_from_u64(1);
        let corruption = Corruption {
            corrupt_positions: vec![0, 1, 2],
        };
        let outcome = play_game(&mut rng, 3, 8, &corruption, 30);
        assert!(
            outcome.advantage() > 0.35,
            "fully corrupt chain should leak: advantage = {} ({}/{})",
            outcome.advantage(),
            outcome.wins,
            outcome.trials
        );
    }

    #[test]
    fn one_honest_server_restores_privacy() {
        // The anytrust property: corrupt all but the middle server.
        let mut rng = StdRng::seed_from_u64(2);
        let corruption = Corruption {
            corrupt_positions: vec![0, 2],
        };
        let outcome = play_game(&mut rng, 3, 8, &corruption, 60);
        assert!(
            outcome.advantage() < 0.2,
            "one honest server must hide the pairing: advantage = {} ({}/{})",
            outcome.advantage(),
            outcome.wins,
            outcome.trials
        );
    }

    #[test]
    fn honest_position_does_not_matter() {
        // First or last honest server protects equally (§6's point that
        // only existence matters).
        let mut rng = StdRng::seed_from_u64(3);
        for honest in 0..3usize {
            let corrupt: Vec<usize> = (0..3).filter(|p| *p != honest).collect();
            let outcome = play_game(
                &mut rng,
                3,
                6,
                &Corruption {
                    corrupt_positions: corrupt,
                },
                40,
            );
            assert!(
                outcome.advantage() < 0.25,
                "honest at {honest}: advantage = {}",
                outcome.advantage()
            );
        }
    }

    #[test]
    fn pairing_sampler_is_an_involution() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [1usize, 2, 5, 8] {
            let p = sample_pairing(&mut rng, n);
            for i in 0..n {
                assert_eq!(p[p[i]], i, "pairing must be an involution");
            }
        }
    }
}
