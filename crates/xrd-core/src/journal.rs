//! A tiny fsync'd record journal for daemon control state.
//!
//! [`Journal`] is the durability primitive behind crash-tolerant
//! daemons: a single append-only file of checksummed records that a
//! respawned process replays to recover the small, precious state that
//! must survive `kill -9` — inner-key rotation epochs and shares, the
//! open submission-window round, delivery dedup ids.  It reuses the
//! record/checksum/torn-tail machinery of the log-structured mailbox
//! store ([`crate::mailbox::LogMailboxStore`]) in miniature: one file,
//! opaque payloads, no index.
//!
//! ## On-disk layout
//!
//! An 8-byte magic (`XRDJRNL1`) followed by records:
//!
//! ```text
//! RECORD = [len:u32][payload:len][fnv64]
//! ```
//!
//! All integers little-endian; `fnv64` is FNV-1a-64 over every
//! preceding byte of the record (torn-write detection, not adversarial
//! integrity — the journal sits next to the daemon's secret config, in
//! a directory only the operator can read).  A torn record at the tail
//! — the crash-mid-append case — is truncated away on open and counted
//! under `daemon.journal.torn_tails`; everything before it survives.
//!
//! ## Semantics
//!
//! * [`Journal::open`] replays the file and hands back every intact
//!   payload in append order; interpreting them is the caller's
//!   business (the journal never parses payloads).
//! * [`Journal::append`] stages a record; [`Journal::sync`] makes
//!   everything staged durable (`fdatasync`).  [`Journal::append_sync`]
//!   does both, for callers whose records are rare enough that one
//!   fsync each is fine.
//! * [`Journal::rewrite`] atomically replaces the whole journal with a
//!   compacted snapshot (temp file + rename + directory fsync) — the
//!   compaction move for state where only the latest epoch matters.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"XRDJRNL1";
/// Sanity cap on a record payload during replay: anything larger is a
/// torn length field, not a real control record.
const MAX_RECORD: usize = 1 << 20;

/// FNV-1a 64 — torn-write detection for journal records (shared with
/// the mailbox log's record format).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Journal metric handles, resolved once per process.
fn journal_metrics() -> &'static JournalMetrics {
    static METRICS: std::sync::OnceLock<JournalMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| JournalMetrics {
        appends: xrd_obs::counter("daemon.journal.appends"),
        rewrites: xrd_obs::counter("daemon.journal.rewrites"),
        recovered: xrd_obs::counter("daemon.journal.records_recovered"),
        torn_tails: xrd_obs::counter("daemon.journal.torn_tails"),
    })
}

struct JournalMetrics {
    /// Records appended.
    appends: &'static xrd_obs::Counter,
    /// Whole-journal compactions ([`Journal::rewrite`]).
    rewrites: &'static xrd_obs::Counter,
    /// Intact records replayed on open.
    recovered: &'static xrd_obs::Counter,
    /// Torn record tails truncated on open.
    torn_tails: &'static xrd_obs::Counter,
}

/// One record as encoded on disk: length prefix, payload, checksum.
fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(4 + payload.len() + 8);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(payload);
    rec.extend_from_slice(&fnv64(&rec).to_le_bytes());
    rec
}

/// Parse the record at `o`; `None` means torn (truncate here).
fn parse_record(bytes: &[u8], o: usize) -> Option<(Vec<u8>, usize)> {
    let len_end = o.checked_add(4)?;
    if len_end > bytes.len() {
        return None;
    }
    let len = u32::from_le_bytes(bytes[o..len_end].try_into().expect("4 bytes")) as usize;
    if len > MAX_RECORD {
        return None;
    }
    let end = len_end.checked_add(len)?.checked_add(8)?;
    if end > bytes.len() {
        return None;
    }
    let stored = u64::from_le_bytes(bytes[end - 8..end].try_into().expect("8 bytes"));
    if fnv64(&bytes[o..end - 8]) != stored {
        return None;
    }
    Some((bytes[len_end..end - 8].to_vec(), end))
}

/// An append-only, fsync'd record journal; see the [module
/// docs](self) for format and semantics.
pub struct Journal {
    path: PathBuf,
    file: File,
    len: u64,
    sync: bool,
}

impl Journal {
    /// Open (or create) the journal at `path`, replaying every intact
    /// record.  A torn tail — the crash-mid-append case — is truncated
    /// away; a corrupt *magic* is an error (that file is not ours to
    /// repair).  Returns the journal plus the recovered payloads in
    /// append order.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<(Journal, Vec<Vec<u8>>)> {
        Self::open_with(path, true)
    }

    /// [`Journal::open`] with fsync optionally disabled (tests and
    /// benchmarks measuring pure record cost; daemons leave it on).
    pub fn open_with(
        path: impl Into<PathBuf>,
        sync: bool,
    ) -> std::io::Result<(Journal, Vec<Vec<u8>>)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            if sync {
                file.sync_data()?;
            }
            let len = MAGIC.len() as u64;
            return Ok((
                Journal {
                    path,
                    file,
                    len,
                    sync,
                },
                Vec::new(),
            ));
        }
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(std::io::Error::other(format!(
                "{}: not a journal (bad magic)",
                path.display()
            )));
        }
        let mut records = Vec::new();
        let mut o = MAGIC.len();
        while o < bytes.len() {
            match parse_record(&bytes, o) {
                Some((payload, end)) => {
                    records.push(payload);
                    o = end;
                }
                None => {
                    journal_metrics().torn_tails.incr();
                    file.set_len(o as u64)?;
                    if sync {
                        file.sync_data()?;
                    }
                    break;
                }
            }
        }
        journal_metrics().recovered.add(records.len() as u64);
        Ok((
            Journal {
                path,
                file,
                len: o as u64,
                sync,
            },
            records,
        ))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes currently in the journal file (compaction trigger).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Stage one record.  Not durable until [`Journal::sync`].
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let rec = encode_record(payload);
        self.file.write_all(&rec)?;
        self.len += rec.len() as u64;
        journal_metrics().appends.incr();
        Ok(())
    }

    /// Make everything staged durable (`fdatasync`).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.sync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Append one record and fsync it — the common case for rare
    /// control-state records.
    pub fn append_sync(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.append(payload)?;
        self.sync()
    }

    /// Atomically replace the journal with a compacted snapshot: the
    /// given records are written to a temp file, fsync'd, renamed over
    /// the journal, and the directory fsync'd — a crash at any point
    /// leaves either the old journal or the new one, never a mix.
    pub fn rewrite(&mut self, records: &[&[u8]]) -> std::io::Result<()> {
        let tmp = self.path.with_extension("journal.tmp");
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(MAGIC)?;
        let mut len = MAGIC.len() as u64;
        for payload in records {
            let rec = encode_record(payload);
            file.write_all(&rec)?;
            len += rec.len() as u64;
        }
        if self.sync {
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if self.sync {
            if let Some(dir) = self.path.parent() {
                if let Ok(d) = File::open(dir) {
                    let _ = d.sync_data();
                }
            }
        }
        self.file = file;
        self.len = len;
        journal_metrics().rewrites.incr();
        Ok(())
    }
}
