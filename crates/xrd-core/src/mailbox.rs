//! Mailbox servers (§5.1).
//!
//! Mailboxes are keyed by the owner's public key; different users'
//! mailboxes live on different shards ("similar to e-mail servers,
//! different users' mailboxes can be maintained by different servers").
//! Mailbox servers are trusted for availability only — everything they
//! hold is sealed for its owner.

use std::collections::HashMap;

use xrd_crypto::blake2b::Blake2b;
use xrd_mixnet::MailboxMessage;

/// Which of `n_shards` mailbox servers owns `mailbox`.
///
/// A free function (rather than a method on [`MailboxHub`]) because the
/// assignment is public protocol state: users, chains and networked
/// deployments all derive it locally from the mailbox id alone.
pub fn shard_of(mailbox: &[u8; 32], n_shards: usize) -> usize {
    assert!(n_shards >= 1);
    let mut h = Blake2b::new(32);
    h.update(b"xrd-mailbox-shard");
    h.update(mailbox);
    let d = h.finalize_32();
    (u64::from_le_bytes(d[..8].try_into().expect("8 bytes")) % n_shards as u64) as usize
}

/// A set of mailbox servers, sharded by mailbox id.
#[derive(Clone, Debug)]
pub struct MailboxHub {
    shards: Vec<HashMap<[u8; 32], Vec<Vec<u8>>>>,
}

impl MailboxHub {
    /// Create a hub with `n_shards` mailbox servers.
    pub fn new(n_shards: usize) -> MailboxHub {
        assert!(n_shards >= 1);
        MailboxHub {
            shards: vec![HashMap::new(); n_shards],
        }
    }

    /// Which shard (mailbox server) owns a mailbox.
    pub fn shard_of(&self, mailbox: &[u8; 32]) -> usize {
        shard_of(mailbox, self.shards.len())
    }

    /// `put`: deliver a message into its mailbox (Algorithm 1, step 2b).
    pub fn put(&mut self, msg: MailboxMessage) {
        let shard = self.shard_of(&msg.mailbox);
        self.shards[shard]
            .entry(msg.mailbox)
            .or_default()
            .push(msg.sealed);
    }

    /// `get`: drain all messages currently in a mailbox ("each user
    /// downloads all messages in her mailbox at the end of a round").
    pub fn fetch(&mut self, mailbox: &[u8; 32]) -> Vec<Vec<u8>> {
        let shard = self.shard_of(mailbox);
        self.shards[shard].remove(mailbox).unwrap_or_default()
    }

    /// Peek at the number of messages waiting in a mailbox (the quantity
    /// an adversary observing the mailbox server sees; tests use it to
    /// check the uniformity invariant).
    pub fn pending(&self, mailbox: &[u8; 32]) -> usize {
        let shard = self.shard_of(mailbox);
        self.shards[shard]
            .get(mailbox)
            .map(|v| v.len())
            .unwrap_or(0)
    }

    /// Total messages currently held across all shards.
    pub fn total_pending(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.values().map(|v| v.len()).sum::<usize>())
            .sum()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(mailbox: u8, body: u8) -> MailboxMessage {
        MailboxMessage {
            mailbox: [mailbox; 32],
            sealed: vec![body; 4],
        }
    }

    #[test]
    fn put_then_fetch_drains() {
        let mut hub = MailboxHub::new(4);
        hub.put(msg(1, 10));
        hub.put(msg(1, 11));
        hub.put(msg(2, 20));
        assert_eq!(hub.pending(&[1u8; 32]), 2);
        let got = hub.fetch(&[1u8; 32]);
        assert_eq!(got, vec![vec![10u8; 4], vec![11u8; 4]]);
        assert_eq!(hub.pending(&[1u8; 32]), 0);
        assert!(hub.fetch(&[1u8; 32]).is_empty());
        assert_eq!(hub.total_pending(), 1);
    }

    #[test]
    fn sharding_is_stable_and_spread() {
        let hub = MailboxHub::new(10);
        let mut used = std::collections::HashSet::new();
        for i in 0..100u8 {
            let s = hub.shard_of(&[i; 32]);
            assert_eq!(s, hub.shard_of(&[i; 32]));
            assert!(s < 10);
            used.insert(s);
        }
        assert!(used.len() >= 7, "shard spread too poor: {used:?}");
    }

    #[test]
    fn single_shard_works() {
        let mut hub = MailboxHub::new(1);
        hub.put(msg(9, 1));
        assert_eq!(hub.fetch(&[9u8; 32]).len(), 1);
    }
}
