//! Server-churn availability analysis (§8.3, Figure 8).
//!
//! "We simulated deployment scenarios with 2 million users ... assumed
//! that all users were in a conversation, and show the fraction of the
//! users whose conversation messages did not reach their partner."
//!
//! A conversation fails in a round iff its meeting chain contains at
//! least one failed server.  This module runs that Monte-Carlo directly
//! on a real [`Topology`] — it is exact (no modeling shortcuts), because
//! the experiment is purely combinatorial.

use rand::Rng;
use rand::RngCore;

use xrd_topology::Topology;

/// Result of a churn simulation.
#[derive(Clone, Debug)]
pub struct ChurnResult {
    /// Server failure probability used.
    pub churn_rate: f64,
    /// Fraction of conversations whose meeting chain failed.
    pub conversation_failure_rate: f64,
    /// Fraction of chains that failed entirely.
    pub chain_failure_rate: f64,
}

/// Estimate the per-round conversation failure rate under independent
/// per-server failure probability `churn_rate`.
///
/// `trials` independent failure patterns are sampled; in each, every
/// (unordered) pair of user groups is weighed equally — users are
/// uniformly hashed into groups, so group pairs are a uniform proxy for
/// conversation pairs at scale.
pub fn simulate_churn<R: RngCore + ?Sized>(
    rng: &mut R,
    topo: &Topology,
    churn_rate: f64,
    trials: usize,
) -> ChurnResult {
    assert!((0.0..=1.0).contains(&churn_rate));
    let n_chains = topo.n_chains();
    let num_groups = topo.selection.num_groups();

    let mut failed_conversations = 0u64;
    let mut total_conversations = 0u64;
    let mut failed_chains = 0u64;

    for _ in 0..trials {
        // Sample failed servers.
        let failed: Vec<bool> = (0..topo.n_servers)
            .map(|_| rng.gen_bool(churn_rate))
            .collect();
        // A chain fails if any member failed (§5.2.3: only chains that
        // contain failing servers are affected).
        let chain_ok: Vec<bool> = topo
            .chains
            .iter()
            .map(|c| c.members.iter().all(|s| !failed[s.0 as usize]))
            .collect();
        failed_chains += chain_ok.iter().filter(|ok| !**ok).count() as u64;

        // Every group pair: one representative conversation.
        for a in 0..num_groups {
            for b in a..num_groups {
                let meeting = topo
                    .selection
                    .meeting_chain(a, b)
                    .expect("pairwise intersection");
                total_conversations += 1;
                if !chain_ok[meeting.0 as usize] {
                    failed_conversations += 1;
                }
            }
        }
    }

    ChurnResult {
        churn_rate,
        conversation_failure_rate: failed_conversations as f64 / total_conversations.max(1) as f64,
        chain_failure_rate: failed_chains as f64 / (trials as u64 * n_chains as u64).max(1) as f64,
    }
}

/// Closed-form approximation ignoring server overlap between chains:
/// `1 - (1 - churn)^k`.  Used as a cross-check on the Monte-Carlo.
pub fn analytic_failure_rate(churn_rate: f64, chain_len: usize) -> f64 {
    1.0 - (1.0 - churn_rate).powi(chain_len as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xrd_topology::Beacon;

    fn topo(n: usize, k: usize) -> Topology {
        Topology::build_with(&Beacon::from_u64(1), 0, n, n, k, 0.2)
    }

    #[test]
    fn zero_churn_zero_failures() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = topo(50, 8);
        let r = simulate_churn(&mut rng, &t, 0.0, 10);
        assert_eq!(r.conversation_failure_rate, 0.0);
        assert_eq!(r.chain_failure_rate, 0.0);
    }

    #[test]
    fn full_churn_full_failures() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = topo(50, 8);
        let r = simulate_churn(&mut rng, &t, 1.0, 3);
        assert_eq!(r.conversation_failure_rate, 1.0);
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        // With small overlap, the MC estimate must track 1-(1-p)^k.
        let mut rng = StdRng::seed_from_u64(3);
        let t = topo(100, 8);
        let p = 0.01;
        let r = simulate_churn(&mut rng, &t, p, 200);
        let expect = analytic_failure_rate(p, 8);
        assert!(
            (r.conversation_failure_rate - expect).abs() < 0.03,
            "mc = {}, analytic = {}",
            r.conversation_failure_rate,
            expect
        );
    }

    #[test]
    fn failure_rate_increases_with_churn() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = topo(60, 10);
        let r1 = simulate_churn(&mut rng, &t, 0.01, 100);
        let r2 = simulate_churn(&mut rng, &t, 0.04, 100);
        assert!(r2.conversation_failure_rate > r1.conversation_failure_rate);
    }

    #[test]
    fn paper_figure8_magnitude() {
        // §8.3: ~27% of conversations fail at 1% churn with k≈32 chains.
        let expect = analytic_failure_rate(0.01, 32);
        assert!((expect - 0.275).abs() < 0.01, "got {expect}");
        // And ~70%... the paper says "reaching 70% with 4% failures";
        // 1-(0.96)^32 = 0.729.
        let expect4 = analytic_failure_rate(0.04, 32);
        assert!((expect4 - 0.70).abs() < 0.05, "got {expect4}");
    }
}
