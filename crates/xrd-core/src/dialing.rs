//! Conversation bootstrapping (§3.1's out-of-band agreement).
//!
//! "XRD assumes that the users can agree to start talking at a certain
//! time out-of-band.  This could be done, for example, via two users
//! exchanging this information offline, or by using systems like
//! Alpenhorn \[34\]."
//!
//! This module provides the minimal in-band substitute: both endpoints
//! *derive* a rendezvous round deterministically from their shared DH
//! secret and a dialing epoch, so no additional protocol messages are
//! needed.  Each party computes the same round without communicating;
//! an observer without the shared secret learns nothing (the derivation
//! is a PRF under the DH secret).  A deployment wanting deniable
//! dialing would run full Alpenhorn; the property XRD itself needs —
//! synchronized start rounds — is exactly what this provides.

use xrd_crypto::kdf;
use xrd_crypto::keys::KeyPair;
use xrd_crypto::ristretto::GroupElement;

/// Derive the rendezvous round for a conversation between `me` and
/// `peer` within a dialing window.
///
/// Both endpoints compute the identical value: the derivation uses the
/// unordered pair of public keys and the shared DH secret.  The result
/// lies in `[window_start, window_start + window_len)`.
pub fn rendezvous_round(
    me: &KeyPair,
    peer: &GroupElement,
    window_start: u64,
    window_len: u64,
) -> u64 {
    assert!(window_len > 0);
    let shared = me.dh(peer);
    // Order the pair canonically so both sides agree.
    let my_pk = me.pk.encode();
    let peer_pk = peer.encode();
    let (lo, hi) = if my_pk <= peer_pk {
        (my_pk, peer_pk)
    } else {
        (peer_pk, my_pk)
    };
    let digest = kdf::derive_key(
        "xrd/dialing-v1",
        &[&shared.encode(), &lo, &hi, &window_start.to_le_bytes()],
    );
    let x = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes"));
    window_start + x % window_len
}

/// A dialing schedule: check whether the conversation with `peer`
/// starts at `round` (users poll this each round).
pub fn should_start(me: &KeyPair, peer: &GroupElement, round: u64, window_len: u64) -> bool {
    let window_start = (round / window_len) * window_len;
    rendezvous_round(me, peer, window_start, window_len) == round
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn both_endpoints_agree() {
        let mut rng = StdRng::seed_from_u64(1);
        let alice = KeyPair::generate(&mut rng);
        let bob = KeyPair::generate(&mut rng);
        for window in [1u64, 10, 100] {
            let a = rendezvous_round(&alice, &bob.pk, 1000, window);
            let b = rendezvous_round(&bob, &alice.pk, 1000, window);
            assert_eq!(a, b, "window {window}");
            assert!((1000..1000 + window).contains(&a));
        }
    }

    #[test]
    fn different_pairs_different_rounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let alice = KeyPair::generate(&mut rng);
        let bob = KeyPair::generate(&mut rng);
        let carol = KeyPair::generate(&mut rng);
        let ab = rendezvous_round(&alice, &bob.pk, 0, 1_000_000);
        let ac = rendezvous_round(&alice, &carol.pk, 0, 1_000_000);
        assert_ne!(ab, ac);
    }

    #[test]
    fn outsider_cannot_predict() {
        // Eve, knowing both public keys but no secret, derives a
        // different value (she has no way to compute the DH secret; here
        // we just confirm the derivation isn't a function of public keys
        // alone by using a wrong keypair).
        let mut rng = StdRng::seed_from_u64(3);
        let alice = KeyPair::generate(&mut rng);
        let bob = KeyPair::generate(&mut rng);
        let eve = KeyPair::generate(&mut rng);
        let real = rendezvous_round(&alice, &bob.pk, 0, 1_000_000_000);
        let eve_guess = rendezvous_round(&eve, &bob.pk, 0, 1_000_000_000);
        assert_ne!(real, eve_guess);
    }

    #[test]
    fn should_start_fires_once_per_window() {
        let mut rng = StdRng::seed_from_u64(4);
        let alice = KeyPair::generate(&mut rng);
        let bob = KeyPair::generate(&mut rng);
        let window = 50u64;
        for w in 0..4u64 {
            let hits: Vec<u64> = (w * window..(w + 1) * window)
                .filter(|&r| should_start(&alice, &bob.pk, r, window))
                .collect();
            assert_eq!(hits.len(), 1, "window {w}: {hits:?}");
            // Symmetric.
            assert!(should_start(&bob, &alice.pk, hits[0], window));
        }
    }

    #[test]
    fn windows_derive_independently() {
        let mut rng = StdRng::seed_from_u64(5);
        let alice = KeyPair::generate(&mut rng);
        let bob = KeyPair::generate(&mut rng);
        let r1 = rendezvous_round(&alice, &bob.pk, 0, 1_000_000);
        let r2 = rendezvous_round(&alice, &bob.pk, 1_000_000, 1_000_000);
        assert_ne!(r1, r2 - 1_000_000, "offsets should differ across windows");
    }
}
