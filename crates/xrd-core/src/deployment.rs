//! An in-process XRD deployment: topology + chains + mailbox servers +
//! the round protocol of Figure 1, with §5.3.3 churn handling (cover
//! messages) built in.
//!
//! This is the "real" system — every message is really onion-encrypted,
//! really mixed through AHS with proofs verified, and really delivered to
//! and fetched from mailboxes.  The experiment harness uses it at reduced
//! scale; `cost.rs` extrapolates to paper scale.

use std::collections::HashMap;

use rand::RngCore;

use xrd_mixnet::client::Submission;
use xrd_mixnet::{ChainPublicKeys, ChainRunner};
use xrd_topology::{Beacon, ChainId, Topology};

use crate::backend::{collect_submissions, open_fetched, CoverStore, RoundBackend, RoundError};
use crate::mailbox::{drain, MailboxHub, MailboxStore};
use crate::user::{Received, User};

/// Page size the in-process deployment walks mailboxes with.  Small
/// enough that multi-page walks are exercised by ordinary tests
/// (ℓ ≥ 3 messages per user per round), large enough to be cheap.
const FETCH_PAGE: usize = 64;

/// Deployment parameters.
#[derive(Clone, Debug)]
pub struct DeploymentConfig {
    /// Number of servers `N` (chains `n = N`, §5.2.1).
    pub n_servers: usize,
    /// Chain length `k`.  `None` derives it from `f` with the paper's
    /// 2^-64 bound — note that gives k≈32, heavy for in-process tests.
    pub chain_len: Option<usize>,
    /// Assumed malicious server fraction.
    pub f: f64,
    /// Number of mailbox servers.
    pub n_mailbox_shards: usize,
    /// Beacon seed for chain formation.
    pub seed: u64,
}

impl DeploymentConfig {
    /// A small configuration suitable for tests and examples.
    pub fn small(n_servers: usize, chain_len: usize) -> DeploymentConfig {
        DeploymentConfig {
            n_servers,
            chain_len: Some(chain_len),
            f: 0.2,
            n_mailbox_shards: 2,
            seed: 0,
        }
    }
}

/// Report for one executed round.
#[derive(Clone, Debug, Default)]
pub struct RoundReport {
    /// Round number executed.
    pub round: u64,
    /// Messages mixed (submissions accepted into chains).
    pub messages_mixed: usize,
    /// Messages delivered to mailboxes.
    pub delivered: usize,
    /// Per-chain malicious submission counts (by chain index).
    pub malicious_by_chain: HashMap<u32, usize>,
    /// Chains that aborted due to a misbehaving server.
    pub aborted_chains: Vec<u32>,
    /// Chains that failed for infrastructure reasons this round (a
    /// daemon down, a timed-out pass) — the round degraded to the
    /// surviving chains.  Networked backends only; the in-process
    /// deployment never populates this.
    pub failed_chains: Vec<u32>,
    /// Server positions convicted by the dispute protocol, per chain.
    /// A conviction does not imply the chain aborted: a lying verifier
    /// is convicted and excluded while its chain's round completes.
    pub convicted_by_chain: HashMap<u32, Vec<u32>>,
    /// Server positions whose input-agreement digest dissented from
    /// the majority, per chain — suspects (equivocation or a lossy
    /// link), recorded but never convicted on digest evidence alone.
    pub suspected_by_chain: HashMap<u32, Vec<u32>>,
}

/// What each user got back this round, keyed by mailbox id.
pub type FetchResults = HashMap<[u8; 32], Vec<Received>>;

/// The in-process deployment.
pub struct Deployment {
    topo: Topology,
    chains: Vec<ChainRunner>,
    mailboxes: MailboxHub,
    round: u64,
    /// Inner-key bundles active for the current round.
    current_keys: Vec<ChainPublicKeys>,
    /// Inner-key bundles for the *next* round, published a round ahead
    /// so cover messages can be sealed against them (§5.3.3).
    next_keys: Vec<ChainPublicKeys>,
    /// Cover submissions stored at round ρ for use in round ρ+1,
    /// keyed by mailbox id (§5.3.3).
    cover_store: CoverStore,
    /// Raw submissions injected for the next round (attack testing).
    injected: Vec<(ChainId, Submission)>,
}

impl Deployment {
    /// Build a deployment.
    pub fn new<R: RngCore + ?Sized>(rng: &mut R, config: DeploymentConfig) -> Deployment {
        let beacon = Beacon::from_u64(config.seed);
        let k = config
            .chain_len
            .unwrap_or_else(|| xrd_topology::chain_length(config.f, config.n_servers, 64));
        let topo =
            Topology::build_with(&beacon, 0, config.n_servers, config.n_servers, k, config.f);
        let mut chains: Vec<ChainRunner> = (0..topo.n_chains())
            .map(|c| ChainRunner::new(rng, k, c as u64))
            .collect();
        // Key schedule: activate round-0 inner keys, pre-publish round 1.
        let mut current_keys = Vec::with_capacity(chains.len());
        let mut next_keys = Vec::with_capacity(chains.len());
        for chain in &mut chains {
            chain.prepare_inner_rotation(rng, 0);
            chain.activate_inner_rotation();
            current_keys.push(chain.public().clone());
            next_keys.push(chain.prepare_inner_rotation(rng, 1));
        }
        Deployment {
            topo,
            chains,
            mailboxes: MailboxHub::new(config.n_mailbox_shards),
            round: 0,
            current_keys,
            next_keys,
            cover_store: HashMap::new(),
            injected: Vec::new(),
        }
    }

    /// Queue a raw submission for the next round (simulating a user that
    /// does not follow the protocol).  Fault-injection hook for tests
    /// and demos; deployments never call this.
    #[doc(hidden)]
    pub fn inject_submission(&mut self, chain: ChainId, submission: Submission) {
        self.injected.push((chain, submission));
    }

    /// The deployment's topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The public key bundles of all chains for the current round.
    pub fn chain_keys(&self) -> &[ChainPublicKeys] {
        &self.current_keys
    }

    /// The pre-published key bundles for the next round (what cover
    /// messages are sealed against).
    pub fn next_chain_keys(&self) -> &[ChainPublicKeys] {
        &self.next_keys
    }

    /// Mutable chain access for fault injection in tests.
    #[doc(hidden)]
    pub fn chains_mut(&mut self) -> &mut [ChainRunner] {
        &mut self.chains
    }

    /// Execute one full round (Figure 1): users submit (or their stored
    /// covers are used if they're offline), chains mix, mailboxes are
    /// filled, online users fetch.  Returns the report plus each online
    /// user's decrypted mailbox contents.
    ///
    /// The default in-process mailbox tier is unbounded and in memory,
    /// so its store operations cannot fail and this convenience wrapper
    /// keeps the infallible signature.  A deployment given a capacity
    /// cap ([`Deployment::set_mailbox_capacity`]) must run rounds
    /// through [`RoundBackend::run_round`], which surfaces mailbox
    /// trouble as a typed [`RoundError`] instead; this wrapper panics
    /// on it.
    pub fn run_round<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        users: &mut [User],
    ) -> (RoundReport, FetchResults) {
        self.run_round_inner(rng, users, false)
            .expect("unbounded in-process mailbox tier cannot fail")
    }

    /// Like [`Deployment::run_round`] but mixes chains on OS threads —
    /// the in-process analogue of the real deployment where every chain
    /// is a separate set of machines.  Results are identical up to
    /// shuffle randomness.
    pub fn run_round_parallel<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        users: &mut [User],
    ) -> (RoundReport, FetchResults) {
        self.run_round_inner(rng, users, true)
            .expect("unbounded in-process mailbox tier cannot fail")
    }

    fn run_round_inner<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        users: &mut [User],
        parallel: bool,
    ) -> Result<(RoundReport, FetchResults), RoundError> {
        let round = self.round;

        // Collect submissions: online users build fresh messages for ρ
        // (sealed against this round's keys) and covers for ρ+1 (sealed
        // against the pre-published next-round keys); offline users fall
        // back to stored covers.
        let mut per_chain = collect_submissions(
            rng,
            &self.topo,
            &self.current_keys,
            &self.next_keys,
            round,
            &mut self.cover_store,
            users,
        );
        for (chain, sub) in self.injected.drain(..) {
            per_chain[chain.0 as usize].push(sub);
        }

        // Mix every chain (serially, or one thread per chain).
        let mut report = RoundReport {
            round,
            ..Default::default()
        };
        let outcomes: Vec<xrd_mixnet::ChainRoundOutcome> = if parallel {
            use rand::SeedableRng;
            let seeds: Vec<u64> = (0..self.chains.len()).map(|_| rng.next_u64()).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .chains
                    .iter_mut()
                    .zip(per_chain.iter())
                    .zip(seeds)
                    .map(|((chain, subs), seed)| {
                        scope.spawn(move || {
                            let mut chain_rng = rand::rngs::StdRng::seed_from_u64(seed);
                            chain.run_round(&mut chain_rng, round, subs)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chain thread panicked"))
                    .collect()
            })
        } else {
            self.chains
                .iter_mut()
                .zip(per_chain.iter())
                .map(|(chain, subs)| chain.run_round(rng, round, subs))
                .collect()
        };
        for (c, (subs, outcome)) in per_chain.iter().zip(outcomes).enumerate() {
            report.messages_mixed += subs.len();
            if !outcome.misbehaving_servers.is_empty() {
                report.aborted_chains.push(c as u32);
            }
            if !outcome.malicious_users.is_empty() {
                report
                    .malicious_by_chain
                    .insert(c as u32, outcome.malicious_users.len());
            }
            for msg in outcome.delivered {
                report.delivered += 1;
                self.mailboxes
                    .put(round, msg)
                    .map_err(|error| RoundError::Mailbox { round, error })?;
            }
        }

        // Online users fetch and decrypt — the same paginated,
        // ack-driven walk the networked backend runs over the wire.
        let mailboxes = &mut self.mailboxes;
        let fetched = open_fetched(&self.topo, round, users, |mailbox| {
            drain(mailboxes, mailbox, FETCH_PAGE)
                .map_err(|error| RoundError::Mailbox { round, error })
        })?;

        // Advance the key schedule: activate ρ+1, pre-publish ρ+2.
        self.round += 1;
        for (c, chain) in self.chains.iter_mut().enumerate() {
            chain.activate_inner_rotation();
            self.current_keys[c] = chain.public().clone();
            self.next_keys[c] = chain.prepare_inner_rotation(rng, self.round + 1);
        }
        Ok((report, fetched))
    }

    /// Direct mailbox inspection (tests).
    pub fn mailboxes(&self) -> &MailboxHub {
        &self.mailboxes
    }

    /// Cap the un-acked messages each in-process mailbox shard will
    /// hold; a round whose delivery would exceed it fails with
    /// [`RoundError::Mailbox`] through [`RoundBackend::run_round`]
    /// (tests of the fallible path).
    #[doc(hidden)]
    pub fn set_mailbox_capacity(&mut self, cap: usize) {
        let n = self.mailboxes.n_shards();
        self.mailboxes = MailboxHub::with_capacity(n, cap);
    }
}

impl RoundBackend for Deployment {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn chain_keys(&self) -> &[ChainPublicKeys] {
        &self.current_keys
    }

    fn run_round(
        &mut self,
        rng: &mut dyn rand::RngCore,
        users: &mut [User],
    ) -> Result<(RoundReport, FetchResults), crate::backend::RoundError> {
        // In-process chains cannot fail for infrastructure reasons.
        Ok(Deployment::run_round(self, rng, users))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n_users: usize) -> (StdRng, Deployment, Vec<User>) {
        let mut rng = StdRng::seed_from_u64(42);
        let deployment = Deployment::new(&mut rng, DeploymentConfig::small(6, 2));
        let users: Vec<User> = (0..n_users).map(|_| User::new(&mut rng)).collect();
        (rng, deployment, users)
    }

    #[test]
    fn idle_round_uniformity() {
        // Every user receives exactly ℓ messages, all loopbacks.
        let (mut rng, mut deployment, mut users) = setup(5);
        let ell = deployment.topology().ell();
        let (report, fetched) = deployment.run_round(&mut rng, &mut users);
        assert_eq!(report.messages_mixed, 5 * ell);
        assert_eq!(report.delivered, 5 * ell);
        for user in &users {
            let got = &fetched[&user.mailbox_id()];
            assert_eq!(got.len(), ell);
            assert!(got.iter().all(|r| *r == Received::Loopback));
        }
    }

    #[test]
    fn conversation_round_uniformity_and_delivery() {
        let (mut rng, mut deployment, mut users) = setup(4);
        let ell = deployment.topology().ell();
        let (a_pk, b_pk) = (users[0].pk(), users[1].pk());
        users[0].start_conversation(b_pk);
        users[1].start_conversation(a_pk);
        users[0].queue_chat(b"hello bob");
        users[1].queue_chat(b"hello alice");

        let (_, fetched) = deployment.run_round(&mut rng, &mut users);
        // Everyone still gets exactly ℓ messages — the adversary's view
        // of mailbox counts is independent of conversations.
        for user in &users {
            assert_eq!(fetched[&user.mailbox_id()].len(), ell);
        }
        let alice_got = &fetched[&users[0].mailbox_id()];
        assert!(alice_got.contains(&Received::Chat {
            from: users[1].mailbox_id(),
            data: b"hello alice".to_vec()
        }));
        let bob_got = &fetched[&users[1].mailbox_id()];
        assert!(bob_got.contains(&Received::Chat {
            from: users[0].mailbox_id(),
            data: b"hello bob".to_vec()
        }));
        // And ℓ-1 loopbacks each.
        assert_eq!(
            alice_got
                .iter()
                .filter(|r| **r == Received::Loopback)
                .count(),
            ell - 1
        );
    }

    #[test]
    fn multi_round_conversation() {
        let (mut rng, mut deployment, mut users) = setup(3);
        let (a_pk, b_pk) = (users[0].pk(), users[1].pk());
        users[0].start_conversation(b_pk);
        users[1].start_conversation(a_pk);
        users[0].queue_chat(b"one");
        users[0].queue_chat(b"two");

        let (_, fetched1) = deployment.run_round(&mut rng, &mut users);
        assert!(fetched1[&users[1].mailbox_id()].contains(&Received::Chat {
            from: users[0].mailbox_id(),
            data: b"one".to_vec()
        }));
        let (_, fetched2) = deployment.run_round(&mut rng, &mut users);
        assert!(fetched2[&users[1].mailbox_id()].contains(&Received::Chat {
            from: users[0].mailbox_id(),
            data: b"two".to_vec()
        }));
    }

    #[test]
    fn churn_cover_messages_keep_counts_uniform() {
        // Alice goes offline after round 0; in round 1 her stored covers
        // are mixed, so Bob still receives ℓ messages — including the
        // offline notification — and stops conversing afterwards.
        let (mut rng, mut deployment, mut users) = setup(4);
        let ell = deployment.topology().ell();
        let (a_pk, b_pk) = (users[0].pk(), users[1].pk());
        users[0].start_conversation(b_pk);
        users[1].start_conversation(a_pk);

        let (_, _) = deployment.run_round(&mut rng, &mut users);
        users[0].online = false;

        let (report, fetched) = deployment.run_round(&mut rng, &mut users);
        // All 4 users' messages mixed (Alice via covers).
        assert_eq!(report.messages_mixed, 4 * ell);
        let bob_got = &fetched[&users[1].mailbox_id()];
        assert_eq!(bob_got.len(), ell, "Bob's mailbox count unchanged");
        assert!(bob_got.contains(&Received::PartnerOffline {
            partner: users[0].mailbox_id()
        }));
        assert!(users[1].partner().is_none(), "Bob stopped conversing");

        // Round 2: Alice still offline, no cover left — but Bob now
        // sends loopbacks, so his count stays ℓ.
        let (_, fetched3) = deployment.run_round(&mut rng, &mut users);
        let bob_got3 = &fetched3[&users[1].mailbox_id()];
        assert_eq!(bob_got3.len(), ell);
        assert!(bob_got3.iter().all(|r| *r == Received::Loopback));
    }

    #[test]
    fn malicious_submission_does_not_block_round() {
        // A protocol-violating user injects a garbage onion into one
        // chain; blame removes it and every honest message still lands.
        let (mut rng, mut deployment, mut users) = setup(3);
        let ell = deployment.topology().ell();
        let target = xrd_topology::ChainId(0);
        let bad = xrd_mixnet::testutil::malicious_submission(
            &mut rng,
            &deployment.chain_keys()[0],
            0, // round
            deployment.topology().chain_len() - 1,
        );
        deployment.inject_submission(target, bad);

        let (report, fetched) = deployment.run_round(&mut rng, &mut users);
        assert!(report.aborted_chains.is_empty());
        assert_eq!(report.malicious_by_chain.get(&0), Some(&1));
        assert_eq!(report.messages_mixed, 3 * ell + 1);
        assert_eq!(report.delivered, 3 * ell, "honest messages all survive");
        for user in &users {
            assert_eq!(fetched[&user.mailbox_id()].len(), ell);
        }

        // The next round is unaffected.
        let (report2, _) = deployment.run_round(&mut rng, &mut users);
        assert!(report2.malicious_by_chain.is_empty());
    }

    #[test]
    fn parallel_round_matches_serial_semantics() {
        // Same seed, one serial and one parallel deployment: delivery
        // counts and per-user results are identical (content equality;
        // shuffle orders differ).
        let run = |parallel: bool| {
            let (mut rng, mut deployment, mut users) = setup(5);
            let (a, b) = (users[0].pk(), users[1].pk());
            users[0].start_conversation(b);
            users[1].start_conversation(a);
            users[0].queue_chat(b"via threads?");
            let (report, fetched) = if parallel {
                deployment.run_round_parallel(&mut rng, &mut users)
            } else {
                deployment.run_round(&mut rng, &mut users)
            };
            let mut per_user: Vec<(usize, Vec<Received>)> = users
                .iter()
                .enumerate()
                .map(|(i, u)| {
                    let mut r = fetched[&u.mailbox_id()].clone();
                    r.sort_by_key(|x| format!("{x:?}"));
                    (i, r)
                })
                .collect();
            per_user.sort_by_key(|(i, _)| *i);
            (report.messages_mixed, report.delivered, per_user)
        };
        let serial = run(false);
        let parallel = run(true);
        assert_eq!(serial.0, parallel.0);
        assert_eq!(serial.1, parallel.1);
        assert_eq!(serial.2, parallel.2);
    }

    #[test]
    fn offline_user_without_cover_is_absent() {
        let (mut rng, mut deployment, mut users) = setup(2);
        let ell = deployment.topology().ell();
        users[1].online = false; // offline from the very first round
        let (report, fetched) = deployment.run_round(&mut rng, &mut users);
        assert_eq!(report.messages_mixed, ell); // only user 0
        assert!(!fetched.contains_key(&users[1].mailbox_id()));
    }
}
