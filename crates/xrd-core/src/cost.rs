//! Calibrated performance models that replace the paper's 200-machine
//! EC2 testbed (§8.2).
//!
//! Two layers:
//!
//! * [`UserCostModel`] — exact user-side accounting (Figures 2 and 3):
//!   bandwidth follows directly from the real wire formats; compute is
//!   operation counts × per-op costs measured on the actual crypto.
//! * [`PipelineModel`] — a discrete-event simulation of a whole XRD
//!   round (Figures 4, 5, 6): each chain is a k-hop pipeline over the
//!   *real sampled topology* (so staggering matters), servers are
//!   multi-core queues, links have the paper's latency/bandwidth, and
//!   per-message work is priced with calibrated [`OpCosts`].
//!
//! The model counts exactly the operations the real implementation in
//! `xrd-mixnet` performs per hop: PoK screening, one DH exponentiation +
//! AEAD open per message, one blinding exponentiation, shuffle, the
//! aggregate DLEQ proof, k−1 aggregate verifications (two group
//! additions per message each), inner-envelope opening at the exit, and
//! all batch transfers.

use xrd_sim::{Engine, NetworkModel, NodeId, OpCosts, ServerCompute, SimDuration, SimTime};
use xrd_topology::{chain_length, ell_for_chains, Topology};

use xrd_crypto::SCHNORR_PROOF_LEN;
use xrd_mixnet::message::{inner_envelope_len, outer_ct_len, MAILBOX_MSG_LEN};

/// Submission wire size for chain length `k` (entry + PoK).
pub fn submission_wire_len(k: usize) -> u64 {
    (32 + outer_ct_len(k) + SCHNORR_PROOF_LEN) as u64
}

/// Mix-entry wire size entering hop `hop` (0-based) of a k-chain.
pub fn entry_wire_len(k: usize, hop: usize) -> u64 {
    (32 + outer_ct_len(k - hop)) as u64
}

/// User-side cost accounting (Figures 2 and 3).
#[derive(Clone, Copy, Debug)]
pub struct UserCostModel {
    /// Calibrated per-operation costs.
    pub op: OpCosts,
}

impl UserCostModel {
    /// Bytes a user transfers per round with `n` servers: `ℓ` current
    /// submissions + `ℓ` cover submissions up (§5.3.3 doubles client
    /// overhead), plus `ℓ` mailbox messages down.
    pub fn bandwidth_bytes(&self, n_servers: usize, f: f64) -> u64 {
        let ell = ell_for_chains(n_servers) as u64;
        let k = chain_length(f, n_servers, 64);
        let up = 2 * ell * submission_wire_len(k);
        let down = ell * (MAILBOX_MSG_LEN as u64);
        up + down
    }

    /// Single-core time to build a round's submissions (current + cover):
    /// per seal, `k+4` exponentiations (k outer layers, inner envelope
    /// key + `g^y`, `g^x`, PoK commitment), `k+2` AEAD seals, and the
    /// mailbox-level seal.
    pub fn compute_time(&self, n_servers: usize, f: f64) -> SimDuration {
        let ell = ell_for_chains(n_servers) as u64;
        let k = chain_length(f, n_servers, 64) as u64;
        let per_seal = self
            .op
            .exp
            .scale(k + 4)
            .saturating_add(self.op.aead.scale(k + 2));
        per_seal.scale(2 * ell)
    }
}

/// Parameters of the end-to-end round simulation.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Calibrated per-operation costs.
    pub op: OpCosts,
    /// The network model (defaults to the paper's testbed).
    pub net: NetworkModel,
    /// Per-server compute (defaults to 36-core c4.8xlarge).
    pub compute: ServerCompute,
    /// Whether cover submissions are uploaded in-round (doubles ingest).
    pub cover_traffic: bool,
}

impl PipelineConfig {
    /// Paper testbed with the given op costs.
    pub fn paper(op: OpCosts) -> PipelineConfig {
        PipelineConfig {
            op,
            net: NetworkModel::paper_testbed(7),
            compute: ServerCompute::c4_8xlarge(),
            cover_traffic: true,
        }
    }
}

/// Result of a simulated round.
#[derive(Clone, Debug)]
pub struct RoundEstimate {
    /// End-to-end latency: last submission in → last user fetch done.
    pub latency: SimDuration,
    /// Total simulated events (diagnostics).
    pub events: u64,
    /// Mean per-chain batch size used.
    pub mean_batch: f64,
}

/// Discrete-event model of one XRD round over a concrete topology.
pub struct PipelineModel<'t> {
    topo: &'t Topology,
    cfg: PipelineConfig,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Batch arrives at hop `hop` of `chain` (transfer complete).
    HopArrive { chain: u32, hop: u32 },
    /// Aggregate-proof verification lands on `member` of `chain`.
    Verify { chain: u32, member: u32 },
}

impl<'t> PipelineModel<'t> {
    /// Create a model over a sampled topology.
    pub fn new(topo: &'t Topology, cfg: PipelineConfig) -> PipelineModel<'t> {
        PipelineModel { topo, cfg }
    }

    /// Per-message mixing work at one hop: one DH exponentiation + AEAD
    /// open (decrypt) plus one blinding exponentiation.
    fn per_message_hop(&self) -> SimDuration {
        self.cfg.op.exp.scale(2).saturating_add(self.cfg.op.aead)
    }

    /// Simulate a round with `m_users` users.
    pub fn simulate_round(&self, m_users: u64) -> RoundEstimate {
        let topo = self.topo;
        let cfg = &self.cfg;
        let k = topo.chain_len();
        let n = topo.n_chains();
        assert!(k >= 1 && n >= 1);

        // Per-chain batch sizes from the real selection table.
        let loads = topo.selection.chain_loads(m_users);
        let batches: Vec<u64> = loads.iter().map(|l| l.round() as u64).collect();
        let mean_batch = loads.iter().sum::<f64>() / n as f64;

        // Pseudo-nodes: users aggregate and the mailbox tier.
        let user_node = NodeId(topo.n_servers as u32);
        let mailbox_node = NodeId(topo.n_servers as u32 + 1);

        let mut avail: Vec<SimTime> = vec![SimTime::ZERO; topo.n_servers];
        let mut finish: Vec<SimTime> = vec![SimTime::ZERO; n];

        let mut engine: Engine<Ev> = Engine::new();

        // Ingest: users upload submissions (current + cover) to each
        // chain's first server.
        for (c, chain) in topo.chains.iter().enumerate() {
            let first = chain.members[0];
            let factor = if cfg.cover_traffic { 2 } else { 1 };
            let bytes = batches[c] * submission_wire_len(k) * factor;
            let at = cfg.net.transfer_time(user_node, NodeId(first.0), bytes);
            engine.schedule_at(
                SimTime::ZERO + at,
                Ev::HopArrive {
                    chain: c as u32,
                    hop: 0,
                },
            );
        }

        // Drive the pipeline.
        let per_hop_msg = self.per_message_hop();
        engine.run(|eng, ev| match ev {
            Ev::HopArrive { chain, hop } => {
                let c = chain as usize;
                let h = hop as usize;
                let batch = batches[c];
                let server = topo.chains[c].members[h].0 as usize;

                // Compute at this hop.
                let mut dur = cfg.compute.parallel_batch(batch, per_hop_msg);
                if h == 0 {
                    // PoK screening of the batch.
                    dur = dur
                        .saturating_add(cfg.compute.parallel_batch(batch, cfg.op.schnorr_verify));
                }
                dur = dur.saturating_add(cfg.op.dleq_prove);
                if h + 1 == k {
                    // Exit work: inner-envelope opening (one exp + AEAD
                    // per message) after the inner-key reveal round trip.
                    dur = dur.saturating_add(
                        cfg.compute
                            .parallel_batch(batch, cfg.op.exp.saturating_add(cfg.op.aead)),
                    );
                    dur = dur.saturating_add(cfg.net.max_latency.scale(2));
                }

                let start = eng.now().max(avail[server]);
                let done = start + dur;
                avail[server] = done;

                // Broadcast proof to the other members for verification.
                for (m_idx, member) in topo.chains[c].members.iter().enumerate() {
                    if m_idx == h {
                        continue;
                    }
                    let lat = cfg
                        .net
                        .latency(NodeId(topo.chains[c].members[h].0), NodeId(member.0));
                    engine_schedule(
                        eng,
                        done + lat,
                        Ev::Verify {
                            chain,
                            member: m_idx as u32,
                        },
                    );
                }

                if h + 1 < k {
                    let next = topo.chains[c].members[h + 1];
                    let bytes = batch * entry_wire_len(k, h + 1);
                    let t = cfg.net.transfer_time(
                        NodeId(topo.chains[c].members[h].0),
                        NodeId(next.0),
                        bytes,
                    );
                    engine_schedule(
                        eng,
                        done + t,
                        Ev::HopArrive {
                            chain,
                            hop: hop + 1,
                        },
                    );
                } else {
                    // Deliver to mailboxes.
                    let bytes = batch * (inner_envelope_len() as u64);
                    let t = cfg.net.transfer_time(
                        NodeId(topo.chains[c].members[h].0),
                        mailbox_node,
                        bytes,
                    );
                    finish[c] = done + t;
                }
            }
            Ev::Verify { chain, member } => {
                let c = chain as usize;
                let m = topo.chains[c].members[member as usize].0 as usize;
                let batch = batches[c];
                // Aggregate verification: recompute both products (two
                // group additions per message) plus one DLEQ verify.
                let dur = cfg
                    .compute
                    .parallel_batch(batch, cfg.op.group_add.scale(2))
                    .saturating_add(cfg.op.dleq_verify);
                let start = eng.now().max(avail[m]);
                avail[m] = start + dur;
            }
        });

        // Users fetch: one more one-way latency after the slowest chain.
        let slowest = finish.iter().copied().max().unwrap_or(SimTime::ZERO);
        let fetch = cfg.net.max_latency;
        let latency = (slowest + fetch).since(SimTime::ZERO);

        RoundEstimate {
            latency,
            events: engine.events_processed(),
            mean_batch,
        }
    }
}

/// Borrow-friendly wrapper (the closure already borrows `engine`
/// mutably through its first argument).
fn engine_schedule(engine: &mut Engine<Ev>, at: SimTime, ev: Ev) {
    engine.schedule_at(at, ev);
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrd_topology::Beacon;

    fn topo(n: usize, k: usize) -> Topology {
        Topology::build_with(&Beacon::from_u64(3), 0, n, n, k, 0.2)
    }

    fn model_cfg() -> PipelineConfig {
        PipelineConfig::paper(OpCosts::nominal())
    }

    #[test]
    fn latency_grows_linearly_with_users() {
        let t = topo(20, 4);
        let model = PipelineModel::new(&t, model_cfg());
        let r1 = model.simulate_round(20_000);
        let r2 = model.simulate_round(40_000);
        let ratio = r2.latency.as_secs_f64() / r1.latency.as_secs_f64();
        assert!(
            (1.5..=2.5).contains(&ratio),
            "expected ~2x latency for 2x users, got {ratio} ({} -> {})",
            r1.latency,
            r2.latency
        );
    }

    #[test]
    fn latency_shrinks_with_more_servers() {
        // XRD scaling: latency ∝ 1/√N (more chains, smaller batches,
        // same k).
        let t_small = topo(25, 4);
        let t_big = topo(100, 4);
        let m = 200_000;
        let l_small = PipelineModel::new(&t_small, model_cfg())
            .simulate_round(m)
            .latency;
        let l_big = PipelineModel::new(&t_big, model_cfg())
            .simulate_round(m)
            .latency;
        assert!(
            l_big < l_small,
            "100 servers ({l_big}) should beat 25 ({l_small})"
        );
        // √(100/25) = 2: expect roughly half the latency (loose bounds —
        // fixed latencies damp the effect).
        let ratio = l_small.as_secs_f64() / l_big.as_secs_f64();
        assert!(ratio > 1.2, "ratio {ratio}");
    }

    #[test]
    fn latency_grows_with_chain_length() {
        let t4 = topo(20, 4);
        let t8 = topo(20, 8);
        let m = 50_000;
        let l4 = PipelineModel::new(&t4, model_cfg())
            .simulate_round(m)
            .latency;
        let l8 = PipelineModel::new(&t8, model_cfg())
            .simulate_round(m)
            .latency;
        assert!(l8 > l4, "k=8 ({l8}) must be slower than k=4 ({l4})");
    }

    #[test]
    fn user_bandwidth_matches_paper_shape() {
        let model = UserCostModel {
            op: OpCosts::nominal(),
        };
        // Bandwidth grows ~√N.
        let b100 = model.bandwidth_bytes(100, 0.2);
        let b2000 = model.bandwidth_bytes(2000, 0.2);
        assert!(b100 > 10_000, "b100 = {b100}");
        assert!(b2000 > b100 * 3 && b2000 < b100 * 10, "b2000 = {b2000}");
        // Paper: ~54 KB at 100 servers, ~238 KB at 2000 — ours counts
        // the same message sets with our (leaner) wire format, so expect
        // the same order of magnitude.
        assert!((10_000..=120_000).contains(&b100));
        assert!((60_000..=500_000).contains(&b2000));
    }

    #[test]
    fn user_compute_below_paper_bound() {
        // §8.1: "less than 0.5 seconds with fewer than 2,000 servers"
        // (on their hardware); our nominal exps are slower, allow 4x.
        let model = UserCostModel {
            op: OpCosts::nominal(),
        };
        let t = model.compute_time(2000, 0.2);
        assert!(t.as_secs_f64() < 2.0, "user compute = {t}");
        // Monotone in N.
        assert!(model.compute_time(100, 0.2) < t);
    }

    #[test]
    fn cover_traffic_increases_ingest() {
        let t = topo(20, 3);
        let mut cfg = model_cfg();
        cfg.cover_traffic = false;
        let without = PipelineModel::new(&t, cfg).simulate_round(100_000).latency;
        let with = PipelineModel::new(&t, model_cfg())
            .simulate_round(100_000)
            .latency;
        assert!(with >= without);
    }

    #[test]
    fn wire_model_matches_real_submissions() {
        // The bandwidth model's sizes must equal the bytes the real
        // client actually produces.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use xrd_mixnet::client::seal_ahs;
        use xrd_mixnet::{generate_chain_keys, MailboxMessage, PAYLOAD_LEN};
        let mut rng = StdRng::seed_from_u64(9);
        for k in [1usize, 2, 4, 8] {
            let (_, keys) = generate_chain_keys(&mut rng, k, 0);
            let msg = MailboxMessage {
                mailbox: [1u8; 32],
                sealed: vec![0u8; PAYLOAD_LEN + 16],
            };
            let sub = seal_ahs(&mut rng, &keys, 0, &msg);
            assert_eq!(
                sub.wire_len() as u64,
                submission_wire_len(k),
                "submission size model wrong for k={k}"
            );
            assert_eq!(sub.to_bytes().len() as u64, submission_wire_len(k));
            assert_eq!(
                sub.to_entry().wire_len() as u64,
                entry_wire_len(k, 0),
                "entry size model wrong for k={k}"
            );
        }
    }

    #[test]
    fn wire_sizes_telescope() {
        // entering hop 0 = full onion; each hop strips one tag.
        let k = 5;
        assert_eq!(entry_wire_len(k, 0) + 32 + 64, submission_wire_len(k) + 32);
        for h in 1..k {
            assert_eq!(entry_wire_len(k, h - 1) - entry_wire_len(k, h), 16);
        }
    }
}
