//! Baseline kernels: the dominant per-message operations of the systems
//! XRD is compared against (grounding their structural models).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_baselines::elgamal::{encrypt, mix_hop};
use xrd_baselines::pung::{PirDatabase, RECORD_BYTES};
use xrd_crypto::keys::KeyPair;
use xrd_crypto::ristretto::GroupElement;

fn bench_atom_kernel(c: &mut Criterion) {
    // Atom's per-server operation: re-encrypt + shuffle a batch.
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&mut rng);
    let batch: Vec<_> = (0..64)
        .map(|_| {
            let m = GroupElement::random(&mut rng);
            encrypt(&mut rng, &kp.pk, &m)
        })
        .collect();
    let mut group = c.benchmark_group("atom_kernel");
    group.throughput(Throughput::Elements(64));
    group.bench_function("reencrypt_shuffle_64", |b| {
        b.iter(|| mix_hop(&mut rng, &kp.pk, &batch))
    });
    group.finish();
}

fn bench_pung_kernel(c: &mut Criterion) {
    // Pung's per-query operation: the full-database PIR scan.
    let mut group = c.benchmark_group("pung_pir_scan");
    for &db_size in &[1_000usize, 10_000, 100_000] {
        let db = PirDatabase::new((0..db_size).map(|i| {
            let mut r = [0u8; RECORD_BYTES];
            r[0] = i as u8;
            r
        }));
        let query: Vec<u64> = (0..db_size).map(|i| (i * 31) as u64).collect();
        group.throughput(Throughput::Elements(db_size as u64));
        group.bench_with_input(BenchmarkId::new("records", db_size), &db_size, |b, _| {
            b.iter(|| db.answer(&query))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_atom_kernel, bench_pung_kernel);
criterion_main!(benches);
