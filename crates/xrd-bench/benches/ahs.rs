//! Benchmarks of the aggregate hybrid shuffle — the paper's core
//! technique — including the headline ablation: AHS per-message cost vs.
//! a traditional verifiable shuffle (§6: "we instead propose ... using
//! only efficient cryptographic techniques").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_baselines::elgamal::{encrypt, mix_hop};
use xrd_baselines::vshuffle::{prove_shuffle_workload, verify_shuffle_workload};
use xrd_crypto::keys::KeyPair;
use xrd_crypto::ristretto::GroupElement;
use xrd_mixnet::client::seal_ahs;
use xrd_mixnet::{
    generate_chain_keys, verify_hop, MailboxMessage, MixEntry, MixServer, PAYLOAD_LEN,
};

fn batch_submissions(
    rng: &mut StdRng,
    keys: &xrd_mixnet::ChainPublicKeys,
    n: usize,
) -> Vec<MixEntry> {
    (0..n)
        .map(|i| {
            let msg = MailboxMessage {
                mailbox: [i as u8; 32],
                sealed: vec![0u8; PAYLOAD_LEN + 16],
            };
            seal_ahs(rng, keys, 0, &msg).to_entry()
        })
        .collect()
}

fn bench_ahs_hop(c: &mut Criterion) {
    let mut group = c.benchmark_group("ahs_hop");
    for &batch in &[16usize, 64, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let (secrets, public) = generate_chain_keys(&mut rng, 1, 0);
        let entries = batch_submissions(&mut rng, &public, batch);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("process", batch), &batch, |b, _| {
            b.iter_batched(
                || {
                    (
                        MixServer::new(secrets[0].clone(), public.clone()),
                        entries.clone(),
                        StdRng::seed_from_u64(9),
                    )
                },
                |(mut server, input, mut rng2)| server.process_round(&mut rng2, 0, input).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_ahs_verify(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let batch = 256;
    let (secrets, public) = generate_chain_keys(&mut rng, 1, 0);
    let entries = batch_submissions(&mut rng, &public, batch);
    let mut server = MixServer::new(secrets[0].clone(), public.clone());
    let result = server.process_round(&mut rng, 0, entries.clone()).unwrap();
    let mut group = c.benchmark_group("ahs_verify");
    group.throughput(Throughput::Elements(batch as u64));
    group.bench_function("aggregate_256", |b| {
        b.iter(|| {
            assert!(verify_hop(
                &public,
                0,
                0,
                &entries,
                &result.outputs,
                &result.proof
            ))
        })
    });
    group.finish();
}

/// The headline ablation: per-message work of AHS (~2 exps) vs a
/// traditional verifiable shuffle (~18 exps prove+verify).
fn bench_ahs_vs_vshuffle(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let batch = 64usize;
    let mut group = c.benchmark_group("ahs_vs_vshuffle");
    group.throughput(Throughput::Elements(batch as u64));

    let (secrets, public) = generate_chain_keys(&mut rng, 1, 0);
    let entries = batch_submissions(&mut rng, &public, batch);
    group.bench_function("ahs_mix_and_prove_64", |b| {
        b.iter_batched(
            || {
                (
                    MixServer::new(secrets[0].clone(), public.clone()),
                    entries.clone(),
                    StdRng::seed_from_u64(11),
                )
            },
            |(mut server, input, mut rng2)| server.process_round(&mut rng2, 0, input).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });

    let kp = KeyPair::generate(&mut rng);
    let cts: Vec<_> = (0..batch)
        .map(|_| {
            let m = GroupElement::random(&mut rng);
            encrypt(&mut rng, &kp.pk, &m)
        })
        .collect();
    group.bench_function("vshuffle_mix_and_prove_64", |b| {
        b.iter(|| {
            let outputs = mix_hop(&mut rng, &kp.pk, &cts);
            let proof = prove_shuffle_workload(&mut rng, &cts, &outputs);
            assert!(verify_shuffle_workload(&proof, &cts, &outputs));
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ahs_hop,
    bench_ahs_verify,
    bench_ahs_vs_vshuffle
);
criterion_main!(benches);
