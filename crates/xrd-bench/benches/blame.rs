//! The blame protocol's cost (Figure 7's kernel): tracing one
//! misauthenticated ciphertext back through a chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_mixnet::blame::BlameVerdict;
use xrd_mixnet::client::seal_ahs;
use xrd_mixnet::testutil::malicious_submission;
use xrd_mixnet::{run_blame, ChainRunner, MailboxMessage, MixError, PAYLOAD_LEN};

fn bench_blame(c: &mut Criterion) {
    let mut group = c.benchmark_group("blame");
    group.sample_size(10);
    for &k in &[4usize, 8, 16] {
        let mut rng = StdRng::seed_from_u64(7);
        let round = 0;
        let mut chain = ChainRunner::new(&mut rng, k, round);
        let msg = MailboxMessage {
            mailbox: [1u8; 32],
            sealed: vec![0u8; PAYLOAD_LEN + 16],
        };
        let mut subs: Vec<xrd_mixnet::Submission> = (0..8)
            .map(|_| seal_ahs(&mut rng, chain.public(), round, &msg))
            .collect();
        subs[3] = malicious_submission(&mut rng, chain.public(), round, k - 1);

        let public = chain.public().clone();
        let servers = chain.servers_mut();
        let mut entries: Vec<xrd_mixnet::MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        let mut failure = None;
        for (pos, server) in servers.iter_mut().enumerate() {
            match server.process_round(&mut rng, round, entries.clone()) {
                Ok(res) => entries = res.outputs,
                Err(MixError::DecryptFailure(idx)) => {
                    failure = Some((pos, idx[0]));
                    break;
                }
                Err(e) => panic!("{e:?}"),
            }
        }
        let (pos, idx) = failure.expect("must fail at last hop");
        assert_eq!(pos, k - 1);

        group.bench_with_input(BenchmarkId::new("trace_k", k), &k, |b, _| {
            b.iter(|| {
                let verdict = run_blame(&mut rng, &public, servers, &subs, round, pos, idx);
                assert_eq!(
                    verdict,
                    BlameVerdict::MaliciousUser {
                        submission_index: 3
                    }
                );
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blame);
criterion_main!(benches);
