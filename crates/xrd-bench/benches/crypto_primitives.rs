//! Microbenchmarks of the from-scratch crypto substrate: the per-op
//! costs every figure model is priced with.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_crypto::nizk::{DleqProof, SchnorrProof};
use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;
use xrd_crypto::{adec, aenc, blake2b_512, round_nonce};

fn bench_group_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let p = GroupElement::random(&mut rng);
    let q = GroupElement::random(&mut rng);
    let x = Scalar::random(&mut rng);

    c.bench_function("group/exponentiation", |b| b.iter(|| p.mul(&x)));
    c.bench_function("group/base_mul", |b| b.iter(|| GroupElement::base_mul(&x)));
    c.bench_function("group/add", |b| b.iter(|| p.add(&q)));
    c.bench_function("group/encode", |b| b.iter(|| p.encode()));
    let enc = p.encode();
    c.bench_function("group/decode", |b| b.iter(|| GroupElement::decode(&enc)));
}

fn bench_scalar_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = Scalar::random(&mut rng);
    let b_s = Scalar::random(&mut rng);
    c.bench_function("scalar/mul", |b| b.iter(|| a.mul(&b_s)));
    c.bench_function("scalar/invert", |b| b.iter(|| a.invert()));
}

fn bench_aead(c: &mut Criterion) {
    let key = [7u8; 32];
    let nonce = round_nonce(1, 0);
    let msg256 = vec![0u8; 256];
    let sealed = aenc(&key, &nonce, b"", &msg256);
    c.bench_function("aead/seal_256B", |b| {
        b.iter(|| aenc(&key, &nonce, b"", &msg256))
    });
    c.bench_function("aead/open_256B", |b| {
        b.iter(|| adec(&key, &nonce, b"", &sealed))
    });
    let msg = vec![0u8; 850]; // ~ a full AHS onion at k=32
    c.bench_function("aead/seal_onion_sized", |b| {
        b.iter(|| aenc(&key, &nonce, b"", &msg))
    });
}

fn bench_hash(c: &mut Criterion) {
    let data = vec![0u8; 1024];
    c.bench_function("blake2b/1KiB", |b| b.iter(|| blake2b_512(&data)));
}

fn bench_nizk(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let g = GroupElement::generator();
    let x = Scalar::random(&mut rng);
    let gx = GroupElement::base_mul(&x);
    c.bench_function("nizk/schnorr_prove", |b| {
        b.iter(|| SchnorrProof::prove(&mut rng, b"bench", &g, &gx, &x))
    });
    let proof = SchnorrProof::prove(&mut rng, b"bench", &g, &gx, &x);
    c.bench_function("nizk/schnorr_verify", |b| {
        b.iter(|| proof.verify(b"bench", &g, &gx))
    });

    let b2 = GroupElement::random(&mut rng);
    let p2 = b2.mul(&x);
    c.bench_function("nizk/dleq_prove", |b| {
        b.iter(|| DleqProof::prove(&mut rng, b"bench", &g, &gx, &b2, &p2, &x))
    });
    let dleq = DleqProof::prove(&mut rng, b"bench", &g, &gx, &b2, &p2, &x);
    c.bench_function("nizk/dleq_verify", |b| {
        b.iter(|| dleq.verify(b"bench", &g, &gx, &b2, &p2))
    });
}

criterion_group!(
    benches,
    bench_group_ops,
    bench_scalar_ops,
    bench_aead,
    bench_hash,
    bench_nizk
);
criterion_main!(benches);
