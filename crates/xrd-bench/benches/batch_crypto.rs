//! Benchmarks of the batch/amortized crypto fast paths introduced for
//! the hop kernel and batched proof verification, each against the
//! naive per-element path it replaces.  `BENCH_crypto.json` at the
//! repo root records the measured before/after trajectory.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_crypto::field::FieldElement;
use xrd_crypto::nizk::{DleqBatchEntry, DleqProof, SchnorrBatchEntry, SchnorrProof};
use xrd_crypto::ristretto::{GroupElement, GroupTable};
use xrd_crypto::scalar::Scalar;
use xrd_mixnet::chain_keys::generate_chain_keys;
use xrd_mixnet::client::seal_ahs;
use xrd_mixnet::message::{MailboxMessage, MixEntry, PAYLOAD_LEN};
use xrd_mixnet::MixServer;

const BATCH: usize = 64;

/// The §6.3 two-scalar hop kernel: per entry, raise the same DH key to
/// both `msk` (decrypt) and `bsk` (blind).
fn bench_hop_kernel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let msk = Scalar::random(&mut rng);
    let bsk = Scalar::random(&mut rng);
    let points: Vec<GroupElement> = (0..BATCH).map(|_| GroupElement::random(&mut rng)).collect();

    let mut group = c.benchmark_group("hop_kernel");
    // The pre-PR path: two from-scratch ladders per entry, using the
    // retained reference implementation of the old `scalar_mul`.
    group.bench_function("naive_two_muls_per_entry", |b| {
        b.iter(|| {
            let mut acc = GroupElement::identity();
            for p in &points {
                let (pm, pb) = p.naive_two_muls_reference(&msk, &bsk);
                acc = acc.add(&pm).add(&pb);
            }
            acc
        })
    });
    // The shared-table kernel: batch-built affine tables (one shared
    // field inversion), both exponentiations off each table.
    group.bench_function("shared_table_per_entry", |b| {
        b.iter(|| {
            let tables = GroupTable::batch_new(&points);
            let mut acc = GroupElement::identity();
            for table in &tables {
                let (pm, pb) = table.mul_pair(&msk, &bsk);
                acc = acc.add(&pm).add(&pb);
            }
            acc
        })
    });
    group.finish();
}

/// Montgomery batch inversion vs one inversion per element.
fn bench_batch_invert(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let elements: Vec<FieldElement> = (0..256)
        .map(|_| FieldElement::from_bytes(&Scalar::random(&mut rng).to_bytes()))
        .collect();

    let mut group = c.benchmark_group("batch_invert_256");
    group.bench_function("serial", |b| {
        b.iter(|| {
            elements
                .iter()
                .map(|e| e.invert())
                .fold(FieldElement::ZERO, |acc, e| acc.add(&e))
        })
    });
    group.bench_function("batch", |b| {
        b.iter_batched(
            || elements.clone(),
            |mut es| {
                FieldElement::batch_invert(&mut es);
                es
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Batch encoding (shared inversion) vs per-point encoding.
fn bench_batch_encode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let points: Vec<GroupElement> = (0..256).map(|_| GroupElement::random(&mut rng)).collect();
    let mut group = c.benchmark_group("encode_256");
    group.bench_function("serial", |b| {
        b.iter(|| points.iter().map(|p| p.encode()).collect::<Vec<_>>())
    });
    group.bench_function("batch", |b| b.iter(|| GroupElement::batch_encode(&points)));
    group.finish();
}

/// Batched NIZK verification (one multiscalar mul) vs a verify loop.
fn bench_batch_verify(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);

    let dleqs: Vec<_> = (0..BATCH)
        .map(|_| {
            let x = Scalar::random(&mut rng);
            let b1 = GroupElement::random(&mut rng);
            let b2 = GroupElement::random(&mut rng);
            let p1 = b1.mul(&x);
            let p2 = b2.mul(&x);
            let proof = DleqProof::prove(&mut rng, b"bench", &b1, &p1, &b2, &p2, &x);
            (b1, p1, b2, p2, proof)
        })
        .collect();
    let dleq_entries: Vec<DleqBatchEntry> = dleqs
        .iter()
        .map(|(b1, p1, b2, p2, proof)| DleqBatchEntry {
            context: b"bench",
            base1: *b1,
            public1: *p1,
            base2: *b2,
            public2: *p2,
            proof: *proof,
        })
        .collect();

    let mut group = c.benchmark_group("dleq_verify_64");
    group.sample_size(10);
    group.bench_function("loop", |b| {
        b.iter(|| {
            dleqs
                .iter()
                .all(|(b1, p1, b2, p2, proof)| proof.verify(b"bench", b1, p1, b2, p2))
        })
    });
    group.bench_function("batch", |b| {
        b.iter(|| DleqProof::batch_verify(&dleq_entries))
    });
    group.finish();

    let schnorrs: Vec<_> = (0..BATCH)
        .map(|_| {
            let base = GroupElement::random(&mut rng);
            let x = Scalar::random(&mut rng);
            let public = base.mul(&x);
            let proof = SchnorrProof::prove(&mut rng, b"bench", &base, &public, &x);
            (base, public, proof)
        })
        .collect();
    let schnorr_entries: Vec<SchnorrBatchEntry> = schnorrs
        .iter()
        .map(|(base, public, proof)| SchnorrBatchEntry {
            context: b"bench",
            base: *base,
            public: *public,
            proof: *proof,
        })
        .collect();
    let mut group = c.benchmark_group("schnorr_verify_64");
    group.sample_size(10);
    group.bench_function("loop", |b| {
        b.iter(|| {
            schnorrs
                .iter()
                .all(|(base, public, proof)| proof.verify(b"bench", base, public))
        })
    });
    group.bench_function("batch", |b| {
        b.iter(|| SchnorrProof::batch_verify(&schnorr_entries))
    });
    group.finish();
}

/// The hop kernel end to end: a full `MixServer::process_round` over a
/// sealed batch (tables + AEAD + shuffle + aggregate proof).
fn bench_hop_end_to_end(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let round = 1;
    let (secrets, public) = generate_chain_keys(&mut rng, 1, round);
    let entries: Vec<MixEntry> = (0..BATCH)
        .map(|i| {
            let msg = MailboxMessage {
                mailbox: [i as u8; 32],
                sealed: vec![i as u8; PAYLOAD_LEN + xrd_crypto::TAG_LEN],
            };
            seal_ahs(&mut rng, &public, round, &msg).to_entry()
        })
        .collect();
    let secrets = secrets.into_iter().next().unwrap();

    let mut group = c.benchmark_group("hop_e2e_64");
    group.sample_size(10);
    group.bench_function("process_round", |b| {
        b.iter_batched(
            || {
                (
                    MixServer::new(secrets.clone(), public.clone()),
                    entries.clone(),
                )
            },
            |(mut server, batch)| server.process_round(&mut rng, round, batch).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hop_kernel,
    bench_batch_invert,
    bench_batch_encode,
    bench_batch_verify,
    bench_hop_end_to_end
);
criterion_main!(benches);
