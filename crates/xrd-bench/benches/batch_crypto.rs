//! Benchmarks of the batch/amortized crypto fast paths introduced for
//! the hop kernel and batched proof verification, each against the
//! naive per-element path it replaces.  `BENCH_crypto.json` at the
//! repo root records the measured before/after trajectory.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_crypto::field::FieldElement;
use xrd_crypto::nizk::{DleqBatchEntry, DleqProof, SchnorrBatchEntry, SchnorrProof};
use xrd_crypto::ristretto::{GroupElement, GroupTable};
use xrd_crypto::scalar::Scalar;
use xrd_mixnet::chain_keys::generate_chain_keys;
use xrd_mixnet::client::seal_ahs;
use xrd_mixnet::message::{MailboxMessage, MixEntry, PAYLOAD_LEN};
use xrd_mixnet::MixServer;

const BATCH: usize = 64;

/// Same-build comparison of the two field backends (both are always
/// compiled; the feature flags only pick which one `FieldElement`
/// aliases — see `xrd-crypto/src/field/mod.rs`).  Dependent-op chains
/// of `OPS` iterations so the ~15ns ops dominate harness overhead and
/// latency (what the serial ladders actually pay) is what's measured.
fn bench_field_backends(c: &mut Criterion) {
    use xrd_crypto::field::{fiat51, sat64, FIELD_BACKEND};
    const OPS: usize = 1000;

    println!("selected FieldElement backend: {FIELD_BACKEND}");
    let mut rng = StdRng::seed_from_u64(7);
    let seed = Scalar::random(&mut rng).to_bytes();
    let f51 = fiat51::FieldElement::from_bytes(&seed);
    let f64x = sat64::FieldElement::from_bytes(&seed);

    let mut group = c.benchmark_group("field_mul_1000");
    group.bench_function("fiat51", |b| {
        b.iter(|| {
            let mut x = f51;
            for _ in 0..OPS {
                x = x.mul(&f51);
            }
            x
        })
    });
    group.bench_function("sat64", |b| {
        b.iter(|| {
            let mut x = f64x;
            for _ in 0..OPS {
                x = x.mul(&f64x);
            }
            x
        })
    });
    group.finish();

    let mut group = c.benchmark_group("field_square_1000");
    group.bench_function("fiat51", |b| {
        b.iter(|| {
            let mut x = f51;
            for _ in 0..OPS {
                x = x.square();
            }
            x
        })
    });
    group.bench_function("sat64", |b| {
        b.iter(|| {
            let mut x = f64x;
            for _ in 0..OPS {
                x = x.square();
            }
            x
        })
    });
    group.finish();

    // One inversion is ~254 squarings + 11 muls: the closest field-only
    // proxy for the constant-time ladder mix the hop kernel runs.
    let mut group = c.benchmark_group("field_invert");
    group.bench_function("fiat51", |b| b.iter(|| f51.invert()));
    group.bench_function("sat64", |b| b.iter(|| f64x.invert()));
    group.finish();
}

/// The *same-build* backend ratio on the real hop kernel: the generic
/// point pipeline lets one binary run `PointTable::scalar_mul_pair` —
/// table build included, exactly the §6.3 per-entry shape — over both
/// field representations on the same inputs, which removes build-to-
/// build noise from the comparison entirely.
fn bench_hop_kernel_backends(c: &mut Criterion) {
    use xrd_crypto::edwards::{EdwardsPoint, PointTable};
    use xrd_crypto::field::{fiat51, sat64};

    let mut rng = StdRng::seed_from_u64(6);
    let msk = Scalar::random(&mut rng);
    let bsk = Scalar::random(&mut rng);
    let encodings: Vec<[u8; 32]> = (0..BATCH)
        .map(|_| EdwardsPoint::base_mul(&Scalar::random(&mut rng)).compress())
        .collect();
    let p51: Vec<EdwardsPoint<fiat51::FieldElement>> = encodings
        .iter()
        .map(|e| EdwardsPoint::decompress(e).expect("valid"))
        .collect();
    let p64: Vec<EdwardsPoint<sat64::FieldElement>> = encodings
        .iter()
        .map(|e| EdwardsPoint::decompress(e).expect("valid"))
        .collect();

    let mut group = c.benchmark_group("hop_kernel_backends");
    group.sample_size(10);
    group.bench_function("fiat51", |b| {
        b.iter(|| {
            let tables = PointTable::batch_new(&p51);
            tables
                .iter()
                .map(|t| t.scalar_mul_pair(&msk, &bsk))
                .fold(EdwardsPoint::identity(), |acc, (pm, pb)| {
                    acc.add(&pm).add(&pb)
                })
        })
    });
    group.bench_function("sat64", |b| {
        b.iter(|| {
            let tables = PointTable::batch_new(&p64);
            tables
                .iter()
                .map(|t| t.scalar_mul_pair(&msk, &bsk))
                .fold(EdwardsPoint::identity(), |acc, (pm, pb)| {
                    acc.add(&pm).add(&pb)
                })
        })
    });
    group.finish();
}

/// The §6.3 two-scalar hop kernel: per entry, raise the same DH key to
/// both `msk` (decrypt) and `bsk` (blind).
fn bench_hop_kernel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let msk = Scalar::random(&mut rng);
    let bsk = Scalar::random(&mut rng);
    let points: Vec<GroupElement> = (0..BATCH).map(|_| GroupElement::random(&mut rng)).collect();

    let mut group = c.benchmark_group("hop_kernel");
    // The pre-PR path: two from-scratch ladders per entry, using the
    // retained reference implementation of the old `scalar_mul`.
    group.bench_function("naive_two_muls_per_entry", |b| {
        b.iter(|| {
            let mut acc = GroupElement::identity();
            for p in &points {
                let (pm, pb) = p.naive_two_muls_reference(&msk, &bsk);
                acc = acc.add(&pm).add(&pb);
            }
            acc
        })
    });
    // The shared-table kernel: batch-built affine tables (one shared
    // field inversion), both exponentiations off each table.
    group.bench_function("shared_table_per_entry", |b| {
        b.iter(|| {
            let tables = GroupTable::batch_new(&points);
            let mut acc = GroupElement::identity();
            for table in &tables {
                let (pm, pb) = table.mul_pair(&msk, &bsk);
                acc = acc.add(&pm).add(&pb);
            }
            acc
        })
    });
    group.finish();
}

/// Montgomery batch inversion vs one inversion per element.
fn bench_batch_invert(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let elements: Vec<FieldElement> = (0..256)
        .map(|_| FieldElement::from_bytes(&Scalar::random(&mut rng).to_bytes()))
        .collect();

    let mut group = c.benchmark_group("batch_invert_256");
    group.bench_function("serial", |b| {
        b.iter(|| {
            elements
                .iter()
                .map(|e| e.invert())
                .fold(FieldElement::ZERO, |acc, e| acc.add(&e))
        })
    });
    group.bench_function("batch", |b| {
        b.iter_batched(
            || elements.clone(),
            |mut es| {
                FieldElement::batch_invert(&mut es);
                es
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Ristretto encoding of a 256-point batch.  There is no batch fast
/// path to compare against: the per-point inverse square root is
/// inherent (square roots do not Montgomery-batch) and the serial
/// encode has no discrete inversion to amortize — PR 2's
/// shared-inversion variant measured 0.98× and was removed (see
/// `GroupElement::encode_all` for the bound's arithmetic).  This entry
/// tracks the per-point cost so the trajectory file keeps a number for
/// the wire path's dominant encode.
fn bench_encode_all(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let points: Vec<GroupElement> = (0..256).map(|_| GroupElement::random(&mut rng)).collect();
    let mut group = c.benchmark_group("encode_256");
    group.bench_function("encode_all", |b| {
        b.iter(|| GroupElement::encode_all(&points))
    });
    group.finish();
}

/// Batched NIZK verification (one multiscalar mul) vs a verify loop.
fn bench_batch_verify(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);

    let dleqs: Vec<_> = (0..BATCH)
        .map(|_| {
            let x = Scalar::random(&mut rng);
            let b1 = GroupElement::random(&mut rng);
            let b2 = GroupElement::random(&mut rng);
            let p1 = b1.mul(&x);
            let p2 = b2.mul(&x);
            let proof = DleqProof::prove(&mut rng, b"bench", &b1, &p1, &b2, &p2, &x);
            (b1, p1, b2, p2, proof)
        })
        .collect();
    let dleq_entries: Vec<DleqBatchEntry> = dleqs
        .iter()
        .map(|(b1, p1, b2, p2, proof)| DleqBatchEntry {
            context: b"bench",
            base1: *b1,
            public1: *p1,
            base2: *b2,
            public2: *p2,
            proof: *proof,
        })
        .collect();

    let mut group = c.benchmark_group("dleq_verify_64");
    group.sample_size(10);
    group.bench_function("loop", |b| {
        b.iter(|| {
            dleqs
                .iter()
                .all(|(b1, p1, b2, p2, proof)| proof.verify(b"bench", b1, p1, b2, p2))
        })
    });
    group.bench_function("batch", |b| {
        b.iter(|| DleqProof::batch_verify(&dleq_entries))
    });
    group.finish();

    let schnorrs: Vec<_> = (0..BATCH)
        .map(|_| {
            let base = GroupElement::random(&mut rng);
            let x = Scalar::random(&mut rng);
            let public = base.mul(&x);
            let proof = SchnorrProof::prove(&mut rng, b"bench", &base, &public, &x);
            (base, public, proof)
        })
        .collect();
    let schnorr_entries: Vec<SchnorrBatchEntry> = schnorrs
        .iter()
        .map(|(base, public, proof)| SchnorrBatchEntry {
            context: b"bench",
            base: *base,
            public: *public,
            proof: *proof,
        })
        .collect();
    let mut group = c.benchmark_group("schnorr_verify_64");
    group.sample_size(10);
    group.bench_function("loop", |b| {
        b.iter(|| {
            schnorrs
                .iter()
                .all(|(base, public, proof)| proof.verify(b"bench", base, public))
        })
    });
    group.bench_function("batch", |b| {
        b.iter(|| SchnorrProof::batch_verify(&schnorr_entries))
    });
    group.finish();
}

/// The hop kernel end to end: a full `MixServer::process_round` over a
/// sealed batch (tables + AEAD + shuffle + aggregate proof).
fn bench_hop_end_to_end(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let round = 1;
    let (secrets, public) = generate_chain_keys(&mut rng, 1, round);
    let entries: Vec<MixEntry> = (0..BATCH)
        .map(|i| {
            let msg = MailboxMessage {
                mailbox: [i as u8; 32],
                sealed: vec![i as u8; PAYLOAD_LEN + xrd_crypto::TAG_LEN],
            };
            seal_ahs(&mut rng, &public, round, &msg).to_entry()
        })
        .collect();
    let secrets = secrets.into_iter().next().unwrap();

    let mut group = c.benchmark_group("hop_e2e_64");
    group.sample_size(10);
    group.bench_function("process_round", |b| {
        b.iter_batched(
            || {
                (
                    MixServer::new(secrets.clone(), public.clone()),
                    entries.clone(),
                )
            },
            |(mut server, batch)| server.process_round(&mut rng, round, batch).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_field_backends,
    bench_hop_kernel_backends,
    bench_hop_kernel,
    bench_batch_invert,
    bench_encode_all,
    bench_batch_verify,
    bench_hop_end_to_end
);
criterion_main!(benches);
