//! Macro-benchmark: a complete real round through the in-process
//! deployment (Figure 1 end to end — submissions, AHS mixing with all
//! verifications, mailbox delivery, fetch and decrypt).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_core::{Deployment, DeploymentConfig, User};

fn bench_full_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e_round");
    group.sample_size(10);
    for &n_users in &[8usize, 24] {
        group.throughput(Throughput::Elements(n_users as u64));
        group.bench_with_input(BenchmarkId::new("users", n_users), &n_users, |b, _| {
            b.iter_batched(
                || {
                    let mut rng = StdRng::seed_from_u64(1);
                    let deployment = Deployment::new(&mut rng, DeploymentConfig::small(6, 2));
                    let mut users: Vec<User> = (0..n_users).map(|_| User::new(&mut rng)).collect();
                    // Pair users up for conversations.
                    for i in (0..n_users).step_by(2) {
                        if i + 1 < n_users {
                            let (a, b2) = (users[i].pk(), users[i + 1].pk());
                            users[i].start_conversation(b2);
                            users[i + 1].start_conversation(a);
                        }
                    }
                    (rng, deployment, users)
                },
                |(mut rng, mut deployment, mut users)| deployment.run_round(&mut rng, &mut users),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_round);
criterion_main!(benches);
