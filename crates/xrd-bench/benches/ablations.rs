//! Ablations of XRD's own design choices (DESIGN.md §5):
//! staggered vs aligned chain positions, cover traffic on/off, and the
//! ℓ ≈ √(2n) selection table's load balance.

use criterion::{criterion_group, criterion_main, Criterion};

use xrd_core::cost::{PipelineConfig, PipelineModel};
use xrd_sim::OpCosts;
use xrd_topology::{Beacon, SelectionTable, Topology};

fn bench_stagger_ablation(c: &mut Criterion) {
    // Staggering is a scheduling optimization; its effect shows up as
    // pipeline latency in the round simulation over the real topology.
    let beacon = Beacon::from_u64(5);
    let topo = Topology::build_with(&beacon, 0, 50, 50, 8, 0.2);
    let model = PipelineModel::new(&topo, PipelineConfig::paper(OpCosts::nominal()));
    let mut group = c.benchmark_group("pipeline_sim");
    group.bench_function("simulate_round_200k_users", |b| {
        b.iter(|| model.simulate_round(200_000))
    });
    group.finish();
}

fn bench_cover_ablation(c: &mut Criterion) {
    let beacon = Beacon::from_u64(6);
    let topo = Topology::build_with(&beacon, 0, 50, 50, 8, 0.2);
    let with = PipelineModel::new(&topo, PipelineConfig::paper(OpCosts::nominal()));
    let mut cfg = PipelineConfig::paper(OpCosts::nominal());
    cfg.cover_traffic = false;
    let without = PipelineModel::new(&topo, cfg);
    let mut group = c.benchmark_group("cover_traffic");
    group.bench_function("with_cover", |b| b.iter(|| with.simulate_round(100_000)));
    group.bench_function("without_cover", |b| {
        b.iter(|| without.simulate_round(100_000))
    });
    group.finish();
}

fn bench_selection_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_table");
    group.bench_function("build_n2000", |b| b.iter(|| SelectionTable::build(2000)));
    let table = SelectionTable::build(2000);
    group.bench_function("group_of", |b| {
        let pk = [42u8; 32];
        b.iter(|| table.group_of(&pk))
    });
    group.bench_function("meeting_chain", |b| b.iter(|| table.meeting_chain(3, 17)));
    group.finish();
}

criterion_group!(
    benches,
    bench_stagger_ablation,
    bench_cover_ablation,
    bench_selection_table
);
criterion_main!(benches);
