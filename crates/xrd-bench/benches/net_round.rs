//! Macro-benchmark: a complete round through the *networked* deployment
//! (loopback TCP daemons) next to the same round in-process — the cost
//! of the wire — plus the reactor concurrency probe: a connection storm
//! of concurrent submitters against a single daemon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_core::{Deployment, DeploymentConfig, User};
use xrd_mixnet::chain_keys::{generate_chain_keys, rotate_inner_keys};
use xrd_net::swarm::sealed_submissions;
use xrd_net::{launch_local, submit_storm, ChainClient, MixServerDaemon, StormConfig, Transport};

fn bench_networked_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_round");
    group.sample_size(10);
    let config = DeploymentConfig::small(4, 3);

    for &n_users in &[8usize, 24] {
        group.throughput(Throughput::Elements(n_users as u64));

        group.bench_with_input(
            BenchmarkId::new("in_process", n_users),
            &n_users,
            |b, &n| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut deployment = Deployment::new(&mut rng, config.clone());
                let mut users: Vec<User> = (0..n).map(|_| User::new(&mut rng)).collect();
                b.iter(|| deployment.run_round(&mut rng, &mut users));
            },
        );

        group.bench_with_input(BenchmarkId::new("over_tcp", n_users), &n_users, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            let (_cluster, mut deployment) =
                launch_local(&mut rng, &config).expect("cluster launches");
            let mut users: Vec<User> = (0..n).map(|_| User::new(&mut rng)).collect();
            b.iter(|| deployment.run_round(&mut rng, &mut users));
        });
    }
    group.finish();
}

/// The event-loop scalability probe: N concurrent submitter
/// connections (each a real sealed submission, PoK verified by the
/// daemon) through one submission window plus one mix hop, all served
/// by a single daemon on one reactor thread.
fn bench_submit_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_storm");
    group.sample_size(10);
    for &n_conns in &[128usize, 512] {
        group.throughput(Throughput::Elements(n_conns as u64));
        group.bench_with_input(
            BenchmarkId::new("storm", n_conns),
            &n_conns,
            |b, &n_conns| {
                let mut rng = StdRng::seed_from_u64(3);
                let config = StormConfig {
                    n_conns,
                    workers: 4,
                    chain_len: 3,
                };
                b.iter(|| submit_storm(&mut rng, &config).expect("storm completes"));
            },
        );
    }
    group.finish();

    // One un-timed storm whose report is printed from the wire-scraped
    // registry snapshot: the numbers recorded next to the criterion
    // output (and into the bench-smoke artifact) are the same series
    // `xrd-netd stats` serves an operator, not bench-only bookkeeping.
    let mut rng = StdRng::seed_from_u64(3);
    let report = submit_storm(&mut rng, &StormConfig::default()).expect("storm completes");
    let s = &report.stats;
    println!(
        "net_storm scrape @ {} conns: {} frames in ({} Submit), {} B in / {} B out",
        report.n_conns,
        s.counter("reactor.frames_in"),
        s.counter("frames.in.Submit"),
        s.counter("reactor.bytes_in"),
        s.counter("reactor.bytes_out"),
    );
    for name in ["hop.decrypt_blind_us", "hop.shuffle_prove_us"] {
        if let Some(h) = s.hist(name) {
            println!(
                "net_storm scrape {name}: n={} p50 {}µs p95 {}µs p99 {}µs max {}µs",
                h.count,
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            );
        }
    }
}

/// The streamed-pipeline probe: one k=3 chain (three mix daemons on
/// loopback), one agreed batch, the complete mix phase — k hops,
/// cross-server verification, the coordinator's batched audit,
/// inner-key reveal and envelope opening — whole-batch versus
/// streamed.  The whole-batch path transfers, computes and
/// cross-verifies each hop serially; the streamed path forwards output
/// chunks to the next hop as they arrive, starts hop crypto on arrived
/// chunks, and cross-verifies keys-only at end of chain.
fn bench_hop_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("hop_pipeline");
    group.sample_size(10);
    const K: usize = 3;
    const N: usize = 384;
    group.throughput(Throughput::Elements(N as u64));

    let mut rng = StdRng::seed_from_u64(7);
    let round = 0u64;
    let (mut secrets, mut public) = generate_chain_keys(&mut rng, K, 0);
    rotate_inner_keys(&mut rng, &mut secrets, &mut public, round);
    let daemons: Vec<_> = secrets
        .into_iter()
        .map(|s| {
            MixServerDaemon::spawn("127.0.0.1:0", s, public.clone(), 5).expect("daemon spawns")
        })
        .collect();
    let addrs: Vec<_> = daemons.iter().map(|d| d.addr()).collect();
    let submissions = sealed_submissions(&mut rng, &public, round, N);

    for (label, transport) in [
        ("whole_batch", Transport::Whole),
        ("streamed", Transport::Streamed { chunk: 64 }),
    ] {
        group.bench_function(BenchmarkId::new(label, N), |b| {
            let mut chain =
                ChainClient::connect(&addrs, public.clone()).expect("coordinator connects");
            chain.set_transport(transport);
            b.iter(|| {
                let outcome = chain
                    .mix_round(round, &submissions)
                    .expect("mix round runs");
                assert_eq!(outcome.delivered.len(), N);
                outcome
            });
        });
    }
    group.finish();
    drop(daemons);
}

criterion_group!(
    benches,
    bench_networked_round,
    bench_submit_storm,
    bench_hop_pipeline
);
criterion_main!(benches);
