//! Macro-benchmark: a complete round through the *networked* deployment
//! (loopback TCP daemons) next to the same round in-process — the cost
//! of the wire — plus the reactor concurrency probe: a connection storm
//! of concurrent submitters against a single daemon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_core::{Deployment, DeploymentConfig, User};
use xrd_net::{launch_local, submit_storm, StormConfig};

fn bench_networked_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_round");
    group.sample_size(10);
    let config = DeploymentConfig::small(4, 3);

    for &n_users in &[8usize, 24] {
        group.throughput(Throughput::Elements(n_users as u64));

        group.bench_with_input(
            BenchmarkId::new("in_process", n_users),
            &n_users,
            |b, &n| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut deployment = Deployment::new(&mut rng, config.clone());
                let mut users: Vec<User> = (0..n).map(|_| User::new(&mut rng)).collect();
                b.iter(|| deployment.run_round(&mut rng, &mut users));
            },
        );

        group.bench_with_input(BenchmarkId::new("over_tcp", n_users), &n_users, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            let (_cluster, mut deployment) =
                launch_local(&mut rng, &config).expect("cluster launches");
            let mut users: Vec<User> = (0..n).map(|_| User::new(&mut rng)).collect();
            b.iter(|| deployment.run_round(&mut rng, &mut users));
        });
    }
    group.finish();
}

/// The event-loop scalability probe: N concurrent submitter
/// connections (each a real sealed submission, PoK verified by the
/// daemon) through one submission window plus one mix hop, all served
/// by a single daemon on one reactor thread.
fn bench_submit_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_storm");
    group.sample_size(10);
    for &n_conns in &[128usize, 512] {
        group.throughput(Throughput::Elements(n_conns as u64));
        group.bench_with_input(
            BenchmarkId::new("storm", n_conns),
            &n_conns,
            |b, &n_conns| {
                let mut rng = StdRng::seed_from_u64(3);
                let config = StormConfig {
                    n_conns,
                    workers: 4,
                    chain_len: 3,
                };
                b.iter(|| submit_storm(&mut rng, &config).expect("storm completes"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_networked_round, bench_submit_storm);
criterion_main!(benches);
