//! Client-side cost (Figure 3's kernel): sealing AHS submissions for
//! various chain lengths, plus the basic-onion ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;
use xrd_mixnet::client::{seal_ahs, seal_basic};
use xrd_mixnet::{generate_chain_keys, MailboxMessage, PAYLOAD_LEN};

fn msg() -> MailboxMessage {
    MailboxMessage {
        mailbox: [1u8; 32],
        sealed: vec![0u8; PAYLOAD_LEN + 16],
    }
}

fn bench_seal_ahs(c: &mut Criterion) {
    let mut group = c.benchmark_group("seal_ahs");
    for &k in &[4usize, 8, 16, 32] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let (_, keys) = generate_chain_keys(&mut rng, k, 0);
        let m = msg();
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, _| {
            b.iter(|| seal_ahs(&mut rng, &keys, 0, &m))
        });
    }
    group.finish();
}

/// Ablation: the AHS shared-x onion vs the Algorithm-2 fresh-x-per-layer
/// onion at the paper's chain length.
fn bench_seal_ahs_vs_basic(c: &mut Criterion) {
    let k = 32;
    let mut rng = StdRng::seed_from_u64(99);
    let (_, keys) = generate_chain_keys(&mut rng, k, 0);
    let msks: Vec<Scalar> = (0..k).map(|_| Scalar::random(&mut rng)).collect();
    let mpks: Vec<GroupElement> = msks.iter().map(GroupElement::base_mul).collect();
    let m = msg();

    let mut group = c.benchmark_group("seal_onion_k32");
    group.bench_function("ahs_shared_x", |b| {
        b.iter(|| seal_ahs(&mut rng, &keys, 0, &m))
    });
    group.bench_function("basic_fresh_x_per_layer", |b| {
        b.iter(|| seal_basic(&mut rng, &mpks, 0, &m))
    });
    group.finish();
}

criterion_group!(benches, bench_seal_ahs, bench_seal_ahs_vs_basic);
criterion_main!(benches);
