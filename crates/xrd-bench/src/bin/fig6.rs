//! Regenerate Figure 6: latency vs assumed malicious fraction f.
fn main() {
    let op = xrd_bench::calibrate(false);
    println!("{}\n", xrd_bench::format_op_costs(&op));
    println!(
        "{}",
        xrd_bench::report::fig6_table(&xrd_bench::figures::fig6(&op))
    );
}
