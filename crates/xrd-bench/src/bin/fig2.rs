//! Regenerate Figure 2: user bandwidth vs number of servers.
fn main() {
    let op = xrd_bench::calibrate(false);
    println!("{}\n", xrd_bench::format_op_costs(&op));
    println!(
        "{}",
        xrd_bench::report::fig2_table(&xrd_bench::figures::fig2(&op))
    );
}
