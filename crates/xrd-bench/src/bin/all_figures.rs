//! Regenerate every figure of the paper's evaluation in one run,
//! in the layout EXPERIMENTS.md records.
fn main() {
    let op = xrd_bench::calibrate(false);
    println!("{}\n", xrd_bench::format_op_costs(&op));
    println!(
        "{}",
        xrd_bench::report::fig2_table(&xrd_bench::figures::fig2(&op))
    );
    println!(
        "{}",
        xrd_bench::report::fig3_table(&xrd_bench::figures::fig3(&op))
    );
    println!(
        "{}",
        xrd_bench::report::fig4_table(&xrd_bench::figures::fig4(&op))
    );
    println!(
        "{}",
        xrd_bench::report::fig5_table(&xrd_bench::figures::fig5(&op))
    );
    println!(
        "{}",
        xrd_bench::report::fig5_extrapolation_table(&xrd_bench::figures::fig5_extrapolation(&op))
    );
    println!(
        "{}",
        xrd_bench::report::fig6_table(&xrd_bench::figures::fig6(&op))
    );
    let (per_user, rows) = xrd_bench::figures::fig7(false);
    println!("{}", xrd_bench::report::fig7_table(per_user, &rows));
    println!(
        "{}",
        xrd_bench::report::fig8_table(&xrd_bench::figures::fig8(false))
    );
}
