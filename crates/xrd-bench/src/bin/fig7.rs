//! Regenerate Figure 7: blame-protocol latency vs malicious users.
fn main() {
    let (per_user, rows) = xrd_bench::figures::fig7(false);
    println!("{}", xrd_bench::report::fig7_table(per_user, &rows));
}
