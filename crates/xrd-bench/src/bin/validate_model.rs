//! Cross-validation of the figure pipeline model against a **real**
//! end-to-end round: run an actual in-process deployment (real crypto,
//! real AHS with all verifications, chains on parallel threads) and
//! compare its wall-clock time with what the discrete-event model
//! predicts for the equivalent configuration.
//!
//! This grounds the Figure 4–6 methodology: the model is only trusted to
//! extrapolate because it reproduces real runs at scales we can execute.
//!
//! ```sh
//! cargo run --release -p xrd-bench --bin validate_model
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_core::cost::{PipelineConfig, PipelineModel};
use xrd_core::{Deployment, DeploymentConfig, User};
use xrd_sim::{NetworkModel, ServerCompute};
use xrd_topology::{Beacon, Topology};

fn main() {
    let op = xrd_bench::calibrate(false);
    println!("{}\n", xrd_bench::format_op_costs(&op));

    let n_servers = 12;
    let k = 3;
    let n_users = 200;
    let mut rng = StdRng::seed_from_u64(1);

    println!("real run: {n_servers} servers, chains of {k}, {n_users} users");
    let mut deployment = Deployment::new(
        &mut rng,
        DeploymentConfig {
            n_servers,
            chain_len: Some(k),
            f: 0.2,
            n_mailbox_shards: 2,
            seed: 7,
        },
    );
    let mut users: Vec<User> = (0..n_users).map(|_| User::new(&mut rng)).collect();
    // Pair half the users into conversations.
    for i in (0..n_users).step_by(2) {
        let (a, b) = (users[i].pk(), users[i + 1].pk());
        users[i].start_conversation(b);
        users[i + 1].start_conversation(a);
    }
    let ell = deployment.topology().ell();
    println!(
        "  l = {ell} messages/user => {} onions sealed per round (incl. covers)",
        2 * ell * n_users
    );

    // Warm-up round (key schedules, allocator), then measured rounds.
    let _ = deployment.run_round_parallel(&mut rng, &mut users);
    let rounds = 3;
    let start = Instant::now();
    for _ in 0..rounds {
        let (report, _) = deployment.run_round_parallel(&mut rng, &mut users);
        assert_eq!(report.delivered, n_users * ell);
    }
    let real = start.elapsed().as_secs_f64() / rounds as f64;
    println!("  measured wall time per round: {real:.3} s (includes client sealing)");

    // Client-side share: time the sealing alone (the model excludes it,
    // matching the paper's methodology of pre-generating messages).
    let keys = deployment.chain_keys().to_vec();
    let topo2 = deployment.topology().clone();
    let start = Instant::now();
    for user in users.iter() {
        let _ = user.seal_round(&mut rng, &topo2, &keys, 999, false);
        let _ = user.seal_round(&mut rng, &topo2, &keys, 999, true);
    }
    let sealing = start.elapsed().as_secs_f64();
    println!("  of which client sealing: {sealing:.3} s");
    let real_mixing = (real - sealing).max(0.0);
    println!("  server-side (mixing) portion: {real_mixing:.3} s");

    // Model the equivalent configuration: every chain ran as one thread
    // on this machine, so a "server" is a single core; the network is
    // the in-process channel (ideal).
    let beacon = Beacon::from_u64(7);
    let topo = Topology::build_with(&beacon, 0, n_servers, n_servers, k, 0.2);
    let cfg = PipelineConfig {
        op,
        net: NetworkModel::ideal(),
        compute: ServerCompute::with_cores(1),
        cover_traffic: true,
    };
    let model = PipelineModel::new(&topo, cfg);
    let estimate = model.simulate_round(n_users as u64);
    println!(
        "\nmodel estimate (one core per server, chains fully parallel): {:.3} s",
        estimate.latency.as_secs_f64()
    );

    // The model assumes every chain really runs in parallel (a machine
    // per server); this process only has `nproc` cores, so the threaded
    // run time-slices chains.  Conserve total work to compare.
    let nproc = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let slowdown = (n_servers as f64 / nproc as f64).max(1.0);
    let expected_real = estimate.latency.as_secs_f64() * slowdown;
    println!(
        "this machine has {nproc} cores for {n_servers} chain threads =>\n\
         expected wall time ~= model x {slowdown:.1} = {expected_real:.3} s"
    );
    let ratio = real_mixing / expected_real;
    println!("real(mixing) / expected = {ratio:.2}");
    println!(
        "\ninterpretation: agreement within a small factor validates the cost\n\
         accounting used for Figures 4-6 (the model prices exactly the crypto\n\
         operations the real chain executes; residual gap is thread scheduling\n\
         and allocation overhead the model does not charge for)."
    );
    assert!(
        (0.2..5.0).contains(&ratio),
        "model and reality disagree: ratio = {ratio}"
    );
}
