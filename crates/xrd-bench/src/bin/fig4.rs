//! Regenerate Figure 4: end-to-end latency vs number of users.
fn main() {
    let op = xrd_bench::calibrate(false);
    println!("{}\n", xrd_bench::format_op_costs(&op));
    println!(
        "{}",
        xrd_bench::report::fig4_table(&xrd_bench::figures::fig4(&op))
    );
}
