//! Regenerate Figure 8: conversation failure rate vs server churn.
fn main() {
    let rows = xrd_bench::figures::fig8(false);
    println!("{}", xrd_bench::report::fig8_table(&rows));
}
