//! Regenerate Figure 5: end-to-end latency vs number of servers.
fn main() {
    let op = xrd_bench::calibrate(false);
    println!("{}\n", xrd_bench::format_op_costs(&op));
    println!(
        "{}",
        xrd_bench::report::fig5_table(&xrd_bench::figures::fig5(&op))
    );
    println!(
        "{}",
        xrd_bench::report::fig5_extrapolation_table(&xrd_bench::figures::fig5_extrapolation(&op))
    );
}
