//! Regenerate Figure 3: user computation vs number of servers.
fn main() {
    let op = xrd_bench::calibrate(false);
    println!("{}\n", xrd_bench::format_op_costs(&op));
    println!(
        "{}",
        xrd_bench::report::fig3_table(&xrd_bench::figures::fig3(&op))
    );
}
