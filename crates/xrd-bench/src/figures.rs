//! Generators for every figure in the paper's evaluation (§8).
//!
//! Each `figN_*` function returns structured rows; the `fig*` binaries
//! print them alongside the paper's reported values.  XRD numbers come
//! from this repository's implementation (measured directly, or through
//! the calibrated pipeline model); baseline numbers come from structural
//! models priced with the same calibrated costs (Atom, Stadium) or
//! anchored at the baseline's published operating points (Pung) — see
//! `xrd-baselines` and DESIGN.md.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_baselines::{AtomModel, PungModel, PungVariant, StadiumModel};
use xrd_core::churn::simulate_churn;
use xrd_core::cost::{PipelineConfig, PipelineModel, UserCostModel};
use xrd_mixnet::blame::BlameVerdict;
use xrd_mixnet::client::seal_ahs;
use xrd_mixnet::{ChainRunner, MailboxMessage, PAYLOAD_LEN};
use xrd_sim::{OpCosts, ServerCompute};
use xrd_topology::{chain_length, ell_for_chains, Beacon, Topology};

/// Servers sweep used by Figures 2 and 3.
pub const FIG23_SERVERS: [usize; 7] = [50, 100, 250, 500, 1000, 1500, 2000];

/// One row of Figure 2: user bandwidth per round (bytes).
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Number of servers N.
    pub n_servers: usize,
    /// XRD (this implementation's real wire sizes).
    pub xrd: u64,
    /// Pung with XPIR at 1M users.
    pub pung_xpir_1m: u64,
    /// Pung with XPIR at 4M users.
    pub pung_xpir_4m: u64,
    /// Pung with SealPIR.
    pub pung_sealpir: u64,
    /// Stadium.
    pub stadium: u64,
}

/// Figure 2: required user bandwidth vs. number of servers.
pub fn fig2(op: &OpCosts) -> Vec<Fig2Row> {
    let xrd_model = UserCostModel { op: *op };
    let pung = PungModel::default();
    let stadium = StadiumModel::default();
    FIG23_SERVERS
        .iter()
        .map(|&n| Fig2Row {
            n_servers: n,
            xrd: xrd_model.bandwidth_bytes(n, 0.2),
            pung_xpir_1m: pung.user_bandwidth_bytes(PungVariant::Xpir, 1_000_000),
            pung_xpir_4m: pung.user_bandwidth_bytes(PungVariant::Xpir, 4_000_000),
            pung_sealpir: pung.user_bandwidth_bytes(PungVariant::SealPir, 1_000_000),
            stadium: stadium.user_bandwidth_bytes(),
        })
        .collect()
}

/// One row of Figure 3: single-core user computation (seconds).
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Number of servers N.
    pub n_servers: usize,
    /// XRD, **measured** by sealing a real submission for this chain
    /// length and scaling by the 2ℓ submissions per round.
    pub xrd_measured: f64,
    /// XRD per the op-cost model (cross-check).
    pub xrd_model: f64,
    /// Pung XPIR (at 1M users) / SealPIR / Stadium / Atom models.
    pub pung_xpir: f64,
    /// Pung SealPIR client.
    pub pung_sealpir: f64,
    /// Stadium client.
    pub stadium: f64,
    /// Atom client.
    pub atom: f64,
}

/// Figure 3: user computation vs. number of servers.
pub fn fig3(op: &OpCosts) -> Vec<Fig3Row> {
    let mut rng = StdRng::seed_from_u64(3);
    let xrd_model = UserCostModel { op: *op };
    let pung = PungModel::default();
    let stadium = StadiumModel::default();
    let atom = AtomModel::default();

    FIG23_SERVERS
        .iter()
        .map(|&n| {
            let k = chain_length(0.2, n, 64);
            let ell = ell_for_chains(n) as u32;
            // Measure one real submission seal for this k.
            let (_, keys) = xrd_mixnet::generate_chain_keys(&mut rng, k, 0);
            let msg = MailboxMessage {
                mailbox: [1u8; 32],
                sealed: vec![0u8; PAYLOAD_LEN + 16],
            };
            let start = Instant::now();
            let reps = 3;
            for _ in 0..reps {
                let _ = seal_ahs(&mut rng, &keys, 0, &msg);
            }
            let per_seal = start.elapsed().as_secs_f64() / reps as f64;
            Fig3Row {
                n_servers: n,
                xrd_measured: per_seal * (2 * ell) as f64,
                xrd_model: xrd_model.compute_time(n, 0.2).as_secs_f64(),
                pung_xpir: pung.user_compute_secs(PungVariant::Xpir, 1_000_000),
                pung_sealpir: pung.user_compute_secs(PungVariant::SealPir, 1_000_000),
                stadium: stadium.user_compute_secs(op),
                atom: atom.user_compute_secs(op),
            }
        })
        .collect()
}

/// One row of Figures 4/5/6: end-to-end latency (seconds).
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// Sweep variable (users in millions for Fig 4; servers for Fig 5;
    /// f for Fig 6).
    pub x: f64,
    /// XRD latency from the calibrated pipeline simulation.
    pub xrd: f64,
    /// XRD normalized so that the (1M users, 100 servers) anchor equals
    /// the paper's 128 s — isolates architectural shape from our
    /// hardware's absolute speed.
    pub xrd_normalized: f64,
    /// Atom model.
    pub atom: f64,
    /// Pung model.
    pub pung: f64,
    /// Stadium model.
    pub stadium: f64,
}

fn xrd_latency(op: &OpCosts, m_users: u64, n_servers: usize, f: f64) -> f64 {
    let k = chain_length(f, n_servers, 64);
    let topo = Topology::build_with(&Beacon::from_u64(42), 0, n_servers, n_servers, k, f);
    let model = PipelineModel::new(&topo, PipelineConfig::paper(*op));
    model.simulate_round(m_users).latency.as_secs_f64()
}

/// The paper's anchor for normalized comparisons: 1M users / 100
/// servers ran in 128 s on the authors' testbed.
pub const PAPER_ANCHOR_SECS: f64 = 128.0;

/// Figure 4: latency vs. number of users (1M–8M), 100 servers, f=0.2.
pub fn fig4(op: &OpCosts) -> Vec<LatencyRow> {
    let compute = ServerCompute::c4_8xlarge();
    let atom = AtomModel::default();
    let pung = PungModel::default();
    let stadium = StadiumModel::default();
    let anchor = xrd_latency(op, 1_000_000, 100, 0.2);
    [1u64, 2, 3, 4, 5, 6, 7, 8]
        .iter()
        .map(|&mm| {
            let m = mm * 1_000_000;
            let xrd = xrd_latency(op, m, 100, 0.2);
            LatencyRow {
                x: mm as f64,
                xrd,
                xrd_normalized: xrd / anchor * PAPER_ANCHOR_SECS,
                atom: atom.latency_secs(m, 100, op, &compute),
                pung: pung.latency_secs(m, 100),
                stadium: stadium.latency_secs(m, 100, op, &compute),
            }
        })
        .collect()
}

/// Figure 5: latency vs. number of servers (50–200), 2M users, f=0.2.
pub fn fig5(op: &OpCosts) -> Vec<LatencyRow> {
    fig5_sweep(op, &[50, 75, 100, 125, 150, 175, 200])
}

/// The §8.2 extrapolation beyond the paper's testbed: the text estimates
/// XRD at 2M users needs ~84 s with 1,000 servers, and that Atom and
/// Pung catch up to XRD at roughly 3,000 and 1,000 servers.
pub fn fig5_extrapolation(op: &OpCosts) -> Vec<LatencyRow> {
    fig5_sweep(op, &[500, 1000, 2000, 3000])
}

fn fig5_sweep(op: &OpCosts, servers: &[usize]) -> Vec<LatencyRow> {
    let compute = ServerCompute::c4_8xlarge();
    let atom = AtomModel::default();
    let pung = PungModel::default();
    let stadium = StadiumModel::default();
    let anchor = xrd_latency(op, 1_000_000, 100, 0.2);
    servers
        .iter()
        .map(|&n| {
            let xrd = xrd_latency(op, 2_000_000, n, 0.2);
            LatencyRow {
                x: n as f64,
                xrd,
                xrd_normalized: xrd / anchor * PAPER_ANCHOR_SECS,
                atom: atom.latency_secs(2_000_000, n, op, &compute),
                pung: pung.latency_secs(2_000_000, n),
                stadium: stadium.latency_secs(2_000_000, n, op, &compute),
            }
        })
        .collect()
}

/// One row of Figure 6: latency vs. assumed malicious fraction f.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Malicious fraction f.
    pub f: f64,
    /// Chain length k(f) from the 2^-64 bound.
    pub chain_len: usize,
    /// XRD latency (seconds), 2M users / 100 servers.
    pub xrd: f64,
    /// Normalized to the paper anchor.
    pub xrd_normalized: f64,
}

/// Figure 6: latency as a function of f (2M users, 100 servers).
pub fn fig6(op: &OpCosts) -> Vec<Fig6Row> {
    let anchor = xrd_latency(op, 1_000_000, 100, 0.2);
    [0.05f64, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45]
        .iter()
        .map(|&f| {
            let xrd = xrd_latency(op, 2_000_000, 100, f);
            Fig6Row {
                f,
                chain_len: chain_length(f, 100, 64),
                xrd,
                xrd_normalized: xrd / anchor * PAPER_ANCHOR_SECS,
            }
        })
        .collect()
}

/// One row of Figure 7: worst-case blame latency.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Number of malicious users caught in one chain.
    pub malicious_users: u64,
    /// Extrapolated blame latency (seconds) on 36 cores.
    pub latency_secs: f64,
}

/// Figure 7: blame-protocol latency vs. number of malicious users.
///
/// Measures the *real* blame protocol end to end on a full-length chain
/// (k from the paper's f=0.2 bound) with the misauthenticated ciphertext
/// detected at the last server (worst case), then scales linearly in the
/// number of malicious users and divides by the server's cores (blame
/// runs per-ciphertext in parallel, §8.2).
pub fn fig7(quick: bool) -> (f64, Vec<Fig7Row>) {
    let mut rng = StdRng::seed_from_u64(7);
    let k = if quick { 8 } else { chain_length(0.2, 100, 64) };
    let round = 0;
    let mut chain = ChainRunner::new(&mut rng, k, round);

    // A few honest users plus one malicious submission crafted to fail
    // at the *last* hop — the worst case for blame (§8.2: "they cause
    // the most slowdown when the misauthenticated ciphertexts are at
    // the last server").
    let msg = MailboxMessage {
        mailbox: [1u8; 32],
        sealed: vec![0u8; PAYLOAD_LEN + 16],
    };
    let mut subs: Vec<xrd_mixnet::Submission> = (0..8)
        .map(|_| seal_ahs(&mut rng, chain.public(), round, &msg))
        .collect();
    subs[3] = xrd_mixnet::testutil::malicious_submission(&mut rng, chain.public(), round, k - 1);

    // Run hops manually to find the failure, then time blame.
    let public = chain.public().clone();
    let servers = chain.servers_mut();
    let mut entries: Vec<xrd_mixnet::MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
    let mut failure = None;
    for (pos, server) in servers.iter_mut().enumerate() {
        match server.process_round(&mut rng, round, entries.clone()) {
            Ok(res) => entries = res.outputs,
            Err(xrd_mixnet::MixError::DecryptFailure(idx)) => {
                failure = Some((pos, idx[0]));
                break;
            }
            Err(e) => panic!("unexpected: {e:?}"),
        }
    }
    let (pos, idx) = failure.expect("corruption must be detected");

    let start = Instant::now();
    let reps = if quick { 1 } else { 4 };
    for _ in 0..reps {
        let verdict = xrd_mixnet::run_blame(&mut rng, &public, servers, &subs, round, pos, idx);
        assert_eq!(
            verdict,
            BlameVerdict::MaliciousUser {
                submission_index: 3
            }
        );
    }
    let mut per_user = start.elapsed().as_secs_f64() / reps as f64;
    if quick {
        // Scale the quick (k=8) measurement to the paper's k.
        per_user *= chain_length(0.2, 100, 64) as f64 / k as f64;
    }

    let cores = 36.0;
    let rows = [5_000u64, 20_000, 50_000, 80_000, 100_000]
        .iter()
        .map(|&m| Fig7Row {
            malicious_users: m,
            latency_secs: per_user * m as f64 / cores,
        })
        .collect();
    (per_user, rows)
}

/// One row of Figure 8.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Server churn rate.
    pub churn: f64,
    /// Conversation failure rate per topology size (100, 500, 1000).
    pub failure_by_n: Vec<(usize, f64)>,
}

/// Figure 8: conversation failure rate vs. server churn.
pub fn fig8(quick: bool) -> Vec<Fig8Row> {
    let mut rng = StdRng::seed_from_u64(8);
    let sizes: &[usize] = if quick { &[100] } else { &[100, 500, 1000] };
    let trials = if quick { 10 } else { 60 };
    let topos: Vec<(usize, Topology)> = sizes
        .iter()
        .map(|&n| {
            let k = chain_length(0.2, n, 64);
            (
                n,
                Topology::build_with(&Beacon::from_u64(88), 0, n, n, k, 0.2),
            )
        })
        .collect();
    [0.0f64, 0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04]
        .iter()
        .map(|&churn| Fig8Row {
            churn,
            failure_by_n: topos
                .iter()
                .map(|(n, topo)| {
                    let r = simulate_churn(&mut rng, topo, churn, trials);
                    (*n, r.conversation_failure_rate)
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> OpCosts {
        // The baseline models are calibrated for measured-class
        // exponentiation costs (~50-60 us on both our machines and the
        // paper's Xeons); shape tests use the same class rather than the
        // conservative nominal placeholder.
        let mut op = OpCosts::nominal();
        op.exp = xrd_sim::SimDuration::from_micros(55);
        op
    }

    #[test]
    fn fig2_shapes() {
        let rows = fig2(&op());
        assert_eq!(rows.len(), FIG23_SERVERS.len());
        // XRD grows with N; Pung-XPIR dwarfs XRD everywhere; SealPIR is
        // the same order as XRD.
        assert!(rows.last().unwrap().xrd > rows[0].xrd);
        for r in &rows {
            assert!(r.pung_xpir_1m > 10 * r.xrd, "Pung must dwarf XRD");
            assert!(r.pung_xpir_4m > r.pung_xpir_1m);
            assert!(r.stadium < 2048);
        }
    }

    #[test]
    fn fig4_shapes() {
        let rows = fig4(&op());
        // XRD linear-ish in M; Atom slowest; Stadium fastest; Pung
        // superlinear.
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        assert!(last.xrd > 6.0 * first.xrd && last.xrd < 12.0 * first.xrd);
        for r in &rows {
            assert!(r.atom > r.xrd_normalized, "Atom beats XRD at {}M?", r.x);
            assert!(
                r.stadium < r.xrd_normalized * 1.2,
                "Stadium should be fastest (x={})",
                r.x
            );
        }
        // Pung superlinearity: ratio of growth beats linear.
        let pung_growth = last.pung / first.pung;
        let linear_growth = last.x / first.x;
        assert!(pung_growth > 1.5 * linear_growth);
        // Normalization anchors 1M at ~128 s.
        assert!((rows[0].xrd_normalized - PAPER_ANCHOR_SECS).abs() < 1.0);
    }

    #[test]
    fn fig6_chain_length_growth() {
        let rows = fig6(&op());
        // k grows with f; latency follows.
        for pair in rows.windows(2) {
            assert!(pair[1].chain_len >= pair[0].chain_len);
            assert!(pair[1].xrd >= pair[0].xrd * 0.9);
        }
        // k at f=0.2 must be the paper's ~31-32.
        let f02 = rows.iter().find(|r| (r.f - 0.2).abs() < 1e-9).unwrap();
        assert!((30..=33).contains(&f02.chain_len));
    }

    #[test]
    fn fig7_measures_and_scales() {
        let (per_user, rows) = fig7(true);
        assert!(per_user > 0.0);
        // Linear growth in malicious users.
        assert!((rows[4].latency_secs / rows[0].latency_secs - 20.0).abs() < 0.1);
    }

    #[test]
    fn fig8_increases_with_churn() {
        let rows = fig8(true);
        assert_eq!(rows[0].failure_by_n[0].1, 0.0); // zero churn
        let at_1pct = rows
            .iter()
            .find(|r| (r.churn - 0.01).abs() < 1e-9)
            .unwrap()
            .failure_by_n[0]
            .1;
        // Paper: ~27% at 1% churn (k≈31-32).
        assert!((0.15..0.40).contains(&at_1pct), "got {at_1pct}");
        let at_4pct = rows.last().unwrap().failure_by_n[0].1;
        assert!(at_4pct > 0.55, "got {at_4pct}");
    }
}
