//! Table rendering for the figure binaries: each figure prints our
//! measured/modeled series next to the values the paper reports, so the
//! shape comparison is immediate.

use crate::figures::{Fig2Row, Fig3Row, Fig6Row, Fig7Row, Fig8Row, LatencyRow};

fn kb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1000.0)
}

/// Paper-reported XRD latencies for Figure 4 (users in millions →
/// seconds); entries absent from the paper are `None`.
pub fn paper_fig4_xrd(millions: f64) -> Option<f64> {
    match millions as u64 {
        1 => Some(128.0),
        2 => Some(251.0),
        4 => Some(508.0),
        6 => Some(793.0),
        8 => Some(1009.0),
        _ => None,
    }
}

/// Paper-reported baselines at 100 servers for Figure 4.
pub fn paper_fig4_baselines(millions: f64) -> (Option<f64>, Option<f64>, Option<f64>) {
    // (atom, pung, stadium)
    match millions as u64 {
        1 => (Some(1532.0), Some(272.0), Some(64.0)),
        2 => (None, Some(927.0), Some(138.0)),
        _ => (None, None, None),
    }
}

/// Paper's Figure 5 follows latency ∝ √(2/N) anchored at 251 s / 100
/// servers (§8.2 "the latency of XRD reduces as √(2/N)").
pub fn paper_fig5_xrd(n_servers: f64) -> f64 {
    251.0 * (100.0 / n_servers).sqrt()
}

fn opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:8.1}"))
        .unwrap_or_else(|| format!("{:>8}", "-"))
}

/// Figure 2 table.
pub fn fig2_table(rows: &[Fig2Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 2: user bandwidth per round (KB) vs number of servers\n\
         paper reference: XRD ~54 KB @100, ~238 KB @2000; Pung-XPIR 5800 KB @1M users,\n\
         11000 KB @4M; Pung-SealPIR comparable to XRD; Stadium/Atom < 1 KB\n\n",
    );
    out.push_str(&format!(
        "{:>8} {:>10} {:>14} {:>14} {:>14} {:>10}\n",
        "N", "XRD", "Pung-XPIR-1M", "Pung-XPIR-4M", "Pung-SealPIR", "Stadium"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>10} {:>14} {:>14} {:>14} {:>10}\n",
            r.n_servers,
            kb(r.xrd),
            kb(r.pung_xpir_1m),
            kb(r.pung_xpir_4m),
            kb(r.pung_sealpir),
            kb(r.stadium),
        ));
    }
    out
}

/// Figure 3 table.
pub fn fig3_table(rows: &[Fig3Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 3: single-core user computation per round (seconds) vs servers\n\
         paper reference: XRD < 0.5 s below 2000 servers (grows ~sqrt(N));\n\
         Pung-XPIR highest and flat; Stadium/Atom negligible\n\n",
    );
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>10} {:>13} {:>9} {:>9}\n",
        "N", "XRD(meas)", "XRD(model)", "PungXPIR", "PungSealPIR", "Stadium", "Atom"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>12.3} {:>12.3} {:>10.3} {:>13.3} {:>9.4} {:>9.4}\n",
            r.n_servers,
            r.xrd_measured,
            r.xrd_model,
            r.pung_xpir,
            r.pung_sealpir,
            r.stadium,
            r.atom,
        ));
    }
    out
}

/// Figure 4 table.
pub fn fig4_table(rows: &[LatencyRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 4: end-to-end latency (s) vs users (millions), 100 servers, f=0.2\n\
         'XRD(norm)' anchors our 1M/100-server point to the paper's 128 s so shapes\n\
         compare; 'paper' columns are the published values\n\n",
    );
    out.push_str(&format!(
        "{:>4} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "M", "XRD", "XRD(norm)", "paperXRD", "Atom", "paperAtom", "Pung", "paperPung", "Stadium"
    ));
    for r in rows {
        let (pa, pp, _ps) = paper_fig4_baselines(r.x);
        out.push_str(&format!(
            "{:>4} {:>9.1} {:>9.1} {} {:>9.1} {} {:>9.1} {} {:>9.1}\n",
            r.x,
            r.xrd,
            r.xrd_normalized,
            opt(paper_fig4_xrd(r.x)),
            r.atom,
            opt(pa),
            r.pung,
            opt(pp),
            r.stadium,
        ));
    }
    out
}

/// Figure 5 table.
pub fn fig5_table(rows: &[LatencyRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 5: end-to-end latency (s) vs number of servers, 2M users, f=0.2\n\
         paper: XRD scales as sqrt(2/N) anchored at 251 s / 100 servers;\n\
         Atom and Pung shown on a different scale in the paper (2000-6000 s range)\n\n",
    );
    out.push_str(&format!(
        "{:>5} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9}\n",
        "N", "XRD", "XRD(norm)", "paperXRD", "Atom", "Pung", "Stadium"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>9.1} {:>10.1} {:>10.1} {:>9.1} {:>9.1} {:>9.1}\n",
            r.x,
            r.xrd,
            r.xrd_normalized,
            paper_fig5_xrd(r.x),
            r.atom,
            r.pung,
            r.stadium,
        ));
    }
    out
}

/// The §8.2 extrapolation table (beyond the paper's 200-server testbed).
pub fn fig5_extrapolation_table(rows: &[LatencyRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 5 extrapolation: beyond the testbed (2M users)\n\
         paper (§8.2 text): XRD ~84 s at 1000 servers; Atom catches up at ~3000\n\
         servers, Pung at ~1000; Stadium ~8 s at 1000 servers\n\n",
    );
    out.push_str(&format!(
        "{:>5} {:>9} {:>10} {:>9} {:>9} {:>9}\n",
        "N", "XRD", "XRD(norm)", "Atom", "Pung", "Stadium"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>9.1} {:>10.1} {:>9.1} {:>9.1} {:>9.1}\n",
            r.x, r.xrd, r.xrd_normalized, r.atom, r.pung, r.stadium,
        ));
    }
    out
}

/// Figure 6 table.
pub fn fig6_table(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 6: latency (s) vs malicious fraction f, 2M users, 100 servers\n\
         paper: latency grows with k(f) ~ -1/log(f); ~251 s at f=0.2, rising to\n\
         ~430 s at f=0.4\n\n",
    );
    out.push_str(&format!(
        "{:>6} {:>6} {:>9} {:>10}\n",
        "f", "k(f)", "XRD", "XRD(norm)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>6.2} {:>6} {:>9.1} {:>10.1}\n",
            r.f, r.chain_len, r.xrd, r.xrd_normalized
        ));
    }
    out
}

/// Figure 7 table.
pub fn fig7_table(per_user_secs: f64, rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 7: worst-case blame latency vs malicious users in one chain (f=0.2)\n\
         paper: ~13 s at 5k users, ~150 s at 100k (linear)\n\
         measured per-malicious-user blame cost on this machine: {:.4} s (single core)\n\n",
        per_user_secs
    ));
    out.push_str(&format!(
        "{:>10} {:>12} {:>12}\n",
        "bad users", "ours (s)", "paper (s)"
    ));
    for r in rows {
        let paper = 13.0 * r.malicious_users as f64 / 5000.0;
        out.push_str(&format!(
            "{:>10} {:>12.1} {:>12.1}\n",
            r.malicious_users, r.latency_secs, paper
        ));
    }
    out
}

/// Figure 8 table.
pub fn fig8_table(rows: &[Fig8Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 8: conversation failure rate vs server churn rate\n\
         paper: ~27% at 1% churn (100 servers), ~70% at 4%; higher N -> slightly\n\
         higher failure (longer chains)\n\n",
    );
    let sizes: Vec<usize> = rows
        .first()
        .map(|r| r.failure_by_n.iter().map(|(n, _)| *n).collect())
        .unwrap_or_default();
    out.push_str(&format!("{:>7}", "churn"));
    for n in &sizes {
        out.push_str(&format!(" {:>9}", format!("N={n}")));
    }
    out.push_str(&format!(" {:>9}\n", "analytic"));
    for r in rows {
        out.push_str(&format!("{:>7.3}", r.churn));
        for (_, rate) in &r.failure_by_n {
            out.push_str(&format!(" {:>9.3}", rate));
        }
        let analytic = xrd_core::churn::analytic_failure_rate(r.churn, 32);
        out.push_str(&format!(" {:>9.3}\n", analytic));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_helpers() {
        assert_eq!(paper_fig4_xrd(2.0), Some(251.0));
        assert_eq!(paper_fig4_xrd(3.0), None);
        assert!((paper_fig5_xrd(100.0) - 251.0).abs() < 1e-9);
        assert!(paper_fig5_xrd(200.0) < 200.0);
    }

    #[test]
    fn tables_render() {
        let rows = vec![Fig7Row {
            malicious_users: 5000,
            latency_secs: 12.0,
        }];
        let t = fig7_table(0.09, &rows);
        assert!(t.contains("5000"));
        assert!(t.contains("12.0"));
    }
}
