//! Calibration: measure per-operation costs of the *real* crypto
//! implementation on the current machine.
//!
//! These measured costs are what the figure models are priced with —
//! the substitution for the paper's EC2 CPUs (see DESIGN.md).  Every
//! figure binary calibrates first and prints the measured table, so
//! results are self-describing.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_crypto::nizk::{DleqProof, SchnorrProof};
use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;
use xrd_crypto::{adec, aenc, round_nonce};
use xrd_mixnet::MAILBOX_MSG_LEN;
use xrd_sim::{OpCosts, SimDuration};

fn time_per_iter<F: FnMut()>(iters: u32, mut f: F) -> SimDuration {
    // Warm up once.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    SimDuration::from_nanos((elapsed.as_nanos() / iters as u128) as u64)
}

/// Measure [`OpCosts`] on this machine.  `quick` trades precision for
/// speed (used in tests); figure binaries use `quick = false`.
pub fn calibrate(quick: bool) -> OpCosts {
    let iters: u32 = if quick { 8 } else { 64 };
    let mut rng = StdRng::seed_from_u64(0xca11b8a7e);

    let point = GroupElement::random(&mut rng);
    let scalar = Scalar::random(&mut rng);
    let mut sink = GroupElement::identity();

    let exp = time_per_iter(iters, || {
        sink = point.mul(&scalar);
    });

    let other = GroupElement::random(&mut rng);
    let group_add = time_per_iter(iters * 64, || {
        sink = sink.add(&other);
    });

    let key = [7u8; 32];
    let nonce = round_nonce(1, 0);
    let payload = vec![0u8; MAILBOX_MSG_LEN];
    let mut ct = Vec::new();
    let aead = time_per_iter(iters * 8, || {
        ct = aenc(&key, &nonce, b"", &payload);
        let _ = adec(&key, &nonce, b"", &ct);
    });

    let g = GroupElement::generator();
    let x = Scalar::random(&mut rng);
    let gx = GroupElement::base_mul(&x);
    let mut schnorr = None;
    let schnorr_prove = time_per_iter(iters, || {
        schnorr = Some(SchnorrProof::prove(&mut rng, b"cal", &g, &gx, &x));
    });
    let schnorr_proof = schnorr.expect("proved at least once");
    let schnorr_verify = time_per_iter(iters, || {
        assert!(schnorr_proof.verify(b"cal", &g, &gx));
    });

    let b2 = GroupElement::random(&mut rng);
    let p2 = b2.mul(&x);
    let mut dleq = None;
    let dleq_prove = time_per_iter(iters, || {
        dleq = Some(DleqProof::prove(&mut rng, b"cal", &g, &gx, &b2, &p2, &x));
    });
    let dleq_proof = dleq.expect("proved at least once");
    let dleq_verify = time_per_iter(iters, || {
        assert!(dleq_proof.verify(b"cal", &g, &gx, &b2, &p2));
    });

    OpCosts {
        exp,
        group_add,
        aead,
        schnorr_prove,
        schnorr_verify,
        dleq_prove,
        dleq_verify,
    }
}

/// Render the calibration table (printed at the top of every figure).
pub fn format_op_costs(op: &OpCosts) -> String {
    format!(
        "calibrated op costs on this machine:\n\
         \x20 exponentiation      {}\n\
         \x20 group addition      {}\n\
         \x20 AEAD (seal+open)    {}\n\
         \x20 Schnorr prove       {}\n\
         \x20 Schnorr verify      {}\n\
         \x20 DLEQ prove          {}\n\
         \x20 DLEQ verify         {}",
        op.exp,
        op.group_add,
        op.aead,
        op.schnorr_prove,
        op.schnorr_verify,
        op.dleq_prove,
        op.dleq_verify,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_sane_costs() {
        let op = calibrate(true);
        // An exponentiation must cost at least a microsecond and at most
        // ~100 ms on any machine this runs on.
        assert!(op.exp >= SimDuration::from_micros(1), "exp = {}", op.exp);
        assert!(op.exp <= SimDuration::from_millis(100));
        // Group addition is far cheaper than exponentiation.
        assert!(op.group_add.0 * 10 < op.exp.0);
        // DLEQ costs about twice Schnorr (allow generous noise: the
        // quick calibration uses few iterations).
        assert!(op.dleq_prove.0 * 2 >= op.schnorr_prove.0);
        assert!(op.dleq_verify.0 * 2 >= op.schnorr_verify.0);
        // Formatting works.
        let s = format_op_costs(&op);
        assert!(s.contains("exponentiation"));
    }
}
