//! # xrd-bench
//!
//! The benchmark harness that regenerates **every figure** of the XRD
//! paper's evaluation (§8, Figures 2-8):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig2` | user bandwidth vs. #servers |
//! | `fig3` | user computation vs. #servers |
//! | `fig4` | end-to-end latency vs. #users (100 servers) |
//! | `fig5` | latency vs. #servers (2M users) |
//! | `fig6` | latency vs. malicious fraction f |
//! | `fig7` | blame-protocol latency vs. #malicious users |
//! | `fig8` | conversation failure rate vs. server churn |
//! | `all_figures` | everything above, in EXPERIMENTS.md layout |
//!
//! Each binary first runs [`calibrate::calibrate`] to measure the real
//! per-operation costs of this repository's crypto on the current
//! machine, prints the calibration table, then produces the figure's
//! series next to the paper's reported values.  Criterion
//! micro/macro-benchmarks live in `benches/`.

#![warn(missing_docs)]

pub mod calibrate;
pub mod figures;
pub mod report;

pub use calibrate::{calibrate, format_op_costs};
