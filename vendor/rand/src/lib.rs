//! In-repo, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of `rand` 0.8 it actually uses: [`RngCore`], [`Rng`],
//! [`SeedableRng`], [`CryptoRng`], [`rngs::StdRng`], [`rngs::OsRng`] and
//! [`seq::SliceRandom`].  Semantics match the upstream contracts (uniform
//! ranges via rejection sampling, Fisher–Yates shuffling); the concrete
//! `StdRng` stream is xoshiro256++ seeded with splitmix64, so seeded
//! sequences differ from upstream `rand` but are deterministic and of
//! high statistical quality, which is all the repo relies on.

use std::fmt;

/// Error type for fallible RNG operations (always succeeds in this shim).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer and byte output.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker trait for cryptographically secure generators.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with splitmix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

mod uniform {
    /// Types a `Range`/`RangeInclusive` over which can be sampled
    /// uniformly.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Sample uniformly from `[low, high]` (inclusive bounds).
        fn sample_inclusive<R: super::RngCore + ?Sized>(rng: &mut R, low: Self, high: Self)
            -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_inclusive<R: super::RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                ) -> Self {
                    debug_assert!(low <= high);
                    let span = (high as u64).wrapping_sub(low as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = span + 1;
                    // Rejection sampling on the top zone to avoid modulo bias.
                    let zone = u64::MAX - (u64::MAX % span);
                    loop {
                        let v = rng.next_u64();
                        if v < zone {
                            return low.wrapping_add((v % span) as $t);
                        }
                    }
                }
            }
        )*};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize);

    macro_rules! impl_uniform_signed {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_inclusive<R: super::RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                ) -> Self {
                    debug_assert!(low <= high);
                    let span = (high as i64).wrapping_sub(low as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = span + 1;
                    let zone = u64::MAX - (u64::MAX % span);
                    loop {
                        let v = rng.next_u64();
                        if v < zone {
                            return (low as i64).wrapping_add((v % span) as i64) as $t;
                        }
                    }
                }
            }
        )*};
    }
    impl_uniform_signed!(i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_inclusive<R: super::RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
        ) -> Self {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            low + unit * (high - low)
        }
    }

    impl SampleUniform for f32 {
        fn sample_inclusive<R: super::RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
        ) -> Self {
            let unit = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
            low + unit * (high - low)
        }
    }

    /// A range that can be turned into uniform samples.
    pub trait SampleRange<T> {
        /// Draw one sample.
        fn sample_single<R: super::RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: super::RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            // Exclusive upper bound: find the largest value below `end`.
            // For floats the closed formula below never returns `end`
            // except for degenerate spans, which the assert excludes.
            sample_exclusive(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: super::RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_inclusive(rng, low, high)
        }
    }

    fn sample_exclusive<T: SampleUniform, R: super::RngCore + ?Sized>(
        rng: &mut R,
        low: T,
        high: T,
    ) -> T {
        // Drawing from [low, high) via repeated inclusive draws; for
        // integer types `high` maps back into range with probability
        // 1/span so the loop terminates immediately in practice, and for
        // floats a draw equal to `high` has measure zero.
        loop {
            let v = T::sample_inclusive(rng, low, high);
            if v < high {
                return v;
            }
        }
    }
}

pub use uniform::{SampleRange, SampleUniform};

/// Convenience extensions over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// The workspace's standard seedable PRNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
        /// Buffered output bytes for `fill_bytes`.
        buf: u64,
        buf_len: usize,
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_raw() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // Discard any partially consumed byte buffer so u64 draws are
            // whole outputs (keeps draws independent of interleaving).
            self.buf_len = 0;
            self.next_raw()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for byte in dest.iter_mut() {
                if self.buf_len == 0 {
                    self.buf = self.next_raw();
                    self.buf_len = 8;
                }
                *byte = (self.buf & 0xff) as u8;
                self.buf >>= 8;
                self.buf_len -= 1;
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6a09_e667_f3bc_c909,
                    0xbb67_ae85_84ca_a73b,
                    0x3c6e_f372_fe94_f82b,
                ];
            }
            StdRng {
                s,
                buf: 0,
                buf_len: 0,
            }
        }
    }

    impl super::CryptoRng for StdRng {}

    /// Randomness from the operating system (`/dev/urandom`).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OsRng;

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            let mut b = [0u8; 4];
            self.fill_bytes(&mut b);
            u32::from_le_bytes(b)
        }

        fn next_u64(&mut self) -> u64 {
            let mut b = [0u8; 8];
            self.fill_bytes(&mut b);
            u64::from_le_bytes(b)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            use std::io::Read;
            let mut f = std::fs::File::open("/dev/urandom").expect("open /dev/urandom");
            f.read_exact(dest).expect("read /dev/urandom");
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl super::CryptoRng for OsRng {}
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element (None if empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_matches_byte_at_a_time() {
        let mut a = StdRng::seed_from_u64(4);
        let mut b = StdRng::seed_from_u64(4);
        let mut big = [0u8; 37];
        a.fill_bytes(&mut big);
        let mut small = [0u8; 37];
        for byte in small.iter_mut() {
            let mut one = [0u8; 1];
            b.fill_bytes(&mut one);
            *byte = one[0];
        }
        assert_eq!(big, small);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn os_rng_produces_entropy() {
        let mut rng = super::rngs::OsRng;
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != b || a != 0, "astronomically unlikely");
    }

    #[test]
    fn dyn_rng_core_is_object_safe() {
        let mut rng = StdRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _ = dyn_rng.next_u64();
        let v: usize = dyn_rng.gen_range(0..10);
        assert!(v < 10);
    }
}
