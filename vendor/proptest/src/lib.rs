//! In-repo, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro, [`Strategy`]
//! with `prop_map`/`prop_flat_map`, [`any`], `prop::collection::vec`,
//! `prop::array::uniform32`, `prop::sample::Index`, [`Just`], the
//! `prop_assert*`/`prop_assume!` macros and [`ProptestConfig`].
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! case number and the deterministic per-case seed, which is enough to
//! reproduce (cases are derived from the test name, so runs are stable).

use std::fmt;

/// Test-runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected (prop_assume) cases before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw new ones.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG strategies draw from (splitmix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; each test case gets its own stream.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Map produced values to a new strategy and draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderately sized values are what the tests want.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start(), self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (*hi as u64) - (*lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Size specification for collection strategies.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { min: n, max: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    min: *r.start(),
                    max: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with random length.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// A vector of values drawn from `elem`, with length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min) as u64;
                let len = self.size.min + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::{Strategy, TestRng};

        /// Strategy for `[S::Value; N]`.
        pub struct UniformArray<S, const N: usize> {
            elem: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
                std::array::from_fn(|_| self.elem.sample(rng))
            }
        }

        macro_rules! uniform_fns {
            ($($name:ident => $n:literal),*) => {$(
                /// An array of values drawn independently from `elem`.
                pub fn $name<S: Strategy>(elem: S) -> UniformArray<S, $n> {
                    UniformArray { elem }
                }
            )*};
        }
        uniform_fns!(uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform24 => 24, uniform32 => 32);
    }

    /// Sampling helpers.
    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An index into a collection whose size is only known at use
        /// time (`Index::index(len)` maps it uniformly into `0..len`).
        #[derive(Clone, Copy, Debug)]
        pub struct Index(u64);

        impl Index {
            /// Map into `0..len`; panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }
    }
}

/// The deterministic per-(test, case) seed, so failures are reproducible.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Drives the cases for one generated test.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u32;
    while passed < config.cases {
        let seed = case_seed(test_name, attempt);
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many prop_assume rejections \
                         ({rejected}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed on case {attempt} \
                     (seed {seed:#x}): {msg}"
                );
            }
        }
        attempt += 1;
    }
}

/// Assert inside a proptest body (returns a test-case failure, which the
/// runner reports with the reproducing seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Reject the current case's inputs (draw fresh ones).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// The proptest entry macro: declares `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal item expansion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), &config, |__proptest_rng| {
                $(
                    let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);
                )*
                let mut __proptest_body = || -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                __proptest_body()
            });
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Everything a proptest file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 0u64..=5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 5);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn arrays_and_maps_compose(
            bytes in prop::array::uniform32(any::<u8>()),
            doubled in (1u32..100).prop_map(|x| x * 2),
        ) {
            prop_assert_eq!(bytes.len(), 32);
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled >= 2);
        }

        #[test]
        fn index_maps_into_range(i in any::<prop::sample::Index>(), len in 1usize..40) {
            prop_assert!(i.index(len) < len);
        }

        #[test]
        fn assume_filters(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn flat_map_chains(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(any::<u8>(), n..n + 1))) {
            prop_assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_seed() {
        crate::run_cases(
            "always_fails",
            &crate::ProptestConfig::with_cases(1),
            |_rng| Err(crate::TestCaseError::Fail("nope".into())),
        );
    }
}
