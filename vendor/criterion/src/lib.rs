//! In-repo, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of criterion its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`] with `iter`/`iter_batched`,
//! [`BenchmarkId`], [`Throughput`], [`BatchSize`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It is a real (if simple) harness: each benchmark is warmed up, then
//! timed over enough iterations to fill a small measurement window, and
//! a mean per-iteration time (plus throughput, when set) is printed.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (ignored by this shim beyond
/// running setup once per measured iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declared work-per-iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Bare parameter id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    measured: &'a mut Option<Measurement>,
    sample_size: usize,
}

/// One benchmark's timing result.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Iterations measured.
    pub iters: u64,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: run until ~20ms elapsed to pick a count.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(20) && calib_iters < 1_000_000 {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed() / calib_iters.max(1) as u32;
        // Measurement window scaled by sample size (default 100ms).
        let window = Duration::from_millis(self.sample_size as u64);
        let iters = (window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        *self.measured = Some(Measurement {
            mean: elapsed / iters as u32,
            iters,
        });
    }

    /// Time `routine` with per-iteration setup excluded from the timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One calibration run.
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let per_iter = t0.elapsed();
        let window = Duration::from_millis(self.sample_size as u64);
        let iters = (window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        *self.measured = Some(Measurement {
            mean: total / iters as u32,
            iters,
        });
    }
}

fn report(id: &str, measurement: &Option<Measurement>, throughput: &Option<Throughput>) {
    match measurement {
        Some(m) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    let per_sec = *n as f64 / m.mean.as_secs_f64();
                    format!("  [{per_sec:.0} elem/s]")
                }
                Some(Throughput::Bytes(n)) => {
                    let per_sec = *n as f64 / m.mean.as_secs_f64() / 1e6;
                    format!("  [{per_sec:.1} MB/s]")
                }
                None => String::new(),
            };
            println!(
                "bench {id:<48} {:>12.3?} /iter ({} iters){rate}",
                m.mean, m.iters
            );
        }
        None => println!("bench {id:<48} (no measurement)"),
    }
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut measured = None;
        let mut b = Bencher {
            measured: &mut measured,
            sample_size: 100,
        };
        f(&mut b);
        report(id, &measured, &None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 100,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the declared per-iteration throughput for following benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the sample size (scales the measurement window here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut measured = None;
        let mut b = Bencher {
            measured: &mut measured,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            &measured,
            &self.throughput,
        );
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut measured = None;
        let mut b = Bencher {
            measured: &mut measured,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &measured,
            &self.throughput,
        );
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::new("f", 4), |b| {
            b.iter(|| black_box(2u64.pow(black_box(10))))
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
