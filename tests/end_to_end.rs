//! Integration tests: the complete XRD system across crates — real
//! crypto, real AHS mixing with verification, real mailboxes — at test
//! scale.

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd::core::{Deployment, DeploymentConfig, Received, User};

fn setup(seed: u64, n_servers: usize, k: usize, n_users: usize) -> (StdRng, Deployment, Vec<User>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let deployment = Deployment::new(&mut rng, DeploymentConfig::small(n_servers, k));
    let users: Vec<User> = (0..n_users).map(|_| User::new(&mut rng)).collect();
    (rng, deployment, users)
}

#[test]
fn many_simultaneous_conversations() {
    let (mut rng, mut deployment, mut users) = setup(1, 10, 2, 12);
    let ell = deployment.topology().ell();

    // Pair everyone up: 6 conversations.
    for i in (0..12).step_by(2) {
        let (a, b) = (users[i].pk(), users[i + 1].pk());
        users[i].start_conversation(b);
        users[i + 1].start_conversation(a);
        users[i].queue_chat(format!("msg from {i}").into_bytes());
        users[i + 1].queue_chat(format!("msg from {}", i + 1).into_bytes());
    }

    let (report, fetched) = deployment.run_round(&mut rng, &mut users);
    assert_eq!(report.messages_mixed, 12 * ell);
    assert_eq!(report.delivered, 12 * ell);
    assert!(report.aborted_chains.is_empty());

    for i in 0..12 {
        let received = &fetched[&users[i].mailbox_id()];
        assert_eq!(received.len(), ell, "user {i} mailbox count");
        let partner = if i % 2 == 0 { i + 1 } else { i - 1 };
        let expect = Received::Chat {
            from: users[partner].mailbox_id(),
            data: format!("msg from {partner}").into_bytes(),
        };
        assert!(received.contains(&expect), "user {i} missing partner chat");
    }
}

#[test]
fn multi_round_stability() {
    // Ten consecutive rounds with rotating conversations; counts stay
    // uniform every round.
    let (mut rng, mut deployment, mut users) = setup(2, 6, 2, 6);
    let ell = deployment.topology().ell();

    // Three disjoint pairings cycled across rounds (partners must be
    // mutual — the paper's out-of-band agreement).
    let pairings: [[(usize, usize); 3]; 3] = [
        [(0, 1), (2, 3), (4, 5)],
        [(0, 2), (1, 4), (3, 5)],
        [(0, 3), (1, 5), (2, 4)],
    ];
    for round in 0..10u64 {
        // Every third round, change who talks to whom.
        if round % 3 == 0 {
            for u in users.iter_mut() {
                u.end_conversation();
            }
            let pks: Vec<_> = users.iter().map(|u| u.pk()).collect();
            for &(i, j) in &pairings[(round as usize / 3) % 3] {
                users[i].start_conversation(pks[j]);
                users[j].start_conversation(pks[i]);
            }
        }
        let (report, fetched) = deployment.run_round(&mut rng, &mut users);
        assert_eq!(report.round, round);
        for user in &users {
            assert_eq!(
                fetched[&user.mailbox_id()].len(),
                ell,
                "round {round} uniformity"
            );
        }
    }
}

#[test]
fn mailbox_counts_leak_nothing() {
    // The adversary's view: per-mailbox counts must be identical whether
    // or not a user converses.  Run two deployments from the same seed,
    // one with a conversation and one without, and compare counts.
    let run = |conversing: bool| -> Vec<usize> {
        let (mut rng, mut deployment, mut users) = setup(3, 6, 2, 4);
        if conversing {
            let (a, b) = (users[0].pk(), users[1].pk());
            users[0].start_conversation(b);
            users[1].start_conversation(a);
        }
        let (_, fetched) = deployment.run_round(&mut rng, &mut users);
        users
            .iter()
            .map(|u| fetched[&u.mailbox_id()].len())
            .collect()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn users_meet_on_expected_chain_end_to_end() {
    let (mut rng, mut deployment, mut users) = setup(4, 8, 2, 2);
    let (a_pk, b_pk) = (users[0].pk(), users[1].pk());
    users[0].start_conversation(b_pk);
    users[1].start_conversation(a_pk);
    users[0].queue_chat(b"x".to_vec());

    // The meeting chain is publicly computable.
    let meeting = deployment
        .topology()
        .meeting_chain_of_users(&users[0].mailbox_id(), &users[1].mailbox_id());
    let chains_a = deployment
        .topology()
        .chains_of_user(&users[0].mailbox_id())
        .to_vec();
    assert!(chains_a.contains(&meeting));

    let (_, fetched) = deployment.run_round(&mut rng, &mut users);
    assert!(fetched[&users[1].mailbox_id()]
        .iter()
        .any(|r| matches!(r, Received::Chat { .. })));
}

#[test]
fn offline_from_start_then_returning() {
    let (mut rng, mut deployment, mut users) = setup(5, 6, 2, 3);
    let ell = deployment.topology().ell();

    users[2].online = false;
    let (report, _) = deployment.run_round(&mut rng, &mut users);
    assert_eq!(report.messages_mixed, 2 * ell); // no cover for user 2 yet

    users[2].online = true;
    let (report, fetched) = deployment.run_round(&mut rng, &mut users);
    assert_eq!(report.messages_mixed, 3 * ell);
    assert_eq!(fetched[&users[2].mailbox_id()].len(), ell);
}

#[test]
fn deployment_with_paper_scale_chain_length() {
    // One small round at the paper's actual chain length (k = 30 for
    // n = 35, f = 0.2): exercises deep onions end to end.
    let mut rng = StdRng::seed_from_u64(6);
    let k = xrd::topology::chain_length(0.2, 35, 64);
    assert!((28..=33).contains(&k), "k = {k}");
    let mut deployment = Deployment::new(
        &mut rng,
        DeploymentConfig {
            n_servers: 35,
            chain_len: Some(k),
            f: 0.2,
            n_mailbox_shards: 2,
            seed: 0,
        },
    );
    let mut users: Vec<User> = (0..2).map(|_| User::new(&mut rng)).collect();
    let (a, b) = (users[0].pk(), users[1].pk());
    users[0].start_conversation(b);
    users[1].start_conversation(a);
    users[0].queue_chat(b"deep onion".to_vec());

    let (report, fetched) = deployment.run_round(&mut rng, &mut users);
    assert_eq!(report.delivered, 2 * deployment.topology().ell());
    assert!(fetched[&users[1].mailbox_id()].contains(&Received::Chat {
        from: users[0].mailbox_id(),
        data: b"deep onion".to_vec()
    }));
}
