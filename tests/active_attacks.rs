//! Integration tests of the active-attack story (§6 + Appendix A):
//! tampering servers and malicious users against the full chain
//! protocol, exercised across crate boundaries.

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd::crypto::ristretto::GroupElement;
use xrd::crypto::scalar::Scalar;
use xrd::mixnet::blame::BlameVerdict;
use xrd::mixnet::client::seal_ahs;
use xrd::mixnet::testutil::malicious_submission;
use xrd::mixnet::{run_blame, ChainRunner, MailboxMessage, MixError, Submission, PAYLOAD_LEN};

fn honest_submission(rng: &mut StdRng, chain: &ChainRunner, round: u64, tag: u8) -> Submission {
    let msg = MailboxMessage {
        mailbox: [tag; 32],
        sealed: vec![tag; PAYLOAD_LEN + 16],
    };
    seal_ahs(rng, chain.public(), round, &msg)
}

#[test]
fn malicious_users_at_every_layer_are_caught() {
    let mut rng = StdRng::seed_from_u64(1);
    let k = 5;
    for bad_layer in 0..k {
        let mut chain = ChainRunner::new(&mut rng, k, 0);
        let mut subs: Vec<Submission> = (0..6)
            .map(|i| honest_submission(&mut rng, &chain, 0, i))
            .collect();
        subs.insert(
            3,
            malicious_submission(&mut rng, chain.public(), 0, bad_layer),
        );
        let outcome = chain.run_round(&mut rng, 0, &subs);
        assert_eq!(
            outcome.malicious_users,
            vec![3],
            "bad layer {bad_layer}: wrong user removed"
        );
        assert_eq!(outcome.delivered.len(), 6, "honest messages must survive");
        assert!(outcome.misbehaving_servers.is_empty());
    }
}

#[test]
fn mixed_honest_and_multiple_attackers() {
    let mut rng = StdRng::seed_from_u64(2);
    let k = 3;
    let mut chain = ChainRunner::new(&mut rng, k, 1);
    let mut subs: Vec<Submission> = (0..10)
        .map(|i| honest_submission(&mut rng, &chain, 1, i))
        .collect();
    // Attackers at different depths and positions.
    subs[1] = malicious_submission(&mut rng, chain.public(), 1, 0);
    subs[5] = malicious_submission(&mut rng, chain.public(), 1, 1);
    subs[9] = malicious_submission(&mut rng, chain.public(), 1, 2);
    let outcome = chain.run_round(&mut rng, 1, &subs);
    let mut removed = outcome.malicious_users.clone();
    removed.sort();
    assert_eq!(removed, vec![1, 5, 9]);
    assert_eq!(outcome.delivered.len(), 7);
    // Three separate blame rounds (failures surface at distinct hops).
    assert_eq!(outcome.stats.blame_rounds, 3);
}

#[test]
fn tampering_server_detected_by_aggregate_proof() {
    // A server that swaps an entry outright breaks the product relation:
    // the other servers' verification fails immediately.
    let mut rng = StdRng::seed_from_u64(3);
    let round = 0;
    let (secrets, public) = xrd::mixnet::generate_chain_keys(&mut rng, 2, round);
    let subs: Vec<Submission> = (0..5)
        .map(|i| {
            let msg = MailboxMessage {
                mailbox: [i; 32],
                sealed: vec![i; PAYLOAD_LEN + 16],
            };
            seal_ahs(&mut rng, &public, round, &msg)
        })
        .collect();
    let entries: Vec<xrd::mixnet::MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
    let mut server0 = xrd::mixnet::MixServer::new(secrets[0].clone(), public.clone());
    let mut result = server0
        .process_round(&mut rng, round, entries.clone())
        .unwrap();
    // Replace one output with an entry of the adversary's own making.
    result.outputs[2] = xrd::mixnet::MixEntry {
        dh: GroupElement::base_mul(&Scalar::random(&mut rng)),
        ct: result.outputs[2].ct.clone(),
    };
    assert!(
        !xrd::mixnet::verify_hop(&public, 0, round, &entries, &result.outputs, &result.proof),
        "replacement must break the aggregate proof"
    );
}

#[test]
fn appendix_a_product_preserving_attack_is_pinned_by_blame() {
    // The subtle attack from Appendix A: multiply one key by delta and
    // another by delta^{-1}.  The aggregate still verifies, but the
    // affected ciphertexts fail downstream and blame identifies the
    // tampering server (not the innocent users).
    let mut rng = StdRng::seed_from_u64(4);
    let round = 2;
    let mut chain = ChainRunner::new(&mut rng, 3, round);
    let subs: Vec<Submission> = (0..6)
        .map(|i| honest_submission(&mut rng, &chain, round, i))
        .collect();

    let public = chain.public().clone();
    let servers = chain.servers_mut();
    let entries: Vec<xrd::mixnet::MixEntry> = subs.iter().map(|s| s.to_entry()).collect();

    let mut out0 = servers[0]
        .process_round(&mut rng, round, entries.clone())
        .unwrap();
    // Shift two keys by T and T^{-1}: the aggregate product is
    // unchanged, but both slots' keys are now wrong.
    let t = GroupElement::base_mul(&Scalar::random(&mut rng));
    out0.outputs[0].dh = out0.outputs[0].dh.add(&t);
    out0.outputs[4].dh = out0.outputs[4].dh.sub(&t);
    {
        let st = servers[0].state_mut().unwrap();
        st.output_dhs[0] = out0.outputs[0].dh;
        st.output_dhs[4] = out0.outputs[4].dh;
    }
    // The aggregate proof still verifies — the attack is invisible here.
    assert!(xrd::mixnet::verify_hop(
        &public,
        0,
        round,
        &entries,
        &out0.outputs,
        &out0.proof
    ));

    // But the next hop fails on exactly the tampered slots...
    match servers[1].process_round(&mut rng, round, out0.outputs) {
        Err(MixError::DecryptFailure(bad)) => {
            assert_eq!(bad, vec![0, 4]);
            // ...and blame pins the server, never a user.
            for idx in bad {
                let verdict = run_blame(&mut rng, &public, servers, &subs, round, 1, idx);
                assert_eq!(verdict, BlameVerdict::ServerMisbehaved { position: 0 });
            }
        }
        other => panic!("expected decrypt failure, got {other:?}"),
    }
}

#[test]
fn chain_halts_without_delivery_when_server_misbehaves() {
    // When blame identifies a server, the chain aborts: no messages are
    // delivered (the servers delete their inner keys, §6.4) and privacy
    // is preserved.
    let mut rng = StdRng::seed_from_u64(5);
    let round = 0;
    let mut chain = ChainRunner::new(&mut rng, 2, round);
    let subs: Vec<Submission> = (0..4)
        .map(|i| honest_submission(&mut rng, &chain, round, i))
        .collect();

    // Manually drive: server 0 processes then tampers a ciphertext
    // (consistently with its own records — a deliberate cheater).
    let tampered = {
        let servers = chain.servers_mut();
        let entries: Vec<xrd::mixnet::MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        let result = servers[0].process_round(&mut rng, round, entries).unwrap();
        // The cheater flips ciphertext bytes in what it forwards; its
        // retained state only records the blinded keys, which stay
        // consistent with the tampered batch.
        let mut outputs = result.outputs;
        outputs[1].ct[0] ^= 0xff;
        outputs
    };
    // Resume via the runner-level API on a fresh runner is not possible
    // (state is consumed); instead verify at the protocol level:
    let public = chain.public().clone();
    let servers = chain.servers_mut();
    match servers[1].process_round(&mut rng, round, tampered) {
        Err(MixError::DecryptFailure(bad)) => {
            let verdict = run_blame(&mut rng, &public, servers, &subs, round, 1, bad[0]);
            assert_eq!(verdict, BlameVerdict::ServerMisbehaved { position: 0 });
        }
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn forged_pok_rejected_at_submission() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut chain = ChainRunner::new(&mut rng, 2, 0);
    let mut subs: Vec<Submission> = (0..3)
        .map(|i| honest_submission(&mut rng, &chain, 0, i))
        .collect();
    // Replay attack: reuse another user's PoK with our own DH key.
    let pok = subs[0].pok;
    subs[1].pok = pok;
    let outcome = chain.run_round(&mut rng, 0, &subs);
    assert!(outcome.malicious_users.contains(&1));
    assert_eq!(outcome.stats.rejected_pok, 1);
}
