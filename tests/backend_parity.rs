//! The same round-protocol test suite, run against both backends via
//! the common `RoundBackend` trait: the in-process `Deployment` and the
//! networked `RemoteDeployment` must be indistinguishable to users.

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd::core::backend::RoundBackend;
use xrd::core::{Deployment, DeploymentConfig, Received, User};
use xrd_net::launch_local;

/// Drive any backend through the core protocol properties:
///
/// 1. an idle round is all loopbacks, exactly ℓ per user;
/// 2. a conversation round delivers exactly the queued plaintexts while
///    every mailbox still holds exactly ℓ messages;
/// 3. multi-round: queued chats arrive in order as inner keys rotate;
/// 4. churn: an offline user's stored covers are replayed and the
///    partner is notified (§5.3.3).
fn round_protocol_suite(backend: &mut dyn RoundBackend, rng: &mut StdRng) {
    let ell = backend.topology().ell();
    let mut users: Vec<User> = (0..6).map(|_| User::new(rng)).collect();

    // 1. Idle round.
    let (report, fetched) = backend.run_round(rng, &mut users).expect("round failed");
    assert_eq!(report.messages_mixed, 6 * ell);
    assert_eq!(report.delivered, 6 * ell);
    for user in &users {
        let got = &fetched[&user.mailbox_id()];
        assert_eq!(got.len(), ell);
        assert!(got.iter().all(|r| *r == Received::Loopback));
    }

    // 2. Conversation round.
    let (a, b) = (users[0].pk(), users[1].pk());
    users[0].start_conversation(b);
    users[1].start_conversation(a);
    users[0].queue_chat(b"first".to_vec());
    users[0].queue_chat(b"second".to_vec());
    users[1].queue_chat(b"reply".to_vec());

    let (_, fetched) = backend.run_round(rng, &mut users).expect("round failed");
    for user in &users {
        assert_eq!(fetched[&user.mailbox_id()].len(), ell, "uniformity");
    }
    assert!(fetched[&users[1].mailbox_id()].contains(&Received::Chat {
        from: users[0].mailbox_id(),
        data: b"first".to_vec(),
    }));
    assert!(fetched[&users[0].mailbox_id()].contains(&Received::Chat {
        from: users[1].mailbox_id(),
        data: b"reply".to_vec(),
    }));

    // 3. Second queued chat arrives next round.
    let (_, fetched) = backend.run_round(rng, &mut users).expect("round failed");
    assert!(fetched[&users[1].mailbox_id()].contains(&Received::Chat {
        from: users[0].mailbox_id(),
        data: b"second".to_vec(),
    }));

    // 4. Churn: user 0 vanishes; her covers are replayed, user 1 is
    // notified and ends the conversation.
    users[0].online = false;
    let (report, fetched) = backend.run_round(rng, &mut users).expect("round failed");
    assert_eq!(report.messages_mixed, 6 * ell, "covers stand in");
    let partner_view = &fetched[&users[1].mailbox_id()];
    assert_eq!(partner_view.len(), ell);
    assert!(partner_view.contains(&Received::PartnerOffline {
        partner: users[0].mailbox_id(),
    }));
    assert!(users[1].partner().is_none());

    assert_eq!(backend.round(), 4);
}

#[test]
fn in_process_backend_passes_protocol_suite() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut deployment = Deployment::new(&mut rng, DeploymentConfig::small(4, 3));
    round_protocol_suite(&mut deployment, &mut rng);
}

#[test]
fn networked_backend_passes_protocol_suite() {
    let mut rng = StdRng::seed_from_u64(11);
    let (mut cluster, mut deployment) =
        launch_local(&mut rng, &DeploymentConfig::small(4, 3)).expect("cluster launches");
    round_protocol_suite(&mut deployment, &mut rng);
    cluster.shutdown();
}

/// The two backends expose identical public round state for identical
/// configs: topology shape and key schedule move in lockstep.
#[test]
fn backends_agree_on_round_state() {
    let config = DeploymentConfig::small(4, 3);
    let mut rng_a = StdRng::seed_from_u64(5);
    let mut rng_b = StdRng::seed_from_u64(5);
    let mut local = Deployment::new(&mut rng_a, config.clone());
    let (mut cluster, mut remote) = launch_local(&mut rng_b, &config).expect("cluster launches");

    let (lt, rt) = (
        RoundBackend::topology(&local),
        RoundBackend::topology(&remote),
    );
    assert_eq!(lt.n_chains(), rt.n_chains());
    assert_eq!(lt.chain_len(), rt.chain_len());
    assert_eq!(lt.ell(), rt.ell());
    // Chain formation is beacon-driven, so the chains are identical.
    for c in 0..lt.n_chains() {
        assert_eq!(lt.chains[c].members, rt.chains[c].members, "chain {c}");
    }

    let mut users_a: Vec<User> = (0..3).map(|_| User::new(&mut rng_a)).collect();
    let mut users_b: Vec<User> = (0..3).map(|_| User::new(&mut rng_b)).collect();
    for round in 0..2u64 {
        assert_eq!(RoundBackend::round(&local), round);
        assert_eq!(RoundBackend::round(&remote), round);
        assert_eq!(
            RoundBackend::chain_keys(&local).len(),
            RoundBackend::chain_keys(&remote).len()
        );
        for keys in RoundBackend::chain_keys(&remote) {
            assert_eq!(keys.inner_epoch, round, "wire keys rotate per round");
            assert!(keys.verify());
        }
        let (ra, _) = RoundBackend::run_round(&mut local, &mut rng_a, &mut users_a)
            .expect("local round failed");
        let (rb, _) = remote
            .run_round(&mut rng_b, &mut users_b)
            .expect("remote round failed");
        assert_eq!(ra.messages_mixed, rb.messages_mixed);
        assert_eq!(ra.delivered, rb.delivered);
    }

    cluster.shutdown();
}
