//! Property-based tests (proptest) on the system's core invariants,
//! spanning crates.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd::crypto::ristretto::GroupElement;
use xrd::crypto::scalar::Scalar;
use xrd::crypto::{adec, aenc, round_nonce};
use xrd::mixnet::client::seal_ahs;
use xrd::mixnet::{generate_chain_keys, open_batch, MailboxMessage, MixServer, PAYLOAD_LEN};
use xrd::topology::SelectionTable;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// §5.3.1's guarantee, for arbitrary network sizes: every pair of
    /// groups shares a chain, and groups have exactly ℓ entries.
    #[test]
    fn selection_pairwise_intersection(n in 1usize..400) {
        let table = SelectionTable::build(n);
        prop_assert_eq!(table.num_groups(), table.ell + 1);
        for a in 0..table.num_groups() {
            prop_assert_eq!(table.groups[a].len(), table.ell);
            for b in a..table.num_groups() {
                prop_assert!(table.meeting_chain(a, b).is_some());
            }
        }
    }

    /// ℓ is within the √2-approximation band of the √n lower bound.
    #[test]
    fn ell_is_sqrt2_approximation(n in 1usize..100_000) {
        let ell = xrd::topology::ell_for_chains(n) as f64;
        let sqrt_n = (n as f64).sqrt();
        prop_assert!(ell + 1e-9 >= sqrt_n * 0.99);
        prop_assert!(ell <= (2.0 * n as f64).sqrt() + 1.0);
    }

    /// AEAD roundtrip + tamper rejection for arbitrary payloads.
    #[test]
    fn aead_roundtrip_and_tamper(
        key in prop::array::uniform32(any::<u8>()),
        round in any::<u64>(),
        domain in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
        flip_byte in any::<prop::sample::Index>(),
    ) {
        let nonce = round_nonce(round, domain);
        let sealed = aenc(&key, &nonce, b"", &payload);
        let opened = adec(&key, &nonce, b"", &sealed);
        prop_assert_eq!(opened.as_deref(), Some(&payload[..]));
        let mut bad = sealed.clone();
        let i = flip_byte.index(bad.len());
        bad[i] ^= 0x01;
        prop_assert!(adec(&key, &nonce, b"", &bad).is_none());
    }

    /// Group algebra: (a+b)G == aG + bG and DH commutativity for
    /// arbitrary scalars.
    #[test]
    fn group_homomorphism(a_seed in any::<u64>(), b_seed in any::<u64>()) {
        let mut rng_a = StdRng::seed_from_u64(a_seed);
        let mut rng_b = StdRng::seed_from_u64(b_seed ^ 0x5555);
        let a = Scalar::random(&mut rng_a);
        let b = Scalar::random(&mut rng_b);
        let lhs = GroupElement::base_mul(&a.add(&b));
        let rhs = GroupElement::base_mul(&a).add(&GroupElement::base_mul(&b));
        prop_assert!(lhs == rhs);
        let ga = GroupElement::base_mul(&a);
        let gb = GroupElement::base_mul(&b);
        prop_assert!(ga.mul(&b) == gb.mul(&a));
    }
}

proptest! {
    // Mixing is expensive; use fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full-chain invariant: for arbitrary chain lengths, batch
    /// sizes, and rounds, AHS delivers exactly the submitted multiset of
    /// mailbox messages (shuffled).
    #[test]
    fn ahs_chain_is_a_permutation(
        seed in any::<u64>(),
        k in 1usize..4,
        batch in 1usize..10,
        round in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (secrets, public) = generate_chain_keys(&mut rng, k, round);
        let msgs: Vec<MailboxMessage> = (0..batch)
            .map(|i| MailboxMessage {
                mailbox: [i as u8; 32],
                sealed: vec![(i * 3) as u8; PAYLOAD_LEN + 16],
            })
            .collect();
        let mut entries: Vec<xrd::mixnet::MixEntry> = msgs
            .iter()
            .map(|m| seal_ahs(&mut rng, &public, round, m).to_entry())
            .collect();
        let mut servers: Vec<MixServer> = secrets
            .into_iter()
            .map(|s| MixServer::new(s, public.clone()))
            .collect();
        for server in servers.iter_mut() {
            let out = server.process_round(&mut rng, round, entries).unwrap();
            entries = out.outputs;
        }
        let inner: Vec<Scalar> = servers.iter().map(|s| s.reveal_inner_key()).collect();
        let mut delivered: Vec<MailboxMessage> = open_batch(&inner, round, &entries)
            .into_iter()
            .map(|m| m.expect("honest batch opens"))
            .collect();
        delivered.sort_by_key(|x| x.mailbox);
        let mut expected = msgs;
        expected.sort_by_key(|x| x.mailbox);
        prop_assert_eq!(delivered, expected);
    }
}
