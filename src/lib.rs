//! # XRD: Scalable Messaging System with Cryptographic Privacy
//!
//! A from-scratch Rust reproduction of **XRD** (Kwon, Lu, Devadas —
//! NSDI 2020): a point-to-point metadata-private messaging system that
//! provides *cryptographic* privacy (no differential-privacy budget)
//! while scaling horizontally by running many small mix chains in
//! parallel, defended against active attacks by the paper's novel
//! **aggregate hybrid shuffle** (AHS).
//!
//! This crate is a facade over the workspace:
//!
//! * [`crypto`] — ristretto255 group, ChaCha20-Poly1305, BLAKE2b,
//!   Schnorr/Chaum-Pedersen NIZKs, all implemented in-repo;
//! * [`topology`] — randomness beacon, anytrust chain formation, the
//!   pairwise-intersecting chain-selection algorithm (§5.3.1);
//! * [`mixnet`] — onion encryption, AHS mixing and verification (§6),
//!   the blame protocol (§6.4);
//! * [`core`] — users, mailboxes, the full round protocol with churn
//!   handling (§5.3.3), the backend abstraction, and calibrated
//!   performance models;
//! * [`net`] — the networked deployment: wire codec, mix/mailbox
//!   daemons over TCP, round coordinator, client swarm driver;
//! * [`obs`] — counters, latency histograms, round-phase spans and the
//!   process-wide registry the daemons report into (scrapable over the
//!   wire as `StatsReport` frames);
//! * [`sim`] — the discrete-event substrate standing in for the paper's
//!   EC2 testbed;
//! * [`baselines`] — Atom, Pung and Stadium comparison models/kernels.
//!
//! ## Quickstart
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use xrd::core::{Deployment, DeploymentConfig, Received, User};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // 6 servers, chains of 2 (test-scale; real deployments use k≈32).
//! let mut deployment = Deployment::new(&mut rng, DeploymentConfig::small(6, 2));
//!
//! let mut users: Vec<User> = (0..4).map(|_| User::new(&mut rng)).collect();
//! let (alice_pk, bob_pk) = (users[0].pk(), users[1].pk());
//! users[0].start_conversation(bob_pk);
//! users[1].start_conversation(alice_pk);
//! users[0].queue_chat(b"hello Bob".to_vec());
//!
//! let (report, fetched) = deployment.run_round(&mut rng, &mut users);
//! assert_eq!(report.delivered, 4 * deployment.topology().ell());
//! assert!(fetched[&users[1].mailbox_id()].contains(&Received::Chat {
//!     from: users[0].mailbox_id(),
//!     data: b"hello Bob".to_vec(),
//! }));
//! ```

pub use xrd_baselines as baselines;
pub use xrd_core as core;
pub use xrd_crypto as crypto;
pub use xrd_mixnet as mixnet;
pub use xrd_net as net;
pub use xrd_obs as obs;
pub use xrd_sim as sim;
pub use xrd_topology as topology;
